"""The experiments CLI (tiny scale, no caching)."""

import pytest

from repro.experiments.runner import main


def test_runner_figure_drivers(capsys, tmp_path):
    code = main(
        [
            "--exp", "figure4",
            "--collection", "tiny",
            "--limit", "3",
            "--cache", str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "per-class summary" in out


def test_runner_table2_sequential(capsys, tmp_path):
    code = main(
        [
            "--exp", "table2",
            "--collection", "tiny",
            "--limit", "3",
            "--cache", str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["--exp", "bogus"])


def test_runner_cache_reuse(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    main(["--exp", "figure5", "--collection", "tiny", "--limit", "2", "--cache", cache])
    capsys.readouterr()
    # second invocation must reuse the cache (no re-simulation crash)
    code = main(
        ["--exp", "figure5", "--collection", "tiny", "--limit", "2", "--cache", cache]
    )
    assert code == 0
    assert "correlation" in capsys.readouterr().out
