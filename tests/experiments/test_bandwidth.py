"""Section 4.4 bandwidth analysis."""

import pytest

from repro.experiments import ExperimentSetup, run_collection
from repro.experiments.bandwidth import (
    bandwidth_utilisation,
    render_section44,
    section44_summary,
    top_by_bandwidth,
    top_by_speedup,
)
from repro.matrices import collection

SETUP = ExperimentSetup(num_threads=8, l2_way_options=(0, 5), l1_way_options=(0,))


@pytest.fixture(scope="module")
def records():
    return run_collection(collection("tiny")[:5], SETUP, cache_dir=None)


def test_bandwidth_non_negative(records):
    machine = SETUP.machine()
    for r in records:
        assert bandwidth_utilisation(r, machine) >= 0.0


def test_top_lists_are_sorted(records):
    machine = SETUP.machine()
    bw = top_by_bandwidth(records, machine, count=3)
    assert all(a.bandwidth_gbs >= b.bandwidth_gbs for a, b in zip(bw, bw[1:]))
    sp = top_by_speedup(records, machine, count=3)
    assert all(a.speedup >= b.speedup for a, b in zip(sp, sp[1:]))


def test_summary_fields(records):
    machine = SETUP.machine()
    summary = section44_summary(records, machine, count=3)
    assert summary["top_bandwidth_max_gbs"] >= summary["top_bandwidth_min_gbs"]
    assert 0 <= summary["overlap_count"] <= 3


def test_render_contains_both_sets(records):
    machine = SETUP.machine()
    text = render_section44(records, machine, count=2)
    assert "top by bandwidth" in text
    assert "top by speedup" in text
