"""Experiment records must not depend on the periodic fast path.

The ``periodic`` knob is deliberately excluded from the cache key: records
produced with the single-period engine and with the doubled-trace oracle
must carry identical deterministic content (same fingerprint), so cached
results remain valid across the engine switch.
"""

from repro.experiments.common import (
    ExperimentSetup,
    measure_matrix,
    record_fingerprint,
)
from repro.matrices import banded


def test_fingerprint_invariant_under_periodic_engine():
    matrix = banded(40, 3, 4, seed=1)
    base = dict(
        num_threads=4,
        l2_way_options=(0, 2, 5),
        l1_way_options=(0, 1),
    )
    fast = measure_matrix(matrix, ExperimentSetup(**base, periodic=True))
    oracle = measure_matrix(matrix, ExperimentSetup(**base, periodic=False))
    assert record_fingerprint(fast) == record_fingerprint(oracle)


def test_cache_key_ignores_periodic_knob():
    a = ExperimentSetup(periodic=True)
    b = ExperimentSetup(periodic=False)
    assert a.cache_key("m") == b.cache_key("m")
