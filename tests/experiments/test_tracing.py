"""Experiment-layer tracing: phase timings, peak phases, pool trace merge."""

import json

from repro.experiments import ExperimentSetup, run_collection_parallel
from repro.experiments.common import (
    VOLATILE_FIELDS,
    measure_matrix,
    record_fingerprint,
)
from repro.experiments.runner import main as runner_main
from repro.matrices import banded
from repro.matrices.collection import collection
from repro.obs import Tracer, get_tracer, installed, validate_trace_payload

SETUP = ExperimentSetup(
    scale=16, num_threads=8, l2_way_options=(0, 5), l1_way_options=(0,)
)


def _specs(count=3):
    return collection("tiny", machine=SETUP.machine())[:count]


def test_phase_timings_derive_from_one_tracer():
    """Regression: phases and total share one clock, so total >= sum(phases)."""
    record = measure_matrix(banded(300, 6, 3, seed=0), SETUP)
    phases = {k: v for k, v in record.timings.items() if k != "total"}
    assert set(phases) == {"classify", "simulate", "model_a", "model_b"}
    assert record.timings["total"] >= sum(phases.values())
    assert record.model_a_seconds == record.timings["model_a"]
    assert record.model_b_seconds == record.timings["model_b"]


def test_peak_phase_is_recorded_and_volatile():
    record = measure_matrix(banded(300, 6, 3, seed=0), SETUP)
    assert record.peak_phase in ("", "classify", "simulate", "model_a", "model_b")
    assert "peak_phase" in VOLATILE_FIELDS
    # fingerprints ignore instrumentation: same inputs, same fingerprint
    again = measure_matrix(banded(300, 6, 3, seed=0), SETUP)
    assert record_fingerprint(record) == record_fingerprint(again)


def test_measure_matrix_spans_land_on_the_ambient_tracer():
    with installed(Tracer(memory="rss")) as tracer:
        measure_matrix(banded(300, 6, 3, seed=0), SETUP)
    tree = tracer.tree()
    node, = tree.find("measure_matrix")
    assert {c.name for c in node.children} >= {
        "classify", "simulate", "model_a", "model_b"
    }
    # the engines hang their spans under the phases
    assert tree.find("sim.trace_build") and tree.find("method_a.stack_pass")


def test_pool_ships_worker_trees_back_and_merges_deterministically():
    specs = _specs(3)
    with installed(Tracer(memory="rss")) as tracer:
        result = run_collection_parallel(
            specs, SETUP, cache_dir=None, jobs=2, chunksize=1
        )
    assert not result.failures
    tree = tracer.tree()
    run_node, = tree.find("run_collection")
    measured = tree.find("measure_matrix")
    assert len(measured) == len(specs)
    # adoption is in spec order, independent of worker completion order
    names = [n.attrs["matrix"] for n in measured]
    assert names == [spec.name for spec in specs]
    assert tree.merged().to_dict() == tree.merged().to_dict()
    assert run_node.seconds > 0


def test_untraced_pool_run_ships_no_trees():
    assert get_tracer() is None
    result = run_collection_parallel(_specs(2), SETUP, cache_dir=None, jobs=2)
    assert not result.failures  # and no tracer to adopt into: nothing to assert on
    record = result.records[0]
    assert record.timings["total"] >= sum(
        v for k, v in record.timings.items() if k != "total"
    )


def test_runner_trace_flag_writes_valid_json_and_covers_wall_time(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    rc = runner_main([
        "--exp", "figure2", "--collection", "tiny", "--limit", "2",
        "--cache", "", "--trace", str(trace_path),
    ])
    assert rc == 0
    payload = json.loads(trace_path.read_text())
    assert validate_trace_payload(payload) == []
    out = capsys.readouterr().out
    assert "span tree:" in out and "self time by span:" in out
    # acceptance: per-phase self times sum to >= 95% of the wall time (the
    # root span covers the whole run, so its self time fills any gap)
    from repro.obs import TraceTree

    tree = TraceTree.from_dict(payload["tree"])
    covered = sum(tree.self_seconds_by_name().values())
    assert covered >= 0.95 * payload["wall_seconds"]
