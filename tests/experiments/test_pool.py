"""The parallel sweep engine vs. the serial collection runner."""

import json
import time
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentSetup,
    failure_entry_path,
    record_fingerprint,
    run_collection,
    run_collection_parallel,
)
from repro.experiments.common import VOLATILE_FIELDS, cache_entry_path
from repro.matrices import banded
from repro.matrices.collection import MatrixSpec, collection

SETUP = ExperimentSetup(scale=16, num_threads=8, l2_way_options=(0, 5), l1_way_options=(0,))


def _specs(count=3):
    return collection("tiny", machine=SETUP.machine())[:count]


def _raise_injected():
    raise RuntimeError("injected worker failure")


def _sleep_forever():
    time.sleep(4.0)
    raise AssertionError("timeout should have fired first")


def _bad_spec(name="injected_bad"):
    return MatrixSpec(name=name, family="banded", target_class="1", build=_raise_injected)


def test_parallel_matches_serial_bit_for_bit(tmp_path):
    specs = _specs()
    serial = run_collection(specs, SETUP, tmp_path / "serial")
    result = run_collection_parallel(specs, SETUP, tmp_path / "pooled", jobs=2)
    assert not result.failures
    assert [r.name for r in result.records] == [r.name for r in serial]
    assert [record_fingerprint(r) for r in result.records] == [
        record_fingerprint(r) for r in serial
    ]
    # cache records are identical too, instrumentation fields aside
    for spec in specs:
        a = json.loads(cache_entry_path(tmp_path / "serial", SETUP, spec.name).read_text())
        b = json.loads(cache_entry_path(tmp_path / "pooled", SETUP, spec.name).read_text())
        for volatile in VOLATILE_FIELDS:
            a.pop(volatile, None)
            b.pop(volatile, None)
        assert a == b


def test_run_collection_jobs_flag_dispatches_to_pool(tmp_path):
    specs = _specs(2)
    serial = run_collection(specs, SETUP, tmp_path / "serial")
    pooled = run_collection(specs, SETUP, tmp_path / "pooled", jobs=2)
    assert [record_fingerprint(r) for r in pooled] == [
        record_fingerprint(r) for r in serial
    ]


def test_worker_failure_is_isolated_and_recorded(tmp_path):
    specs = _specs(2)
    specs.insert(1, _bad_spec())
    result = run_collection_parallel(specs, SETUP, tmp_path, jobs=2)
    assert [r.name for r in result.records] == [specs[0].name, specs[2].name]
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.name == "injected_bad"
    assert failure.index == 1
    assert failure.error_type == "RuntimeError"
    assert "injected worker failure" in failure.message
    assert "RuntimeError" in failure.traceback
    # the structured failure record is persisted next to the cache entries
    entry = Path(tmp_path) / f"{SETUP.cache_key('injected_bad')}.failure.json"
    payload = json.loads(entry.read_text())
    assert payload["error_type"] == "RuntimeError"
    assert payload["index"] == 1


def test_in_process_fallback_isolates_failures(tmp_path):
    # jobs=1 exercises the no-pool path with the same result shape
    specs = [_bad_spec()] + _specs(1)
    result = run_collection_parallel(specs, SETUP, tmp_path, jobs=1)
    assert len(result.records) == 1
    assert result.failed_names == ["injected_bad"]


def test_cached_records_short_circuit_the_pool(tmp_path):
    specs = _specs(2)
    first = run_collection_parallel(specs, SETUP, tmp_path, jobs=2)
    assert first.from_cache == 0
    second = run_collection_parallel(specs, SETUP, tmp_path, jobs=2)
    assert second.from_cache == len(specs)
    assert [record_fingerprint(r) for r in first.records] == [
        record_fingerprint(r) for r in second.records
    ]


def test_per_matrix_timeout_records_failure_and_continues(tmp_path):
    specs = _specs(1)
    stuck = MatrixSpec(
        name="injected_stuck", family="banded", target_class="1", build=_sleep_forever
    )
    specs = [stuck] + specs
    result = run_collection_parallel(
        specs, SETUP, tmp_path, jobs=2, timeout=1.5, chunksize=1
    )
    assert result.failed_names == ["injected_stuck"]
    assert result.failures[0].error_type == "TimeoutError"
    assert [r.name for r in result.records] == [specs[1].name]


def test_records_carry_timing_and_rss_instrumentation(tmp_path):
    records = run_collection(_specs(1), SETUP, tmp_path)
    record = records[0]
    assert set(record.timings) == {"classify", "simulate", "model_a", "model_b", "total"}
    assert record.timings["total"] > 0
    assert record.peak_rss_bytes > 0
    # instrumentation round-trips through the cache
    cached = run_collection(_specs(1), SETUP, tmp_path)[0]
    assert cached.timings == record.timings
    assert cached.peak_rss_bytes == record.peak_rss_bytes


def test_rejects_nonpositive_jobs(tmp_path):
    with pytest.raises(ValueError):
        run_collection_parallel(_specs(1), SETUP, tmp_path, jobs=0)


def _now_good_build():
    return banded(200, 4, 3, seed=7)


def _healed_spec():
    # same name (-> same cache key) as _bad_spec, but the build now works
    return MatrixSpec(
        name="injected_bad", family="banded", target_class="1", build=_now_good_build
    )


def test_failure_records_skip_reruns_by_default(tmp_path):
    run_collection_parallel([_bad_spec()], SETUP, tmp_path, jobs=2)
    assert failure_entry_path(tmp_path, SETUP, "injected_bad").exists()
    # even though the spec would succeed now, the persisted failure is
    # replayed instead of re-paying the sweep
    replay = run_collection_parallel([_healed_spec()], SETUP, tmp_path, jobs=2)
    assert replay.failed_names == ["injected_bad"]
    assert replay.failures[0].error_type == "RuntimeError"
    assert replay.from_cache == 1
    assert not replay.records


def test_retry_failures_requeues_and_clears_record(tmp_path):
    run_collection_parallel([_bad_spec()], SETUP, tmp_path, jobs=2)
    entry = failure_entry_path(tmp_path, SETUP, "injected_bad")
    assert entry.exists()
    retried = run_collection_parallel(
        [_healed_spec()], SETUP, tmp_path, jobs=2, retry_failures=True
    )
    assert not retried.failures
    assert [r.name for r in retried.records] == ["injected_bad"]
    # success deletes the stale failure record...
    assert not entry.exists()
    # ...so the next default run measures from the cache, not the record
    again = run_collection_parallel([_healed_spec()], SETUP, tmp_path, jobs=2)
    assert not again.failures and again.from_cache == 1


def test_serial_runner_skips_and_retries_failures(tmp_path, capsys):
    run_collection_parallel([_bad_spec()], SETUP, tmp_path, jobs=2)
    skipped = run_collection([_healed_spec()], SETUP, tmp_path, verbose=True)
    assert skipped == []
    assert "--retry-failures" in capsys.readouterr().out
    retried = run_collection(
        [_healed_spec()], SETUP, tmp_path, retry_failures=True
    )
    assert [r.name for r in retried] == ["injected_bad"]
    assert not failure_entry_path(tmp_path, SETUP, "injected_bad").exists()
