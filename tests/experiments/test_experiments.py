"""Experiment infrastructure: bundles, caching, drivers (tiny scale)."""

import json

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSetup,
    accuracy_rows,
    correlation,
    figure2_series,
    figure3_series,
    figure4_points,
    figure5_points,
    headline_numbers,
    l1_accuracy,
    measure_matrix,
    method_overhead,
    render_accuracy_table,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
    run_collection,
    run_table1,
)
from repro.experiments.common import MatrixRecord
from repro.matrices import banded, collection
from repro.matrices.table1 import TABLE1

SETUP = ExperimentSetup(
    num_threads=8,
    l2_way_options=(0, 2, 5),
    l1_way_options=(0, 1),
)


@pytest.fixture(scope="module")
def records():
    specs = collection("tiny")[:4]
    return run_collection(specs, SETUP, cache_dir=None)


def test_measure_matrix_bundle_is_complete():
    matrix = banded(2_000, 80, 40, seed=1, name="probe")
    record = measure_matrix(matrix, SETUP)
    assert record.name == "probe"
    assert set(record.measured) == {"0,0", "2,0", "5,0", "2,1", "5,1"}
    assert set(record.model_a) == {"0", "2", "5"}
    assert record.model_a_seconds > 0 and record.model_b_seconds > 0
    assert record.speedup(5, 0) > 0
    assert record.events(0, 0).l2_refill == record.l2_misses(0, 0)


def test_records_are_json_roundtrippable(records):
    from dataclasses import asdict

    for record in records:
        clone = MatrixRecord(**json.loads(json.dumps(asdict(record))))
        assert clone.l2_misses(0, 0) == record.l2_misses(0, 0)
        assert clone.classes == record.classes


def test_disk_cache_hits(tmp_path):
    specs = collection("tiny")[:1]
    first = run_collection(specs, SETUP, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("*.json"))) == 1
    second = run_collection(specs, SETUP, cache_dir=tmp_path)
    assert first[0].measured == second[0].measured


def test_figure_series_cover_configurations(records):
    series = figure2_series(records, l2_ways=(2, 5), l1_ways=(0, 1))
    assert set(series) == {(2, 0), (5, 0), (2, 1), (5, 1)}
    text = render_figure2(series)
    assert "L2 ways 5" in text

    fig3 = figure3_series(records, l2_ways=(2, 5), l1_ways=(0, 1))
    assert all(s.count == len(records) for s in fig3.values())
    assert "speedup" in render_figure3(fig3)


def test_figure4_partitions_by_class(records):
    points = figure4_points(records, l2_ways=5)
    total = sum(len(v) for v in points.values())
    assert total == len(records)
    assert "Figure 4" in render_figure4(points)


def test_figure5_excludes_class1(records):
    machine = SETUP.machine()
    points = figure5_points(records, machine, l2_ways=5)
    assert "1" not in points
    assert isinstance(correlation(points), float)
    assert "Figure 5" in render_figure5(points)


def test_headline_numbers_fields(records):
    numbers = headline_numbers(records, l2_ways=5)
    assert set(numbers) == {
        "median_speedup",
        "max_speedup",
        "fraction_at_or_above_baseline",
        "fraction_10pct_or_more",
    }


def test_accuracy_rows_filter_small_matrices(records):
    machine = SETUP.machine()
    rows = accuracy_rows(records, machine, parallel=False, l2_way_options=(0, 5))
    for row in rows:
        assert row.method_a.count == row.method_b.count
    text = render_accuracy_table(rows, "T")
    assert text.startswith("T")


def test_l1_accuracy_and_overhead(records):
    machine = SETUP.machine()
    row = l1_accuracy(records, machine, parallel=False)
    assert row.config.startswith("L1")
    overhead = method_overhead(records)
    assert overhead["mean_ta_over_tb"] > 1.0  # method A processes more refs


def test_table1_driver_runs_on_subset():
    rows = run_table1(
        setup=ExperimentSetup(
            num_threads=8, l2_way_options=(0,), l1_way_options=(0,)
        ),
        proxy_scale=512,
        entries=TABLE1[:2],
    )
    assert len(rows) == 2
    assert all(r.gflops_ours > 0 for r in rows)
    text = render_table1(rows)
    assert "pdb1HYS" in text


def test_best_l2_ways_picks_lowest_median(records):
    from repro.experiments import best_l2_ways

    series = figure2_series(records, l2_ways=(2, 5), l1_ways=(0,))
    best = best_l2_ways(series)
    assert best in (2, 5)
    assert series[(best, 0)].median == min(
        series[(w, 0)].median for w in (2, 5)
    )
