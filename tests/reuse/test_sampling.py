"""Sampled reuse-distance estimation."""

import numpy as np
import pytest

from repro.reuse import ReuseProfile, reuse_distances
from repro.reuse.sampling import sample_reuse_distances


def test_rate_one_is_exact():
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 40, 2000)
    exact = ReuseProfile.from_distances(reuse_distances(trace))
    sampled = sample_reuse_distances(trace, rate=1.0)
    for capacity in (1, 5, 20, 60):
        assert sampled.misses(capacity) == pytest.approx(exact.misses(capacity))


def test_sampling_estimates_within_tolerance():
    rng = np.random.default_rng(1)
    trace = rng.integers(0, 100, 20_000)
    exact = ReuseProfile.from_distances(reuse_distances(trace))
    sampled = sample_reuse_distances(trace, rate=0.1, seed=2)
    for capacity in (10, 50, 120):
        true = exact.misses(capacity)
        estimate = sampled.misses(capacity)
        err = sampled.standard_error(capacity)
        assert abs(estimate - true) < 5 * err + 1


def test_groups_respected():
    trace = np.array([0, 0, 0, 0])
    groups = np.array([0, 1, 0, 1])
    sampled = sample_reuse_distances(trace, rate=1.0, groups=groups)
    # within each group: one cold + one distance-0 reuse
    assert sampled.misses(1) == pytest.approx(2)  # only the colds miss


def test_miss_ratio_clamped():
    trace = np.arange(100)  # all cold
    sampled = sample_reuse_distances(trace, rate=0.5, seed=3)
    assert 0.0 <= sampled.miss_ratio(10) <= 1.0


def test_empty_trace():
    sampled = sample_reuse_distances(np.empty(0, dtype=np.int64), rate=0.5)
    assert sampled.misses(4) == 0
    assert sampled.miss_ratio(4) == 0.0


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        sample_reuse_distances(np.array([1]), rate=0.0)
    with pytest.raises(ValueError):
        sample_reuse_distances(np.array([1]), rate=1.5)


def test_deterministic_given_seed():
    rng = np.random.default_rng(4)
    trace = rng.integers(0, 30, 1000)
    a = sample_reuse_distances(trace, rate=0.2, seed=7)
    b = sample_reuse_distances(trace, rate=0.2, seed=7)
    np.testing.assert_array_equal(a.profile.sorted_rd, b.profile.sorted_rd)
