"""Cross-validation of the four reuse-distance implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse import (
    COLD,
    reuse_distances,
    reuse_distances_fenwick,
    reuse_distances_kim,
    reuse_distances_naive,
)

ALL_IMPLEMENTATIONS = [
    reuse_distances,
    reuse_distances_fenwick,
    lambda t, g=None: reuse_distances_kim(t, g, group_size=1),
]


def test_empty_trace():
    for impl in ALL_IMPLEMENTATIONS:
        assert impl(np.empty(0, dtype=np.int64)).shape == (0,)


def test_single_access_is_cold():
    for impl in ALL_IMPLEMENTATIONS:
        assert impl(np.array([7]))[0] == COLD


def test_immediate_reuse_has_distance_zero():
    rd = reuse_distances(np.array([3, 3, 3]))
    assert rd.tolist() == [COLD, 0, 0]


def test_textbook_example():
    # a b c a: the second access to a saw 2 distinct lines in between
    rd = reuse_distances(np.array([0, 1, 2, 0]))
    assert rd.tolist() == [COLD, COLD, COLD, 2]


def test_repeated_scan_distances_equal_working_set():
    # scanning N lines twice: second pass distances are all N-1
    n = 100
    trace = np.concatenate([np.arange(n), np.arange(n)])
    rd = reuse_distances(trace)
    assert np.all(rd[:n] == COLD)
    assert np.all(rd[n:] == n - 1)


def test_groups_isolate_stacks():
    # identical traces in two groups never see each other
    trace = np.array([0, 1, 0, 1])
    groups = np.array([0, 1, 0, 1])
    rd = reuse_distances(trace, groups)
    assert rd.tolist() == [COLD, COLD, 0, 0]


def test_group_reorder_restores_original_positions():
    trace = np.array([5, 5, 9, 5, 9])
    groups = np.array([1, 0, 1, 1, 1])
    rd = reuse_distances(trace, groups)
    # group 1 sees 5 . 9 5 9; group 0 sees one cold 5
    assert rd[1] == COLD
    assert rd[0] == COLD and rd[2] == COLD
    assert rd[3] == 1 and rd[4] == 1


def test_rejects_negative_lines_and_bad_groups():
    with pytest.raises(ValueError):
        reuse_distances(np.array([-1, 2]))
    with pytest.raises(ValueError):
        reuse_distances(np.array([1, 2]), np.array([0]))
    with pytest.raises(ValueError):
        reuse_distances(np.array([1, 2]), np.array([0, -2]))


@settings(max_examples=150, deadline=None)
@given(
    trace=st.lists(st.integers(0, 9), min_size=1, max_size=120),
    use_groups=st.booleans(),
    data=st.data(),
)
def test_all_implementations_agree(trace, use_groups, data):
    trace = np.array(trace, dtype=np.int64)
    groups = None
    if use_groups:
        groups = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 3),
                    min_size=len(trace),
                    max_size=len(trace),
                )
            ),
            dtype=np.int64,
        )
    expected = reuse_distances_naive(trace, groups)
    for impl in ALL_IMPLEMENTATIONS:
        np.testing.assert_array_equal(impl(trace, groups), expected)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_cdq_matches_fenwick_on_large_random_traces(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(200, 2000))
    trace = rng.integers(0, rng.integers(2, 200), n)
    groups = rng.integers(0, 5, n)
    np.testing.assert_array_equal(
        reuse_distances(trace, groups), reuse_distances_fenwick(trace, groups)
    )


@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 7, 9, 17, 31, 33, 63, 65, 100, 255, 257])
def test_cdq_exact_on_non_power_of_two_lengths(n):
    # regression for the partial-block CDQ: every trailing-block shape must
    # agree with the naive stack, not just power-of-two trace lengths
    rng = np.random.default_rng(n)
    trace = rng.integers(0, max(2, n // 3), n)
    groups = rng.integers(0, 3, n)
    np.testing.assert_array_equal(
        reuse_distances(trace), reuse_distances_naive(trace)
    )
    np.testing.assert_array_equal(
        reuse_distances(trace, groups), reuse_distances_naive(trace, groups)
    )


def test_kim_bucketed_distances_bounded_error():
    # with group_size g, the reported distance is exact to within g/2
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 50, 2000)
    exact = reuse_distances(trace)
    approx = reuse_distances_kim(trace, group_size=8)
    finite = exact < COLD
    assert np.array_equal(finite, approx < COLD)
    assert np.max(np.abs(exact[finite] - approx[finite])) <= 8


def test_kim_rejects_bad_group_size():
    with pytest.raises(ValueError):
        reuse_distances_kim(np.array([1]), group_size=0)
