"""ReuseProfile: capacity queries against brute-force counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse import COLD, ReuseProfile, miss_count, reuse_distances, scale_distances


def test_profile_counts_cold_and_capacity_misses():
    rd = np.array([COLD, COLD, 0, 5, 10])
    profile = ReuseProfile.from_distances(rd)
    assert profile.num_accesses == 5
    assert profile.num_cold == 2
    assert profile.misses(1) == 4  # only rd=0 hits
    assert profile.misses(6) == 3  # rd=0 and rd=5 hit
    assert profile.misses(100) == 2  # only cold misses remain
    assert profile.capacity_misses(100) == 0
    assert profile.capacity_misses(1) == 2


def test_profile_mask_restricts_accesses():
    rd = np.array([COLD, 3, 7])
    profile = ReuseProfile.from_distances(rd, mask=np.array([False, True, True]))
    assert profile.num_accesses == 2
    assert profile.misses(5) == 1


def test_hit_ratio_empty_profile_is_one():
    assert ReuseProfile.from_distances(np.empty(0, dtype=np.int64)).hit_ratio(4) == 1.0


def test_miss_curve_matches_scalar_queries():
    rng = np.random.default_rng(1)
    rd = reuse_distances(rng.integers(0, 30, 500))
    profile = ReuseProfile.from_distances(rd)
    capacities = np.array([0, 1, 2, 5, 10, 50, 1000])
    np.testing.assert_array_equal(
        profile.miss_curve(capacities),
        [profile.misses(int(c)) for c in capacities],
    )


def test_miss_curve_rejects_negative_capacity():
    profile = ReuseProfile.from_distances(np.array([1, 2]))
    with pytest.raises(ValueError):
        profile.miss_curve(np.array([-1]))
    with pytest.raises(ValueError):
        profile.misses(-1)


@settings(max_examples=50, deadline=None)
@given(
    trace=st.lists(st.integers(0, 20), min_size=1, max_size=200),
    capacity=st.integers(0, 30),
)
def test_misses_match_direct_count(trace, capacity):
    rd = reuse_distances(np.array(trace, dtype=np.int64))
    profile = ReuseProfile.from_distances(rd)
    assert profile.misses(capacity) == miss_count(rd, capacity)
    assert profile.misses(capacity) == int(np.count_nonzero(rd >= capacity))


def test_monotonicity_more_capacity_never_more_misses():
    rng = np.random.default_rng(2)
    rd = reuse_distances(rng.integers(0, 100, 2000))
    profile = ReuseProfile.from_distances(rd)
    curve = profile.miss_curve(np.arange(0, 120))
    assert np.all(np.diff(curve) <= 0)


def test_scale_distances_preserves_cold_markers():
    rd = np.array([COLD, 4, 0])
    scaled = scale_distances(rd, 2.5)
    assert scaled[0] == COLD
    assert scaled[1] == 10
    assert scaled[2] == 0


def test_scale_distances_rejects_negative_factor():
    with pytest.raises(ValueError):
        scale_distances(np.array([1]), -1.0)


def test_histogram_bins_finite_distances_only():
    rd = np.array([COLD, 1, 2, 2, 9])
    profile = ReuseProfile.from_distances(rd)
    counts = profile.histogram(np.array([0, 2, 10]))
    assert counts.tolist() == [1, 3]
