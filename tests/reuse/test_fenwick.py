"""FenwickTree and compute_prev unit tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse import FenwickTree, compute_prev, reuse_distances_fenwick


def test_fenwick_prefix_sums_match_numpy():
    rng = np.random.default_rng(0)
    values = rng.integers(-5, 6, 64)
    tree = FenwickTree(64)
    for i, v in enumerate(values):
        tree.add(i, int(v))
    cum = np.cumsum(values)
    for i in range(65):
        expected = 0 if i == 0 else int(cum[i - 1])
        assert tree.prefix_sum(i) == expected


def test_fenwick_range_sum():
    tree = FenwickTree(10)
    for i in range(10):
        tree.add(i, 1)
    assert tree.range_sum(2, 7) == 5
    assert tree.range_sum(0, 10) == 10
    assert tree.range_sum(5, 5) == 0


def test_fenwick_bounds_checking():
    tree = FenwickTree(4)
    with pytest.raises(IndexError):
        tree.add(4, 1)
    with pytest.raises(IndexError):
        tree.add(-1, 1)
    with pytest.raises(ValueError):
        FenwickTree(-1)


def test_fenwick_prefix_sum_clamps_out_of_range_counts():
    tree = FenwickTree(3)
    tree.add(0, 5)
    assert tree.prefix_sum(100) == 5
    assert tree.prefix_sum(-2) == 0


def test_fenwick_rejects_overflowing_group_line_keys():
    # groups[order] * span + trace[order] must not wrap int64 (the CDQ
    # engine already guards this; the Fenwick path needs the same guard)
    trace = np.array([0, 2**40], dtype=np.int64)
    groups = np.array([0, 2**30], dtype=np.int64)
    with pytest.raises(ValueError, match="too large"):
        reuse_distances_fenwick(trace, groups)


def test_fenwick_accepts_large_but_safe_keys():
    trace = np.array([0, 5, 0, 5], dtype=np.int64)
    groups = np.array([0, 1, 0, 1], dtype=np.int64)
    rd = reuse_distances_fenwick(trace, groups)
    assert rd[2] == 0 and rd[3] == 0


def test_compute_prev_basic():
    prev = compute_prev(np.array([4, 7, 4, 4, 7]))
    assert prev.tolist() == [-1, -1, 0, 2, 1]


def test_compute_prev_empty():
    assert compute_prev(np.empty(0, dtype=np.int64)).shape == (0,)


@settings(max_examples=100, deadline=None)
@given(keys=st.lists(st.integers(0, 8), max_size=100))
def test_compute_prev_matches_dict_scan(keys):
    keys = np.array(keys, dtype=np.int64)
    expected = np.full(len(keys), -1, dtype=np.int64)
    last: dict[int, int] = {}
    for i, k in enumerate(keys.tolist()):
        if k in last:
            expected[i] = last[k]
        last[k] = i
    np.testing.assert_array_equal(compute_prev(keys), expected)
