"""Single-period steady-state reuse engine vs. the repeated-trace oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse import COLD, reuse_distances, steady_state_reuse_distances


def oracle_steady(lines, groups=None):
    """Steady-state RDs via a physically doubled trace (the legacy path)."""
    n = lines.shape[0]
    doubled = np.tile(lines, 2)
    g = None if groups is None else np.tile(groups, 2)
    return reuse_distances(doubled, g)[n:]


def oracle_warm(first_lines, first_groups, lines, groups):
    """RDs of the first steady period following an explicit warm-up period."""
    m = first_lines.shape[0]
    cat = np.concatenate([first_lines, lines])
    g = np.concatenate([first_groups, groups])
    return reuse_distances(cat, g)[m:]


traces = st.lists(st.integers(0, 12), min_size=0, max_size=60)
group_tags = st.lists(st.integers(0, 3), min_size=0, max_size=60)


def test_empty_trace():
    out = steady_state_reuse_distances(np.empty(0, dtype=np.int64))
    assert out.shape == (0,)


def test_single_access_wraps_to_itself():
    # one line repeated forever: steady-state distance 0, never cold
    out = steady_state_reuse_distances(np.array([5]))
    assert out.tolist() == [0]


def test_scan_wraps_around():
    # scanning N distinct lines per period: every steady access sees N-1
    n = 50
    out = steady_state_reuse_distances(np.arange(n))
    assert np.all(out == n - 1)


def test_no_cold_accesses_in_pure_periodic_mode():
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 20, 200)
    assert np.all(steady_state_reuse_distances(lines) < COLD)


def test_absent_from_first_period_is_cold():
    # warm-up touches only line 0; line 1 has no previous occurrence
    out = steady_state_reuse_distances(
        np.array([0, 1]),
        first_lines=np.array([0]),
        first_groups=np.array([0]),
    )
    assert out.tolist() == [0, COLD]


def test_empty_first_period_is_all_cold_then_in_period():
    out = steady_state_reuse_distances(
        np.array([3, 4, 3]),
        first_lines=np.empty(0, dtype=np.int64),
        first_groups=np.empty(0, dtype=np.int64),
    )
    assert out.tolist() == [COLD, COLD, 1]


@settings(max_examples=200, deadline=None)
@given(traces)
def test_matches_doubled_oracle_ungrouped(data):
    lines = np.array(data, dtype=np.int64)
    np.testing.assert_array_equal(
        steady_state_reuse_distances(lines), oracle_steady(lines)
    )


@settings(max_examples=200, deadline=None)
@given(traces, group_tags)
def test_matches_doubled_oracle_grouped(data, tags):
    lines = np.array(data, dtype=np.int64)
    rng = np.random.default_rng(lines.sum() % 97)
    groups = rng.integers(0, 4, lines.shape[0])
    np.testing.assert_array_equal(
        steady_state_reuse_distances(lines, groups), oracle_steady(lines, groups)
    )


@settings(max_examples=200, deadline=None)
@given(traces, traces)
def test_matches_warmup_oracle(first, period):
    first_lines = np.array(first, dtype=np.int64)
    lines = np.array(period, dtype=np.int64)
    rng = np.random.default_rng((first_lines.sum() + lines.sum()) % 89)
    first_groups = rng.integers(0, 3, first_lines.shape[0])
    groups = rng.integers(0, 3, lines.shape[0])
    np.testing.assert_array_equal(
        steady_state_reuse_distances(
            lines, groups, first_lines=first_lines, first_groups=first_groups
        ),
        oracle_warm(first_lines, first_groups, lines, groups),
    )


@settings(max_examples=60, deadline=None)
@given(traces)
def test_every_later_iteration_agrees(data):
    # the steady state really is stationary: iterations 1 and 2 of a tripled
    # trace carry identical distances, both equal to the engine's answer
    lines = np.array(data, dtype=np.int64)
    n = lines.shape[0]
    tripled = reuse_distances(np.tile(lines, 3))
    np.testing.assert_array_equal(tripled[n : 2 * n], tripled[2 * n :])
    np.testing.assert_array_equal(steady_state_reuse_distances(lines), tripled[2 * n :])


def test_group_locality_is_respected():
    # same line in two groups: each group wraps independently
    lines = np.array([9, 9, 9])
    groups = np.array([0, 1, 0])
    out = steady_state_reuse_distances(lines, groups)
    np.testing.assert_array_equal(out, oracle_steady(lines, groups))
    assert out.tolist() == [0, 0, 0]


def test_length_mismatch_rejected():
    import pytest

    with pytest.raises(ValueError):
        steady_state_reuse_distances(np.array([1, 2]), np.array([0]))
