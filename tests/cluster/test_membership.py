"""MembershipController transitions driven by synthetic probes."""

import pytest

from repro.cluster.membership import MembershipController

REPLICAS = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]

GOOD = {"ok": True, "breakers": {"advise": "closed"}, "error": None}
DEAD = {"ok": False, "breakers": {}, "error": "ConnectionRefusedError: ..."}
OPEN_BREAKER = {"ok": True, "breakers": {"advise": "open"}, "error": None}


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def membership(clock):
    return MembershipController(REPLICAS, peer_window_seconds=60.0,
                                clock=clock)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MembershipController([])
    with pytest.raises(ValueError):
        MembershipController(REPLICAS, fail_after=0)
    with pytest.raises(ValueError):
        MembershipController([("h", 1), ("h", 1)])


def test_starts_fully_alive(membership):
    assert len(membership.alive) == 3
    assert membership.owner("some-key") is not None
    snap = membership.snapshot()
    assert snap["alive"] == snap["total"] == 3
    assert snap["peer_window_open"] is False


def test_failed_probe_ejects_and_clean_probe_readmits(membership):
    victim = membership.replicas[0]
    membership.observe_probe(victim, DEAD)
    assert not victim.healthy
    assert membership.ejections == 1
    assert victim.node not in membership.ring
    assert len(membership.alive) == 2

    membership.observe_probe(victim, GOOD)
    assert victim.healthy
    assert membership.readmissions == 1
    assert victim.node in membership.ring
    assert victim.consecutive_failures == 0


def test_open_breaker_ejects_even_when_healthz_is_ok(membership):
    victim = membership.replicas[1]
    membership.observe_probe(victim, OPEN_BREAKER)
    assert not victim.healthy
    assert "open breakers" in victim.last_error


def test_fail_after_requires_consecutive_failures(clock):
    membership = MembershipController(REPLICAS, fail_after=2, clock=clock)
    victim = membership.replicas[0]
    membership.observe_probe(victim, DEAD)
    assert victim.healthy  # one strike
    membership.observe_probe(victim, GOOD)
    membership.observe_probe(victim, DEAD)
    assert victim.healthy  # the clean probe reset the count
    membership.observe_probe(victim, DEAD)
    assert not victim.healthy


def test_mark_down_ejects_immediately(membership):
    victim = membership.replicas[2]
    membership.mark_down(victim.node, reason="forward failed")
    assert not victim.healthy
    assert membership.ejections == 1
    membership.mark_down("unknown:1")  # unknown nodes are ignored
    assert membership.ejections == 1


def test_peer_for_names_previous_owner_during_window(membership, clock):
    # find a key owned by replica 0 so its ejection remaps that key
    victim = membership.replicas[0]
    key = next(f"k{i}" for i in range(10_000)
               if membership.owner(f"k{i}") is victim)
    membership.mark_down(victim.node)
    interim = membership.owner(key)
    assert interim is not victim

    # dead previous owners are never handed out as peers
    assert membership.peer_for(key) is None

    # after readmission the key maps home; the live interim owner is
    # the peer to ask for a warm copy
    membership.observe_probe(victim, GOOD)
    assert membership.owner(key) is victim
    peer = membership.peer_for(key)
    assert peer is interim

    # keys whose owner never changed have no peer
    stable = next(f"s{i}" for i in range(10_000)
                  if membership.owner(f"s{i}") is not victim)
    assert membership.peer_for(stable) is None

    # the window closes
    clock.now += 61.0
    assert membership.peer_for(key) is None
    assert membership.snapshot()["peer_window_open"] is False


def test_snapshot_records_events_and_ownership(membership):
    victim = membership.replicas[0]
    membership.mark_down(victim.node)
    snap = membership.snapshot()
    assert snap["ejections"] == 1
    assert snap["events"][-1]["event"] == "ejected"
    assert snap["events"][-1]["replica"] == victim.node
    assert victim.node not in snap["ownership"]
    assert abs(sum(snap["ownership"].values()) - 1.0) < 1e-9
