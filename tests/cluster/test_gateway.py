"""Gateway end-to-end tests: routing, failover, peer fill, batches.

One in-process cluster (thread-mode :class:`ClusterHarness`) per module
for the read-only tests; the kill/restart stories build their own.
"""

import json
import time

import pytest

from repro.analysis.report import canonical_json
from repro.cluster import ClusterHarness
from repro.matrices.collection import collection
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.client import ServiceError
from repro.service.protocol import normalize_request

SETUP = {"num_threads": 8}
NAMES = [spec.name for spec in collection("tiny")[:4]]


def _items(names=NAMES):
    return [{"name": name, "collection": "tiny"} for name in names]


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("gateway_cluster")
    with ClusterHarness(replicas=2, jobs=1, cache_root=cache_root) as harness:
        client = harness.client(timeout=120.0)
        yield harness, client
        client.close()


@pytest.fixture(scope="module")
def direct_answers(tmp_path_factory):
    """name -> (key, canonical result) from one un-sharded daemon."""
    cache_dir = tmp_path_factory.mktemp("gateway_direct")
    config = ServiceConfig(jobs=1, cache_dir=str(cache_dir))
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        answers = {
            name: (envelope["key"], canonical_json(envelope["result"]))
            for name in NAMES
            for envelope in [client.advise(name=name, collection="tiny",
                                           **SETUP)]
        }
        client.close()
    return answers


def test_gateway_health_and_metrics(cluster):
    _, client = cluster
    health = client.health()
    assert health["ok"] and health["role"] == "gateway"
    assert health["replicas"]["total"] == 2
    metrics = client.metrics()
    assert metrics["membership"]["alive"] == 2
    text = client.metrics(format="prometheus")
    assert "repro_gateway_replica_up" in text
    assert text.count('} 1') >= 2  # both replicas up


def test_routed_answers_match_direct_daemon(cluster, direct_answers):
    """The tentpole invariant: sharding must not change any answer."""
    _, client = cluster
    for name in NAMES:
        envelope = client.advise(name=name, collection="tiny", **SETUP)
        key, expected = direct_answers[name]
        assert envelope["key"] == key
        assert canonical_json(envelope["result"]) == expected


def test_requests_route_by_key_and_warm_their_owner(cluster):
    harness, client = cluster
    envelope = client.advise(name=NAMES[0], collection="tiny", **SETUP)
    owner = harness.gateway.membership.owner(envelope["key"])
    # the owning replica now has the entry; the other replica does not
    task = normalize_request("advise", {
        "matrix": {"name": NAMES[0], "collection": "tiny"}, "setup": SETUP,
    })
    owner_client = ServiceClient(owner.host, owner.port, timeout=30.0)
    peeked = owner_client.cache_peek(task)
    assert peeked["found"] is True
    assert peeked["key"] == envelope["key"]
    owner_client.close()
    other = next(r for r in harness.replicas
                 if (r.host, r.port) != (owner.host, owner.port))
    other_client = harness.replica_client(other.index, timeout=30.0)
    assert other_client.cache_peek(task)["found"] is False
    other_client.close()
    routed = client.metrics()["routed"]["advise"]
    assert sum(routed.values()) >= 1


def test_gateway_rejects_bad_requests_without_forwarding(cluster):
    _, client = cluster
    before = sum(client.metrics()["routed"].get("advise", {}).values())
    with pytest.raises(ServiceError) as err:
        client.advise(name="no_such_matrix", collection="tiny", **SETUP)
    assert err.value.status == 404
    after = sum(client.metrics()["routed"].get("advise", {}).values())
    assert after == before
    assert client.metrics()["bad_requests"] >= 1


def test_batch_streams_every_item_plus_summary(cluster, direct_answers):
    _, client = cluster
    lines = list(client.batch("advise", _items(), window=2, setup=SETUP))
    *item_lines, tail = lines
    assert len(item_lines) == len(NAMES)
    assert sorted(line["index"] for line in item_lines) == list(
        range(len(NAMES))
    )
    for line in item_lines:
        key, expected = direct_answers[line["name"]]
        assert line["ok"] and line["key"] == key
        assert canonical_json(line["result"]) == expected
    summary = tail["batch"]
    assert summary["total"] == len(NAMES)
    assert summary["ok"] == len(NAMES)
    assert summary["errors"] == 0
    assert summary["window"] == 2


def test_batch_invalid_item_gets_an_error_line_not_a_dead_batch(cluster):
    _, client = cluster
    items = _items() + [{"name": "no_such_matrix", "collection": "tiny"}]
    lines = list(client.batch("advise", items, window=2, setup=SETUP))
    *item_lines, tail = lines
    by_index = {line["index"]: line for line in item_lines}
    assert by_index[len(NAMES)]["ok"] is False
    assert by_index[len(NAMES)]["error"]["type"] == "RequestError"
    assert all(by_index[i]["ok"] for i in range(len(NAMES)))
    assert tail["batch"]["errors"] == 1
    assert tail["batch"]["ok"] == len(NAMES)


def test_batch_rejects_malformed_payloads(cluster):
    _, client = cluster
    with pytest.raises(ServiceError) as err:
        list(client.batch("nonsense", _items()))
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        list(client.batch("advise", []))
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        list(client.batch("advise", _items(), window=0))
    assert err.value.status == 400


def test_failover_loses_nothing_and_readmits(tmp_path):
    """Kill a replica mid-life: zero lost answers; restart readmits it."""
    with ClusterHarness(
        replicas=3, jobs=1, cache_root=tmp_path,
        gateway_config={"probe_interval_seconds": 0.2},
    ) as harness:
        client = harness.client(timeout=120.0)
        warm = list(client.batch("advise", _items(), window=2, setup=SETUP))
        assert warm[-1]["batch"]["errors"] == 0

        harness.kill_replica(0)
        lines = list(client.batch("advise", _items(), window=2, setup=SETUP))
        *item_lines, tail = lines
        assert tail["batch"]["errors"] == 0
        assert len(item_lines) == len(NAMES)
        assert all(line["ok"] for line in item_lines)
        metrics = client.metrics()
        assert metrics["exhausted"] == 0
        # ejection is either immediate (a forward hit the dead socket) or
        # one probe round away (the dead replica happened to own none of
        # the batch keys) — poll rather than race the probe loop
        deadline = time.monotonic() + 5.0
        alive = metrics["membership"]["alive"]
        while alive != 2 and time.monotonic() < deadline:
            time.sleep(0.1)
            alive = client.metrics()["membership"]["alive"]
        assert alive == 2

        harness.restart_replica(0)
        assert harness.wait_alive(3, deadline_seconds=15.0)
        assert client.metrics()["membership"]["readmissions"] >= 1
        client.close()


def test_rebalanced_keys_fill_from_peers_not_reevaluation(tmp_path):
    """After a cache-cold restart, remapped keys come from ``/cache/peek``
    on the interim owner — the peer-fill counters prove it."""
    with ClusterHarness(
        replicas=3, jobs=1, cache_root=tmp_path,
        gateway_config={"probe_interval_seconds": 0.2},
    ) as harness:
        client = harness.client(timeout=120.0)
        list(client.batch("advise", _items(), window=2, setup=SETUP))
        harness.kill_replica(0)
        # interim owners evaluate and cache the dead replica's keys
        down = list(client.batch("advise", _items(), window=2, setup=SETUP))
        assert down[-1]["batch"]["errors"] == 0

        harness.restart_replica(0, clear_cache=True)
        assert harness.wait_alive(3, deadline_seconds=15.0)
        lines = list(client.batch("advise", _items(), window=2, setup=SETUP))
        *item_lines, tail = lines
        assert tail["batch"]["errors"] == 0
        peer_served = [line for line in item_lines
                       if line["cached"] == "peer"]
        assert peer_served, "no key was served by peer warm-cache fill"
        assert client.metrics()["peer_hints"] >= len(peer_served)
        fills = harness.replica_client(0).metrics()["peer_fill"]
        assert fills.get("hit", 0) >= len(peer_served)
        # some interim owner answered the peeks
        peeks = sum(
            harness.replica_client(i).metrics()["cache_peek"].get("hit", 0)
            for i in (1, 2)
        )
        assert peeks >= len(peer_served)
        client.close()


def _band_edits(matrix, rows):
    """Band-local edits (the incremental path) for the delta routing tests."""
    inserts, deletes = [], []
    for r in rows:
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]].tolist()
        colset = set(cols)
        ins = next(c for base in cols for c in (base + 1, base - 1)
                   if 0 <= c < matrix.num_cols and c not in colset)
        inserts.append([r, int(ins), 1.0])
        deletes.append([r, int(cols[0])])
    return inserts, deletes


def test_delta_routes_by_base_key_to_the_owning_replica(cluster):
    """A delta must land where the base's registry entry and warm reuse
    state live: the replica the base key hashed to."""
    from repro.delta import MatrixDelta
    from repro.matrices.generators import banded

    harness, client = cluster
    matrix = banded(800, 6, 4, seed=13)
    base = client.advise(matrix=matrix, num_threads=1, scale=16)
    assert base["ok"], base
    owner = harness.gateway.membership.owner(base["key"])

    ins, dels = _band_edits(matrix, [17, 400])
    d1 = client.delta(base["key"], inserts=ins, deletes=dels)
    assert d1["ok"], d1
    assert d1["delta"]["path"] == "incremental", d1["delta"]

    # byte identity survives the extra hop
    edited = MatrixDelta.from_dict(
        {"inserts": ins, "deletes": dels}).apply(matrix).matrix
    full = client.advise(matrix=edited, num_threads=1, scale=16)
    assert canonical_json(d1["result"]) == canonical_json(full["result"])

    # the owning replica priced it; the gateway counted the route
    owner_client = ServiceClient(owner.host, owner.port, timeout=30.0)
    applied = owner_client.metrics()["delta"]["applied"]
    assert applied.get("advise", {}).get("incremental", 0) >= 1, applied
    owner_client.close()
    routed = client.metrics()["routed"].get("delta", {})
    assert sum(routed.values()) >= 1

    # chaining keeps the affinity: the derived key hashes wherever it
    # likes, but the *request* still routes by its own base argument
    ins2, dels2 = _band_edits(edited, [80, 600])
    d2 = client.delta(d1["key"], inserts=ins2, deletes=dels2)
    assert d2["ok"] and d2["delta"]["chain_length"] == 2, d2


def test_gateway_rejects_malformed_delta_without_forwarding(cluster):
    _, client = cluster
    before = sum(client.metrics()["routed"].get("delta", {}).values())
    with pytest.raises(ServiceError) as err:
        client.delta("not-a-key", inserts=[[0, 1]])
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.request("POST", "/delta", {"base": "a" * 32, "delta": {}})
    assert err.value.status == 400
    assert sum(client.metrics()["routed"].get("delta", {}).values()) == before
