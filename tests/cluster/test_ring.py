"""HashRing unit and property tests (placement, disruption bounds)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import DEFAULT_VNODES, HashRing

#: a plausible replica node pool for property tests
NODES = st.sets(
    st.sampled_from([f"127.0.0.1:{port}" for port in range(9000, 9032)]),
    min_size=1, max_size=8,
)

KEYS = [f"key-{i:04x}" for i in range(512)]


def _placement(ring):
    return {key: ring.owner(key) for key in KEYS}


# -- basics --------------------------------------------------------------


def test_empty_ring_owns_nothing():
    ring = HashRing()
    assert ring.owner("anything") is None
    assert ring.preference("anything") == []
    assert len(ring) == 0


def test_single_node_owns_everything():
    ring = HashRing(["a:1"])
    assert all(ring.owner(key) == "a:1" for key in KEYS)
    assert ring.preference("k") == ["a:1"]


def test_add_remove_idempotent():
    ring = HashRing(["a:1", "b:2"])
    before = _placement(ring)
    ring.add("a:1")
    ring.remove("c:3")
    assert _placement(ring) == before
    assert ring.nodes == frozenset({"a:1", "b:2"})


def test_vnodes_validation():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing([""])


def test_copy_is_independent():
    ring = HashRing(["a:1", "b:2"])
    snap = ring.copy()
    ring.remove("a:1")
    assert snap.nodes == frozenset({"a:1", "b:2"})
    assert _placement(snap) != _placement(ring) or len(ring) == 0


# -- properties ----------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(nodes=NODES)
def test_placement_is_insertion_order_invariant(nodes):
    """The mapping depends only on the node *set*, never on history."""
    ordered = sorted(nodes)
    forward = HashRing(ordered)
    backward = HashRing(reversed(ordered))
    # a third ring built by add/remove churn must also converge
    churned = HashRing(ordered)
    churned.add("127.0.0.1:9999")
    churned.remove("127.0.0.1:9999")
    assert _placement(forward) == _placement(backward) == _placement(churned)


@settings(max_examples=50, deadline=None)
@given(nodes=NODES)
def test_owner_heads_preference_and_is_a_member(nodes):
    ring = HashRing(nodes)
    for key in KEYS[:64]:
        sequence = ring.preference(key)
        assert sequence[0] == ring.owner(key)
        assert set(sequence) == set(nodes)  # every node appears once
        assert len(sequence) == len(nodes)
        assert ring.preference(key, count=1) == sequence[:1]


@settings(max_examples=30, deadline=None)
@given(nodes=NODES)
def test_removal_only_remaps_the_removed_nodes_keys(nodes):
    """Minimal disruption: keys not owned by the ejected node never move."""
    ring = HashRing(nodes)
    victim = sorted(nodes)[0]
    before = _placement(ring)
    ring.remove(victim)
    after = _placement(ring)
    for key in KEYS:
        if before[key] != victim:
            assert after[key] == before[key]
        elif len(nodes) > 1:
            assert after[key] is not None and after[key] != victim


@settings(max_examples=30, deadline=None)
@given(nodes=NODES)
def test_addition_only_steals_for_the_new_node(nodes):
    """Adding a node moves keys only *onto* it, ~K/(N+1) of them."""
    ring = HashRing(nodes)
    before = _placement(ring)
    newcomer = "127.0.0.1:9999"
    ring.add(newcomer)
    after = _placement(ring)
    moved = [key for key in KEYS if after[key] != before[key]]
    assert all(after[key] == newcomer for key in moved)
    # expected share is K/(N+1); allow generous slack for vnode variance
    expected = len(KEYS) / (len(nodes) + 1)
    assert len(moved) <= expected * 2.5 + 8


def test_remap_fraction_is_about_one_over_n():
    """Ejecting one of N nodes remaps ≈ K/N keys, not the whole keyspace."""
    nodes = [f"10.0.0.{i}:8787" for i in range(8)]
    ring = HashRing(nodes)
    before = _placement(ring)
    ring.remove(nodes[3])
    after = _placement(ring)
    moved = sum(before[key] != after[key] for key in KEYS)
    expected = len(KEYS) / len(nodes)
    assert moved <= expected * 2.0, (
        f"{moved} of {len(KEYS)} keys moved; expected about {expected:.0f}"
    )


def test_ownership_shares_are_roughly_uniform():
    nodes = [f"10.0.0.{i}:8787" for i in range(4)]
    shares = HashRing(nodes, vnodes=DEFAULT_VNODES).ownership_shares()
    assert set(shares) == set(nodes)
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    for node, share in shares.items():
        assert 0.10 <= share <= 0.45, (node, share)
