"""Cluster-wide observability: the merged distributed trace, the
gateway's Prometheus exposition, /debug/traces, and the event log.

The headline invariant: one traced request through the gateway returns
ONE schema-valid tree rooted at ``gateway.route`` — covering routing,
failover and the winning replica's evaluation phases — and every span
that carries a ``trace_id`` carries the *same* one, even when the
first-preference replica dies mid-request.
"""

import pytest

from repro.cluster import ClusterHarness
from repro.matrices.collection import collection
from repro.obs import parse_prometheus_text, validate_tree
from repro.obs.context import TraceContext
from repro.obs.events import validate_log_text
from repro.service.protocol import normalize_request, request_key

SETUP = {"num_threads": 8}
NAMES = [spec.name for spec in collection("tiny")[:4]]


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def _trace_ids(tree):
    return {node["attrs"]["trace_id"] for root in tree["roots"]
            for node in _walk(root) if "trace_id" in node.get("attrs", {})}


def _predict_payload(name):
    return {"matrix": {"name": name, "collection": "tiny"}, "setup": SETUP,
            "policies": [{"l2_sector1_ways": 4}], "trace": True}


def test_traced_request_returns_one_merged_tree(tmp_path):
    caller = TraceContext.new()
    with ClusterHarness(replicas=2, jobs=1,
                        cache_root=tmp_path / "cache") as harness:
        client = harness.client(timeout=120.0, trace_context=caller)
        envelope = client.request("POST", "/predict",
                                  _predict_payload(NAMES[0]))
        client.close()
    assert envelope["ok"]
    tree = envelope["trace"]
    assert validate_tree(tree) == []
    root, = tree["roots"]
    assert root["name"] == "gateway.route"
    assert root["attrs"]["trace_id"] == caller.trace_id
    # routing, the replica's request handling, and the worker's
    # evaluation phases all hang off the single root
    names = [node["name"] for node in _walk(root)]
    for phase in ("gateway.forward", "service.request", "pool.evaluate",
                  "evaluate"):
        assert phase in names, names
    assert _trace_ids(tree) == {caller.trace_id}


def test_failover_keeps_one_trace_id_across_both_attempts(tmp_path):
    caller = TraceContext.new()
    payload = _predict_payload(NAMES[1])
    key = request_key(normalize_request("predict", payload))
    with ClusterHarness(
        replicas=3, jobs=1, cache_root=tmp_path / "cache",
        gateway_config={"probe_interval_seconds": 30.0},
    ) as harness:
        preferred = harness.gateway.membership.preference(key)[0]
        victim = next(r for r in harness.replicas
                      if (r.host, r.port) == (preferred.host, preferred.port))
        harness.kill_replica(victim.index)
        client = harness.client(timeout=120.0, trace_context=caller)
        envelope = client.request("POST", "/predict", payload)
        client.close()
    assert envelope["ok"]
    tree = envelope["trace"]
    assert validate_tree(tree) == []
    root, = tree["roots"]
    assert root["name"] == "gateway.route"
    forwards = [c for c in root["children"] if c["name"] == "gateway.forward"]
    assert len(forwards) >= 2, "expected a failed attempt before the winner"
    assert forwards[0]["attrs"]["outcome"] == "failover"
    assert forwards[0]["attrs"]["replica"] == preferred.node
    winner = forwards[-1]
    assert winner["attrs"]["outcome"] == "ok"
    # the winning forward carries the replica's evaluation phases ...
    names = [node["name"] for node in _walk(winner)]
    for phase in ("service.request", "pool.evaluate", "evaluate"):
        assert phase in names, names
    # ... and the dead attempt fabricated none
    assert [node["name"] for node in _walk(forwards[0])] == ["gateway.forward"]
    # one trace id everywhere, across gateway + both replica attempts
    assert _trace_ids(tree) == {caller.trace_id}


@pytest.fixture(scope="module")
def observed_cluster(tmp_path_factory):
    base = tmp_path_factory.mktemp("obs_cluster")
    with ClusterHarness(
        replicas=2, jobs=1, cache_root=base / "cache",
        gateway_config={"event_log_path": str(base / "gateway-events.jsonl")},
    ) as harness:
        client = harness.client(timeout=120.0)
        yield harness, client, base / "gateway-events.jsonl"
        client.close()


def test_gateway_prometheus_round_trips_strictly(observed_cluster):
    _, client, _ = observed_cluster
    client.advise(name=NAMES[2], collection="tiny", **SETUP)
    text = client.metrics(format="prometheus")
    samples = parse_prometheus_text(text)  # raises on malformed exposition
    snapshot = client.metrics()
    up = {labels["replica"]: value
          for labels, value in samples["repro_gateway_replica_up"]}
    assert len(up) == 2 and all(value == 1 for value in up.values())
    forwarded = sum(value for labels, value
                    in samples["repro_gateway_routed_total"]
                    if labels.get("endpoint") == "advise")
    assert forwarded == sum(snapshot["routed"].get("advise", {}).values())
    assert "repro_gateway_request_latency_seconds_bucket" in samples


def test_gateway_debug_traces_records_routed_requests(observed_cluster):
    _, client, _ = observed_cluster
    envelope = client.request("POST", "/predict", _predict_payload(NAMES[3]))
    assert envelope["ok"]
    debug = client.request("GET", "/debug/traces?endpoint=predict")
    assert debug["ok"]
    assert debug["traces"], "traced request must land in the gateway buffer"
    entry = debug["traces"][0]
    assert entry["endpoint"] == "predict"
    assert entry["status"] == "ok"
    trees = [e["tree"] for e in debug["traces"] if e["tree"] is not None]
    assert any(t["roots"][0]["name"] == "gateway.route" for t in trees)


def test_gateway_event_log_validates_and_correlates(observed_cluster):
    _, client, log_path = observed_cluster
    envelope = client.request("POST", "/predict", _predict_payload(NAMES[0]))
    assert envelope["ok"]
    entries, problems = validate_log_text(
        log_path.read_text(encoding="utf-8"))
    assert problems == []
    events = {entry["event"] for entry in entries}
    assert "gateway.start" in events and "gateway.request" in events
    routed = [e for e in entries if e["event"] == "gateway.request"]
    assert routed and all(e["source"]["role"] == "gateway" for e in routed)
    assert any(e.get("trace_id") for e in routed)
