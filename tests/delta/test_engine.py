"""Worker-side delta pricing: incremental vs fallback vs ladder paths.

Every test routes a derived delta task through
:func:`repro.delta.engine.evaluate_delta_task` exactly the way the pool
worker does, and checks the one invariant that matters: whatever path
priced it, the *result* is byte-identical to evaluating the edited
matrix from scratch — only the metadata (path/reason/state/drift)
differs.
"""

import numpy as np
import pytest

from repro.delta import engine
from repro.delta.delta import MatrixDelta
from repro.matrices.generators import banded, random_uniform
from repro.service.protocol import (
    derive_delta_task,
    normalize_delta,
    normalize_request,
    request_key,
)
from repro.service.worker import _dispatch

MATRIX = banded(600, 6, 4, seed=7)
SETUP = {"num_threads": 1, "scale": 16}


@pytest.fixture(autouse=True)
def _cold_worker():
    """Each test starts from a cold worker-local reuse-state cache."""
    engine._state_cache.clear()
    yield
    engine._state_cache.clear()


def csr_payload(matrix) -> dict:
    return {"csr": {
        "num_rows": matrix.num_rows,
        "num_cols": matrix.num_cols,
        "rowptr": matrix.rowptr.tolist(),
        "colidx": matrix.colidx.tolist(),
        "values": matrix.values.tolist(),
    }}


def band_edits(matrix, rows):
    """Band-local edits (short dirty windows: stays inside the budget)."""
    inserts, deletes = [], []
    for r in rows:
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]].tolist()
        colset = set(cols)
        ins = next(c for base in cols for c in (base + 1, base - 1)
                   if 0 <= c < matrix.num_cols and c not in colset)
        inserts.append([r, int(ins), 1.0])
        deletes.append([r, int(cols[0])])
    return {"inserts": inserts, "deletes": deletes}


def delta_task(endpoint, batch, *, matrix=MATRIX, setup=SETUP, budget=None,
               flags=None, request=None):
    """Derive the canonical delta task the daemon would submit."""
    stored = normalize_request(endpoint,
                               {"matrix": csr_payload(matrix),
                                "setup": setup, **(request or {})})
    body = {"base": request_key(stored), "delta": batch, **(flags or {})}
    return derive_delta_task(stored, normalize_delta(body),
                             engine.DEFAULT_BUDGET if budget is None
                             else budget)


def full_result(endpoint, edited, *, setup=SETUP, request=None):
    """The from-scratch answer on the edited pattern (the oracle)."""
    task = normalize_request(endpoint, {"matrix": csr_payload(edited),
                                        "setup": setup, **(request or {})})
    result, fidelity, meta = _dispatch(task)
    assert fidelity is None and meta is None
    return result


def edited_matrix(batch, matrix=MATRIX):
    return MatrixDelta.from_dict(batch).apply(matrix).matrix


def test_incremental_advise_is_byte_identical_to_full_path():
    batch = band_edits(MATRIX, [5, 200, 400])
    result, fidelity, meta = engine.evaluate_delta_task(
        delta_task("advise", batch))
    assert fidelity is None
    assert meta["path"] == "incremental"
    assert meta["state"] == "cold"  # fresh worker: the base pays one pass
    assert meta["chain_length"] == 1 and meta["edits"] == 6
    assert meta["drift"] == pytest.approx(6 / MATRIX.nnz)
    oracle = full_result("advise", edited_matrix(batch))
    assert {k: v for k, v in result.items() if k != "name"} == \
        {k: v for k, v in oracle.items() if k != "name"}


def test_incremental_predict_matches_full_path_per_policy():
    batch = band_edits(MATRIX, [50, 300])
    request = {"policies": [{"l2_sector1_ways": w} for w in (2, 6, 10)]}
    result, _, meta = engine.evaluate_delta_task(
        delta_task("predict", batch, request=request))
    assert meta["path"] == "incremental"
    oracle = full_result("predict", edited_matrix(batch), request=request)
    assert result["predictions"] == oracle["predictions"]


def test_repeat_and_chain_hit_the_warm_worker_state():
    batch1 = band_edits(MATRIX, [10, 100])
    _, _, first = engine.evaluate_delta_task(delta_task("advise", batch1))
    assert first["state"] == "cold"
    # the same chain again: the full patched state is already cached
    _, _, again = engine.evaluate_delta_task(delta_task("advise", batch1))
    assert again["state"] == "warm"
    # one more batch on top: the length-1 prefix state is the warm hit
    once = edited_matrix(batch1)
    batch2 = band_edits(once, [250, 500])
    stored = normalize_request("advise", {"matrix": csr_payload(MATRIX),
                                          "setup": SETUP})
    chained = derive_delta_task(
        stored, normalize_delta({"base": request_key(stored),
                                 "delta": batch1}), engine.DEFAULT_BUDGET)
    chained = derive_delta_task(
        chained, normalize_delta({"base": request_key(chained),
                                  "delta": batch2}), engine.DEFAULT_BUDGET)
    result, _, meta = engine.evaluate_delta_task(chained)
    assert meta["chain_length"] == 2 and meta["state"] == "warm"
    oracle = full_result("advise", edited_matrix(batch2, once))
    assert {k: v for k, v in result.items() if k != "name"} == \
        {k: v for k, v in oracle.items() if k != "name"}


def test_classify_prices_structurally():
    batch = band_edits(MATRIX, [0, 599])
    result, fidelity, meta = engine.evaluate_delta_task(
        delta_task("classify", batch))
    assert fidelity is None
    assert meta["path"] == "incremental" and meta["reason"] == "structural"
    oracle = full_result("classify", edited_matrix(batch))
    assert result["classes"] == oracle["classes"]


def test_parallel_base_falls_back_with_reason_threads():
    batch = band_edits(MATRIX, [20])
    setup = {"num_threads": 8, "scale": 16}
    result, _, meta = engine.evaluate_delta_task(
        delta_task("advise", batch, setup=setup))
    assert meta["path"] == "fallback" and meta["reason"] == "threads"
    oracle = full_result("advise", edited_matrix(batch), setup=setup)
    assert {k: v for k, v in result.items() if k != "name"} == \
        {k: v for k, v in oracle.items() if k != "name"}


def test_non_periodic_predict_falls_back_with_reason_iterations():
    batch = band_edits(MATRIX, [20])
    setup = {"num_threads": 1, "scale": 16, "iterations": 1}
    result, _, meta = engine.evaluate_delta_task(
        delta_task("predict", batch, setup=setup))
    assert meta["path"] == "fallback" and meta["reason"] == "iterations"
    oracle = full_result("predict", edited_matrix(batch), setup=setup)
    assert result["predictions"] == oracle["predictions"]


def test_exhausted_budget_falls_back_and_reports_the_work():
    # a class-3 pattern: even a handful of edits dirties windows that
    # span the trace, so a tiny budget must overflow
    matrix = random_uniform(600, 5, seed=11)
    cols = matrix.colidx[matrix.rowptr[0]:matrix.rowptr[1]]
    absent = next(c for c in range(matrix.num_cols)
                  if c not in set(cols.tolist()))
    batch = {"inserts": [[0, absent, 1.0]],
             "deletes": [[0, int(cols[0])]]}
    result, _, meta = engine.evaluate_delta_task(
        delta_task("advise", batch, matrix=matrix, budget=1))
    assert meta["path"] == "fallback" and meta["reason"] == "budget"
    assert meta["work"] > meta["budget"] == 1
    oracle = full_result("advise", edited_matrix(batch, matrix))
    assert {k: v for k, v in result.items() if k != "name"} == \
        {k: v for k, v in oracle.items() if k != "name"}


def test_loose_slo_stays_on_tier0_with_drift_inflated_bound():
    batch = band_edits(MATRIX, [30])
    result, fidelity, meta = engine.evaluate_delta_task(
        delta_task("advise", batch, flags={"accuracy": 10.0}))
    assert meta["path"] == "tier0"
    assert meta["reason"] == "drift-within-bound"
    assert fidelity["tier"] == 0 and fidelity["slo_met"]
    assert fidelity["drift"] == meta["drift"] > 0
    assert fidelity["error_bound"] >= fidelity["drift"]
    assert result["best"] and result["matrix_class"]


def test_tight_slo_escalates_onto_the_incremental_path():
    batch = band_edits(MATRIX, [30, 90])
    result, fidelity, meta = engine.evaluate_delta_task(
        delta_task("advise", batch, flags={"accuracy": 1e-9, "max_tier": 2}))
    assert meta["path"] == "incremental"
    assert fidelity["tier"] == 2
    assert fidelity["tiers_tried"] == [0, 2]
    assert fidelity["drift"] > 0
    oracle = full_result("advise", edited_matrix(batch))
    assert {k: v for k, v in result.items() if k != "name"} == \
        {k: v for k, v in oracle.items() if k != "name"}
