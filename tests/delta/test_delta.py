"""MatrixDelta canonicalization, fingerprints, and exact CSR patching."""

import numpy as np
import pytest

from repro.delta import MAX_EDITS, DeltaError, MatrixDelta
from repro.matrices.generators import banded
from repro.spmv.csr import CSRMatrix


def test_from_dict_canonicalizes_order_and_fingerprint():
    a = MatrixDelta.from_dict({
        "inserts": [[5, 1, 2.0], [0, 3], [0, 1, 1.5]],
        "deletes": [[9, 9], [2, 0]],
    })
    b = MatrixDelta.from_dict({
        "inserts": [[0, 1, 1.5], [5, 1, 2.0], [0, 3]],
        "deletes": [[2, 0], [9, 9]],
    })
    assert a.to_dict() == b.to_dict()
    assert a.fingerprint() == b.fingerprint()
    # sorted by (row, col); omitted insert values become explicit 1.0
    assert a.to_dict()["inserts"] == [[0, 1, 1.5], [0, 3, 1.0], [5, 1, 2.0]]
    assert a.to_dict()["deletes"] == [[2, 0], [9, 9]]
    assert a.num_inserts == 3 and a.num_deletes == 2 and a.num_edits == 5


def test_different_batches_have_different_fingerprints():
    a = MatrixDelta.from_dict({"inserts": [[0, 1]]})
    b = MatrixDelta.from_dict({"inserts": [[0, 2]]})
    c = MatrixDelta.from_dict({"inserts": [[0, 1, 2.0]]})
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


@pytest.mark.parametrize("payload, fragment", [
    ([], "must be an object"),
    ({"inserts": [], "deletes": [], "upserts": []}, "unknown delta fields"),
    ({"inserts": [], "deletes": []}, "at least one"),
    ({"inserts": "0,1"}, "list of"),
    ({"inserts": [[0]]}, "must be [row, col]"),
    ({"inserts": [[0, 1, 2.0, 3.0]]}, "must be [row, col]"),
    ({"deletes": [[0, 1, 2.0]]}, "must be [row, col]"),
    ({"inserts": [[0, "x"]]}, "not numeric"),
    ({"inserts": [[0, 1], [0, 1, 5.0]]}, "duplicate edge in inserts"),
    ({"deletes": [[3, 3], [3, 3]]}, "duplicate edge in deletes"),
    ({"inserts": [[2, 2]], "deletes": [[2, 2]]}, "both inserts and deletes"),
], ids=["not-object", "unknown-field", "empty", "not-a-list", "short-entry",
        "long-entry", "delete-with-value", "non-numeric", "dup-insert",
        "dup-delete", "overlap"])
def test_from_dict_rejections(payload, fragment):
    with pytest.raises(DeltaError) as excinfo:
        MatrixDelta.from_dict(payload)
    assert fragment in str(excinfo.value)


def test_from_dict_rejects_oversized_batches():
    edits = [[0, c] for c in range(MAX_EDITS + 1)]
    with pytest.raises(DeltaError, match="exceeds"):
        MatrixDelta.from_dict({"deletes": edits})


def _brute_force(matrix: CSRMatrix, delta: MatrixDelta):
    """Rebuild the edited pattern from an explicit edge dictionary."""
    edges = {}
    rows = np.repeat(np.arange(matrix.num_rows), np.diff(matrix.rowptr))
    for r, c, v in zip(rows, matrix.colidx, matrix.values):
        edges[int(r), int(c)] = float(v)
    for r, c in zip(delta.delete_rows, delta.delete_cols):
        del edges[int(r), int(c)]
    for r, c, v in zip(delta.insert_rows, delta.insert_cols,
                       delta.insert_values):
        edges[int(r), int(c)] = float(v)
    keys = sorted(edges)
    rowptr = np.zeros(matrix.num_rows + 1, dtype=np.int64)
    for r, _ in keys:
        rowptr[r + 1] += 1
    return (np.cumsum(rowptr),
            np.array([c for _, c in keys], dtype=np.int32),
            np.array([edges[k] for k in keys]))


def test_apply_matches_brute_force_including_mappings():
    matrix = banded(300, 6, 4, seed=3)
    delta = MatrixDelta.from_dict({
        "inserts": [[10, 5, 2.5], [10, 6], [150, 148], [299, 290]],
        "deletes": [[10, int(matrix.colidx[matrix.rowptr[10]])],
                    [200, int(matrix.colidx[matrix.rowptr[200]])]],
    })
    app = delta.apply(matrix)
    rowptr, colidx, values = _brute_force(matrix, delta)
    assert np.array_equal(app.matrix.rowptr, rowptr)
    assert np.array_equal(app.matrix.colidx, colidx)
    assert np.array_equal(app.matrix.values, values)
    assert app.n_old == matrix.nnz
    assert app.n_new == matrix.nnz + 2

    # each surviving old nonzero must land on its own (row, col)
    old_rows = np.repeat(np.arange(matrix.num_rows), np.diff(matrix.rowptr))
    new_rows = np.repeat(np.arange(matrix.num_rows),
                         np.diff(app.matrix.rowptr))
    deleted = {(int(r), int(c))
               for r, c in zip(delta.delete_rows, delta.delete_cols)}
    for k in range(matrix.nnz):
        edge = (int(old_rows[k]), int(matrix.colidx[k]))
        pos = int(app.new_pos_of_old[k])
        if edge in deleted:
            assert pos == -1
        else:
            assert (int(new_rows[pos]), int(app.matrix.colidx[pos])) == edge
    inserted = {(int(new_rows[p]), int(app.matrix.colidx[p]))
                for p in app.inserted_pos}
    assert inserted == {(int(r), int(c)) for r, c
                        in zip(delta.insert_rows, delta.insert_cols)}
    assert np.array_equal(app.deleted_pos, np.sort(app.deleted_pos))
    assert matrix.name in app.matrix.name  # fingerprint-suffixed


def test_apply_rejects_inconsistent_edits():
    matrix = banded(100, 4, 3, seed=0)
    existing = int(matrix.colidx[matrix.rowptr[5]])
    with pytest.raises(DeltaError, match="existing edge"):
        MatrixDelta.from_dict({"inserts": [[5, existing]]}).apply(matrix)
    with pytest.raises(DeltaError, match="absent edge"):
        MatrixDelta.from_dict({"deletes": [[0, 99]]}).apply(matrix)
    with pytest.raises(DeltaError, match="out of bounds"):
        MatrixDelta.from_dict({"inserts": [[0, 100]]}).apply(matrix)
    with pytest.raises(DeltaError, match="out of bounds"):
        MatrixDelta.from_dict({"deletes": [[100, 0]]}).apply(matrix)


def test_apply_rejects_non_canonical_patterns():
    bad = CSRMatrix(2, 4, np.array([0, 2, 2]),
                    np.array([3, 1], dtype=np.int32), np.ones(2), name="bad")
    with pytest.raises(DeltaError, match="canonical"):
        MatrixDelta.from_dict({"inserts": [[0, 0]]}).apply(bad)


def test_junctions_mark_deletion_scars_between_kept_neighbours():
    matrix = banded(50, 4, 4, seed=1)
    last_row = 49
    delta = MatrixDelta.from_dict({
        "deletes": [[0, int(matrix.colidx[matrix.rowptr[0]])],
                    [last_row, int(matrix.colidx[matrix.nnz - 1])]],
    })
    app = delta.apply(matrix)
    junctions = app.junctions()
    # half-positions strictly between integer slots; a trailing delete
    # scars at n_new - 0.5
    assert junctions.shape == (2,)
    assert np.all(junctions == np.floor(junctions) + 0.5)
    assert junctions[-1] == app.n_new - 0.5


def test_chained_applies_compose():
    matrix = banded(200, 6, 4, seed=2)
    first = MatrixDelta.from_dict({"inserts": [[0, 30, 3.0]]})
    second = MatrixDelta.from_dict({"deletes": [[0, 30]]})
    once = first.apply(matrix).matrix
    back = second.apply(once).matrix
    assert np.array_equal(back.rowptr, matrix.rowptr)
    assert np.array_equal(back.colidx, matrix.colidx)
    assert np.array_equal(back.values, matrix.values)
