"""Incremental reuse-distance patching: byte identity and the budget.

The property under test is the module's whole contract: for *any* valid
edit batch on *any* of the four paper classes, an in-budget
:meth:`ReuseState.apply` must produce distances (and previous-occurrence
arrays) **byte-identical** to a full re-evaluation of the edited
pattern — not approximately equal, identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import BudgetExceeded, MatrixDelta, full_reuse_state
from repro.delta.state import x_lines
from repro.matrices.generators import (
    banded,
    block_diagonal,
    power_law,
    random_uniform,
)
from repro.reuse.fenwick import compute_prev

LINE_SIZE = 256

#: One small representative per paper class (1, 2, 3a, 3b).
CLASS_MATRICES = {
    "banded": banded(400, 6, 4, seed=3),
    "block": block_diagonal(384, 16, fill=0.4, seed=3),
    "random": random_uniform(400, 5, seed=3),
    "power": power_law(400, 5, seed=3),
}


def random_edits(matrix, count: int, seed: int) -> MatrixDelta:
    """``count`` arbitrary valid edits: absent inserts + existing deletes."""
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(matrix.num_rows), np.diff(matrix.rowptr))
    existing = {(int(r), int(c)) for r, c in zip(rows, matrix.colidx)}
    inserts, deletes, taken = [], [], set()
    while len(inserts) < count - count // 2:
        r = int(rng.integers(matrix.num_rows))
        c = int(rng.integers(matrix.num_cols))
        if (r, c) not in existing and (r, c) not in taken:
            inserts.append([r, c, float(rng.uniform(0.5, 2.0))])
            taken.add((r, c))
    pool = sorted(existing)
    for k in rng.permutation(len(pool))[: count // 2]:
        deletes.append(list(pool[int(k)]))
    return MatrixDelta.from_dict({"inserts": inserts, "deletes": deletes})


@pytest.mark.parametrize("label", sorted(CLASS_MATRICES))
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), count=st.integers(1, 40))
def test_patched_state_is_byte_identical_to_full_pass(label, seed, count):
    matrix = CLASS_MATRICES[label]
    state = full_reuse_state(matrix, LINE_SIZE)
    application = random_edits(matrix, count, seed).apply(matrix)
    patched = state.apply(application, budget=10**12)
    fresh = full_reuse_state(application.matrix, LINE_SIZE)
    assert np.array_equal(patched.rd, fresh.rd)
    assert np.array_equal(patched.prev, fresh.prev)
    assert patched.nnz == application.matrix.nnz


@pytest.mark.parametrize("label", sorted(CLASS_MATRICES))
def test_chained_patches_stay_byte_identical(label):
    matrix = CLASS_MATRICES[label]
    state = full_reuse_state(matrix, LINE_SIZE)
    for step in range(3):
        application = random_edits(matrix, 20, seed=step).apply(matrix)
        state = state.apply(application, budget=10**12)
        matrix = application.matrix
        fresh = full_reuse_state(matrix, LINE_SIZE)
        assert np.array_equal(state.rd, fresh.rd)
        assert np.array_equal(state.prev, fresh.prev)


def test_patched_prev_matches_compute_prev():
    matrix = CLASS_MATRICES["banded"]
    state = full_reuse_state(matrix, LINE_SIZE)
    application = random_edits(matrix, 24, seed=9).apply(matrix)
    lines = x_lines(application.matrix, LINE_SIZE)
    assert np.array_equal(state._patched_prev(application, lines),
                          compute_prev(lines))


def test_stateless_prev_still_patches_correctly():
    """A ``prev``-less state (e.g. deserialized) pays a fresh pass."""
    from repro.delta import ReuseState

    matrix = CLASS_MATRICES["block"]
    full = full_reuse_state(matrix, LINE_SIZE)
    bare = ReuseState(nnz=full.nnz, line_size=full.line_size, rd=full.rd)
    application = random_edits(matrix, 16, seed=4).apply(matrix)
    patched = bare.apply(application, budget=10**12)
    fresh = full_reuse_state(application.matrix, LINE_SIZE)
    assert np.array_equal(patched.rd, fresh.rd)
    assert np.array_equal(patched.prev, fresh.prev)


def test_zero_budget_raises_budget_exceeded_with_measured_work():
    matrix = CLASS_MATRICES["random"]
    state = full_reuse_state(matrix, LINE_SIZE)
    application = random_edits(matrix, 20, seed=1).apply(matrix)
    with pytest.raises(BudgetExceeded) as excinfo:
        state.apply(application, budget=0)
    assert excinfo.value.work > 0
    assert excinfo.value.budget == 0
    # the state itself is untouched by a failed patch
    assert state.nnz == matrix.nnz


def test_nnz_mismatch_is_rejected():
    matrix = CLASS_MATRICES["banded"]
    other = banded(380, 6, 4, seed=5)
    state = full_reuse_state(other, LINE_SIZE)
    application = random_edits(matrix, 4, seed=0).apply(matrix)
    with pytest.raises(ValueError, match="nonzeros"):
        state.apply(application, budget=10**12)
