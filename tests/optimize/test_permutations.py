"""Property tests for the permutation utilities (gather convention)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices import random_uniform
from repro.optimize import (
    compose_permutations,
    identity_permutation,
    inverse_permutation,
    is_identity,
    permutation_fingerprint,
    validate_permutation,
)


@st.composite
def permutation(draw, max_n=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    return np.array(draw(st.permutations(range(n))), dtype=np.int64)


@st.composite
def two_permutations(draw, max_n=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    first = np.array(draw(st.permutations(range(n))), dtype=np.int64)
    second = np.array(draw(st.permutations(range(n))), dtype=np.int64)
    return first, second


@settings(max_examples=50)
@given(permutation())
def test_inverse_is_an_involution(perm):
    np.testing.assert_array_equal(
        inverse_permutation(inverse_permutation(perm)), perm
    )


@settings(max_examples=50)
@given(permutation())
def test_compose_with_inverse_is_identity(perm):
    inv = inverse_permutation(perm)
    assert is_identity(compose_permutations(perm, inv))
    assert is_identity(compose_permutations(inv, perm))


@settings(max_examples=50)
@given(two_permutations())
def test_compose_matches_double_gather(perms):
    # the defining property: A[first][second] == A[compose(first, second)]
    first, second = perms
    values = np.arange(first.size) * 7 + 3
    np.testing.assert_array_equal(
        values[first][second], values[compose_permutations(first, second)]
    )


@settings(max_examples=25)
@given(permutation())
def test_validate_accepts_every_bijection(perm):
    validate_permutation(perm)
    validate_permutation(perm, perm.size)


def test_validate_rejects_non_bijections():
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 0, 2]))  # duplicate
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 3]))  # out of range
    with pytest.raises(ValueError):
        validate_permutation(np.array([0, 1]), 3)  # wrong length


def test_identity_helpers():
    ident = identity_permutation(6)
    assert is_identity(ident)
    assert not is_identity(np.array([1, 0]))
    np.testing.assert_array_equal(inverse_permutation(ident), ident)


def test_fingerprint_is_content_addressed():
    perm = np.array([2, 0, 1], dtype=np.int64)
    assert permutation_fingerprint(perm) == permutation_fingerprint(perm.copy())
    assert (permutation_fingerprint(perm)
            != permutation_fingerprint(identity_permutation(3)))


# -- CSR permutation round trips -----------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_csr_permute_preserves_nnz_and_values(seed):
    rng = np.random.default_rng(seed)
    matrix = random_uniform(30, 4, seed=seed % 997)
    perm = rng.permutation(matrix.num_rows).astype(np.int64)
    permuted = matrix.permute(perm, perm)
    assert permuted.nnz == matrix.nnz
    np.testing.assert_allclose(
        np.sort(permuted.values), np.sort(matrix.values)
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_csr_permute_then_inverse_is_identity(seed):
    rng = np.random.default_rng(seed)
    matrix = random_uniform(25, 3, seed=seed % 991)
    perm = rng.permutation(matrix.num_rows).astype(np.int64)
    inv = inverse_permutation(perm)
    roundtrip = matrix.permute(perm, perm).permute(inv, inv)
    np.testing.assert_array_equal(roundtrip.to_dense(), matrix.to_dense())


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_csr_permute_is_a_gather(seed):
    rng = np.random.default_rng(seed)
    matrix = random_uniform(20, 3, seed=seed % 983)
    rows = rng.permutation(matrix.num_rows).astype(np.int64)
    cols = rng.permutation(matrix.num_cols).astype(np.int64)
    np.testing.assert_array_equal(
        matrix.permute(rows, cols).to_dense(),
        matrix.to_dense()[np.ix_(rows, cols)],
    )
