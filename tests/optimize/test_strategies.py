"""Candidate builders: every strategy yields a valid reordering."""

import numpy as np
import pytest

from repro.matrices import banded, random_uniform
from repro.optimize import (
    BuildCostModel,
    DEFAULT_STRATEGIES,
    ROW_BLOCK_GRID,
    candidates_for,
    first_touch_columns,
    validate_permutation,
)


def shuffled_band(n=200, seed=0):
    base = banded(n, 8, 4, seed=seed)
    perm = np.random.default_rng(seed).permutation(n).astype(np.int64)
    return base.permute(perm, perm)


def test_candidates_for_default_registry():
    labels = [c.label for c in candidates_for(DEFAULT_STRATEGIES)]
    assert labels[0] == "identity"
    # row_block expands to one candidate per grid point
    for block_cols in ROW_BLOCK_GRID:
        assert f"row_block/b{block_cols}" in labels
    assert len(labels) == len(set(labels))


def test_candidates_for_identity_always_present():
    labels = [c.label for c in candidates_for(("rcm",))]
    assert labels[0] == "identity"


def test_candidates_for_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="bogus"):
        candidates_for(("identity", "bogus"))


def test_rcm_inapplicable_to_rectangular():
    rect = random_uniform(20, 3, seed=1, num_cols=40)
    by_label = {c.label: c for c in candidates_for(DEFAULT_STRATEGIES)}
    assert not by_label["rcm"].applicable(rect)
    assert by_label["identity"].applicable(rect)
    assert by_label["degree_sort"].applicable(rect)


@pytest.mark.parametrize("seed", [0, 7])
def test_every_builder_yields_valid_permutations(seed):
    matrix = shuffled_band(seed=3)
    for candidate in candidates_for(DEFAULT_STRATEGIES):
        row_perm, col_perm = candidate.build(matrix, seed)
        validate_permutation(row_perm, matrix.num_rows)
        validate_permutation(col_perm, matrix.num_cols)
        permuted = matrix.permute(row_perm, col_perm)
        assert permuted.nnz == matrix.nnz, candidate.label
        np.testing.assert_allclose(
            np.sort(permuted.values), np.sort(matrix.values),
            err_msg=candidate.label,
        )


def test_builders_are_seed_deterministic():
    matrix = shuffled_band(seed=5)
    for candidate in candidates_for(DEFAULT_STRATEGIES):
        first = candidate.build(matrix, 11)
        second = candidate.build(matrix, 11)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])


def test_first_touch_columns_is_a_permutation():
    matrix = shuffled_band(seed=9)
    row_order = np.arange(matrix.num_rows, dtype=np.int64)
    cols = first_touch_columns(matrix, row_order)
    validate_permutation(cols, matrix.num_cols)


def test_build_cost_model_scales_with_nnz():
    model = BuildCostModel(base_seconds=1e-3, per_nonzero_seconds=1e-6)
    assert model.predict_seconds(0) == pytest.approx(1e-3)
    assert model.predict_seconds(10_000) > model.predict_seconds(100)
