"""The budgeted reordering search: gate, screen, budget, determinism."""

import dataclasses

import numpy as np
import pytest

from repro.experiments import ExperimentSetup
from repro.matrices import banded, random_uniform
from repro.optimize import (
    SearchConfig,
    optimize,
    optimize_fingerprint,
)

#: 1/64 machine scale, one CMG — small matrices reach every class.
SETUP = ExperimentSetup(scale=64, num_threads=8)


def shuffled_band(n=12_000):
    """Class-3 structure hidden behind a random symmetric permutation."""
    base = banded(n, 24, 6, seed=3)
    perm = np.random.default_rng(7).permutation(n).astype(np.int64)
    return dataclasses.replace(base.permute(perm, perm), name="shuffled_band")


@pytest.fixture(scope="module")
def structured_result():
    return optimize(shuffled_band(), SETUP, SearchConfig(seed=0)).to_dict()


def test_confirmed_improvement_on_class3(structured_result):
    confirmation = structured_result["confirmation"]
    assert confirmation["improved"]
    assert confirmation["improvement"] > 0
    assert confirmation["after_misses"] < confirmation["before_misses"]
    assert structured_result["winner"]["label"] != "identity"
    assert not structured_result["winner"]["identity"]


def test_screens_cheap_confirms_exact(structured_result):
    # tiers 0/1 do the screening; the only exact passes are the
    # before/after confirmation (2 answers at tier 2, never more)
    answers = structured_result["fidelity"]["ladder_answers"]
    assert answers["2"] == 2
    assert answers["1"] >= 1
    assert structured_result["confirmation"]["tier"] == 2
    # the trace replays the same story
    events = [t["event"] for t in structured_result["trace"]]
    assert events.index("confirm") == len(events) - 1


def test_winner_permutation_is_valid(structured_result):
    winner = structured_result["winner"]
    n = 12_000
    assert sorted(winner["row_perm"]) == list(range(n))
    assert sorted(winner["col_perm"]) == list(range(n))


def test_search_is_deterministic(structured_result):
    repeat = optimize(shuffled_band(), SETUP, SearchConfig(seed=0)).to_dict()
    assert (optimize_fingerprint(repeat)
            == optimize_fingerprint(structured_result))
    # timings are wall clock and excluded from the fingerprint
    repeat["timings"] = {"total_seconds": 123.0}
    assert (optimize_fingerprint(repeat)
            == optimize_fingerprint(structured_result))


def test_gate_short_circuits_clean_band():
    result = optimize(banded(2_000, 16, 4, seed=2), SETUP,
                      SearchConfig()).to_dict()
    assert result["fidelity"]["gated"]
    assert result["winner"]["label"] == "identity"
    assert result["winner"]["identity"]
    assert result["fidelity"]["ladder_answers"] == {"0": 1, "2": 1}
    statuses = {e["label"]: e["status"] for e in result["strategies"]}
    assert statuses.pop("identity") == "winner"
    assert set(statuses.values()) == {"gated"}


def test_tiny_budget_skips_every_screen():
    # n=12_000 keeps x out of its partition, so the tier-0 gate stays
    # open and the budget is what stops the screens
    result = optimize(shuffled_band(), SETUP,
                      SearchConfig(budget_seconds=1e-9)).to_dict()
    assert result["winner"]["label"] == "identity"
    statuses = {e["label"]: e["status"] for e in result["strategies"]}
    assert statuses.pop("identity") == "winner"
    assert set(statuses.values()) == {"skipped_budget"}
    # identity still gets its exact confirmation
    assert result["confirmation"]["improvement"] == 0.0


def test_no_hallucinated_improvement_on_random():
    # no structure to recover: the confirmed improvement is never negative
    result = optimize(random_uniform(12_000, 6, seed=5), SETUP,
                      SearchConfig()).to_dict()
    confirmation = result["confirmation"]
    assert confirmation["improvement"] >= 0
    assert confirmation["after_misses"] <= confirmation["before_misses"]


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown strategies"):
        optimize(banded(100, 4, 2, seed=0), SETUP,
                 SearchConfig(strategies=("identity", "bogus")))


def test_config_validation():
    with pytest.raises(ValueError):
        SearchConfig(budget_seconds=0)
    with pytest.raises(ValueError):
        SearchConfig(seed=-1)
    with pytest.raises(ValueError):
        SearchConfig(screen_rate=0)
    with pytest.raises(ValueError):
        SearchConfig(prune_factor=0.5)
    with pytest.raises(ValueError):
        SearchConfig(accuracy=-0.1)
