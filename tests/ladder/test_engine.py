"""The fidelity ladder: escalation semantics, byte-identity, calibration.

Three acceptance families live here:

* escalation — ``Ladder.answer`` tries tiers in increasing order, skips
  tiers whose a-priori bound cannot satisfy the SLO, stops at the first
  posterior bound that does, honours ``max_tier``, and reports honest
  ``slo_met`` / fidelity metadata (property-tested over SLOs);
* byte-identity — tier 2 reproduces the legacy ``MethodB`` /
  ``SectorAdvisor`` answers exactly and tier 3 the raw simulator counts,
  so the ladder changes *selection*, never *answers*;
* calibration — the tier-1 statistical bound covers the sampled-vs-exact
  deviation across generator matrices of all four paper classes, and
  every tier's observed error against simulated ground truth stays
  within its reported bound on small class-1/class-2 matrices.
"""

import pytest

from repro.core import MethodB, SectorAdvisor
from repro.core.analytic import method_b_scale_factors, stream_misses
from repro.core.classification import classify
from repro.experiments import ExperimentSetup
from repro.ladder import Ladder, MatrixDims, SampledMethodB, build_sim
from repro.ladder import tier0 as ladder_tier0
from repro.matrices import banded, random_uniform
from repro.resilience import degraded
from repro.spmv.sector_policy import SectorPolicy, listing1_policy

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False

SETUP = ExperimentSetup(scale=16, num_threads=48, iterations=2)
MACHINE = SETUP.machine()
LADDER = Ladder(SETUP)

#: Tiny class-1 matrix: every tier (including the simulation) is cheap.
TINY = banded(2_000, 16, 4, seed=3)
TINY_DIMS = MatrixDims.of(TINY)

POLICIES = [
    SectorPolicy.from_dict({"l2_sector1_ways": w}).to_dict() for w in (0, 2, 5)
]


def _answer(matrix, dims, **kwargs):
    return LADDER.answer(
        "predict", dims, lambda: matrix, name=matrix.name,
        policies=POLICIES, **kwargs,
    )


# -- escalation ---------------------------------------------------------


def test_no_slo_answers_at_historical_tier():
    answer = _answer(TINY, TINY_DIMS)
    assert answer.tiers_tried == (2,)
    assert answer.tier == 2
    assert answer.slo_met
    assert answer.accuracy_slo is None


def test_no_slo_respects_max_tier():
    for cap in (0, 1, 2):
        answer = _answer(TINY, TINY_DIMS, max_tier=cap)
        assert answer.tiers_tried == (cap,)


def test_loose_slo_answers_at_tier0():
    answer = _answer(TINY, TINY_DIMS, accuracy=2.0)
    assert answer.tier == 0
    assert answer.slo_met
    assert answer.error_bound <= 2.0
    assert answer.cost_seconds >= 0.0


def test_unattainable_slo_reaches_ground_truth():
    answer = _answer(TINY, TINY_DIMS, accuracy=1e-9)
    assert answer.tier == 3
    assert answer.error_bound == 0.0
    assert answer.slo_met
    # every cheaper tier was skipped a priori: its bound cannot reach 1e-9
    assert answer.tiers_tried == (3,)


def test_max_tier_cap_reports_unmet_slo():
    answer = _answer(TINY, TINY_DIMS, accuracy=1e-9, max_tier=1)
    assert answer.tier == 1
    assert not answer.slo_met
    assert answer.error_bound > 1e-9
    # the capped ladder still tried its best allowed tier (0 is skipped:
    # it cannot satisfy the SLO and is not the last resort)
    assert answer.tiers_tried == (1,)


def test_classify_is_always_tier0_exact():
    answer = LADDER.answer(
        "classify", TINY_DIMS, lambda: TINY, name=TINY.name,
        way_options=[0, 5], accuracy=1e-12,
    )
    assert answer.tier == 0
    assert answer.error_bound == 0.0
    assert answer.slo_met
    cmgs = -(-SETUP.num_threads // MACHINE.cores_per_cmg)
    assert answer.result["classes"]["5"] == classify(
        TINY_DIMS, MACHINE, 5, cmgs
    ).value


def test_apriori_skip_jumps_over_hopeless_tiers():
    # class-2 matrix: the analytic model bound (7.0) cannot satisfy 0.5,
    # so every analytic tier is skipped and the simulation answers
    matrix = random_uniform(20_000, 8, seed=1)
    answer = _answer(matrix, MatrixDims.of(matrix), accuracy=0.5)
    assert answer.tiers_tried == (3,)
    assert answer.slo_met


def test_fidelity_payload_shape():
    fidelity = _answer(TINY, TINY_DIMS, accuracy=2.0).fidelity()
    assert fidelity["tier"] == 0
    assert fidelity["accuracy_slo"] == 2.0
    assert fidelity["slo_met"] is True
    assert fidelity["escalations"] == 0
    assert len(fidelity["tier_bounds"]) == len(fidelity["tiers_tried"])
    assert fidelity["cost_seconds"] >= 0.0
    assert fidelity["predicted_cost_seconds"] > 0.0


def test_invalid_arguments_are_rejected():
    with pytest.raises(ValueError):
        LADDER.answer("sweep", TINY_DIMS, lambda: TINY, name=TINY.name)
    with pytest.raises(ValueError):
        _answer(TINY, TINY_DIMS, max_tier=4)
    with pytest.raises(ValueError):
        _answer(TINY, TINY_DIMS, accuracy=0.0)


if HAVE_HYPOTHESIS:

    @settings(max_examples=12, deadline=None)
    @given(slo=st.floats(min_value=0.01, max_value=10.0))
    def test_escalation_invariants_over_slos(slo):
        answer = _answer(TINY, TINY_DIMS, accuracy=slo)
        assert list(answer.tiers_tried) == sorted(set(answer.tiers_tried))
        assert answer.tier == answer.tiers_tried[-1]
        assert len(answer.tier_bounds) == len(answer.tiers_tried)
        assert answer.error_bound == answer.tier_bounds[-1]
        assert answer.slo_met == (answer.error_bound <= slo)
        assert answer.slo_met  # max_tier=3: ground truth meets every SLO

    @settings(max_examples=8, deadline=None)
    @given(
        tight=st.floats(min_value=0.01, max_value=5.0),
        slack=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_looser_slo_never_needs_a_higher_tier(tight, slack):
        loose_answer = _answer(TINY, TINY_DIMS, accuracy=tight + slack)
        tight_answer = _answer(TINY, TINY_DIMS, accuracy=tight)
        assert loose_answer.tier <= tight_answer.tier


# -- byte-identity ------------------------------------------------------


def test_tier2_predict_is_byte_identical_to_method_b():
    matrix = random_uniform(6_000, 8, seed=3)
    answer = _answer(matrix, MatrixDims.of(matrix), max_tier=2)
    model = MethodB(matrix, MACHINE, num_threads=SETUP.num_threads,
                    iterations=SETUP.iterations)
    for entry in answer.result["predictions"]:
        direct = model.predict(SectorPolicy.from_dict(entry["policy"]))
        assert entry["l2_misses"] == direct.l2_misses
        assert entry["per_array"] == {
            k: int(v) for k, v in direct.per_array.items()
        }


def test_tier2_advise_is_byte_identical_to_advisor():
    matrix = banded(3_000, 24, 5, seed=4)
    answer = LADDER.answer(
        "advise", MatrixDims.of(matrix), lambda: matrix, name=matrix.name,
        way_options=[2, 5], max_tier=2,
    )
    direct = SectorAdvisor(
        MACHINE, num_threads=SETUP.num_threads, way_options=(2, 5),
        consider_isolate_x=True, min_sector1_ways_with_prefetch=4,
    ).recommend(matrix)
    assert answer.result == direct.to_dict()


def test_tier3_predict_matches_raw_simulator():
    answer = _answer(TINY, TINY_DIMS, accuracy=1e-9)
    sim = build_sim(TINY, MACHINE, SETUP.sim_config())
    for entry in answer.result["predictions"]:
        events = sim.events(SectorPolicy.from_dict(entry["policy"]))
        assert entry["l2_misses"] == int(events.l2_refill)
    assert answer.result["method"] == "sim"


# -- degraded mode delegates to tier 0 ----------------------------------


def test_degraded_mode_is_the_ladder_tier0():
    assert degraded.degraded_predict is ladder_tier0.closed_predict
    assert degraded.degraded_classify is ladder_tier0.closed_classify
    assert degraded.predict_policy is ladder_tier0.predict_policy
    answer = _answer(TINY, TINY_DIMS, max_tier=0)
    direct = degraded.degraded_predict(
        TINY_DIMS, MACHINE, SETUP.num_threads, POLICIES, TINY.name
    )
    assert answer.result == direct


# -- calibration --------------------------------------------------------

#: Generator matrices covering the four paper classes under ``SETUP``
#: (class is per way split; each entry names the classes it contributes).
CLASS_MATRICES = [
    ("class1", lambda: banded(8_000, 32, 4, seed=1)),
    ("class2", lambda: random_uniform(20_000, 8, seed=1)),
    ("class2_3a", lambda: banded(40_000, 64, 6, seed=2)),
    ("class3b", lambda: random_uniform(80_000, 4, seed=9)),
]


@pytest.mark.parametrize(
    "factory", [f for _, f in CLASS_MATRICES],
    ids=[name for name, _ in CLASS_MATRICES],
)
def test_sampling_bound_covers_sampled_vs_exact(factory):
    """Tier 1's statistical term covers |sampled - exact| x misses.

    At every profile query point the ladder prices (the partitioned
    capacities of the Listing-1 splits and the shared-capacity point),
    the SHARDS estimate must deviate from the exact single-period pass
    by at most ``z`` standard errors plus the bias slack — the exact
    composition of the posterior tier-1 bound.
    """
    matrix = factory()
    cal = LADDER.calibration
    floor = max(1, stream_misses(matrix, MACHINE.line_size).total)
    exact = MethodB(matrix, MACHINE, num_threads=SETUP.num_threads,
                    iterations=SETUP.iterations)
    sampled = SampledMethodB(matrix, MACHINE,
                             num_threads=SETUP.num_threads,
                             rate=cal.sampling_rate)
    s1, s2 = method_b_scale_factors(matrix)
    points = [(s1, MACHINE.l2.partition_lines(w)[0]) for w in (2, 5)]
    points.append((s2, MACHINE.l2.capacity_lines))
    for scale, capacity in points:
        got = sampled.x_misses(scale, capacity)
        want = exact.x_misses(scale, capacity)
        slack = (cal.sampling_z * sampled.x_misses_error(scale, capacity)
                 + cal.sampling_bias * floor)
        assert abs(got - want) <= slack, (
            f"sampled {got} vs exact {want} at (scale={scale:.3f}, "
            f"capacity={capacity}): beyond the statistical bound {slack:.1f}"
        )


@pytest.mark.parametrize(
    "factory", [CLASS_MATRICES[0][1], CLASS_MATRICES[1][1]],
    ids=["class1", "class2"],
)
def test_observed_errors_within_reported_bounds(factory):
    """Tiers 0-2 stay inside their bounds against simulated ground truth."""
    matrix = factory()
    dims = MatrixDims.of(matrix)
    floor = max(1, stream_misses(dims, MACHINE.line_size).total)
    truth_answer = _answer(matrix, dims, accuracy=1e-9)
    truth = {
        str(sorted(p["policy"].items())): p["l2_misses"]
        for p in truth_answer.result["predictions"]
    }
    for tier in (0, 1, 2):
        answer = _answer(matrix, dims, max_tier=tier)
        error = max(
            abs(p["l2_misses"] - truth[str(sorted(p["policy"].items()))])
            / max(truth[str(sorted(p["policy"].items()))], floor)
            for p in answer.result["predictions"]
        )
        assert error <= answer.error_bound, (
            f"tier {tier}: observed {error:.3f} > bound "
            f"{answer.error_bound:.3f}"
        )
