"""Vectorized set-associative LRU vs. a brute-force per-set LRU oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import simulate
from repro.cachesim.setassoc import set_index
from repro.core import MemoryLayout, spmv_trace
from repro.core.trace import MemoryTrace
from repro.machine.a64fx import CacheGeometry
from repro.matrices import random_uniform
from repro.spmv import listing1_policy


def brute_force_lru(lines, sets, ways_of_ref, sectors, cache_ids):
    """Dict-of-lists LRU, victim = least recently used within (set, sector)."""
    stacks: dict[tuple, list] = {}
    hits = np.zeros(len(lines), dtype=bool)
    idx = set_index(np.asarray(lines), sets)
    for i, line in enumerate(lines):
        key = (int(cache_ids[i]), int(idx[i]), int(sectors[i]))
        stack = stacks.setdefault(key, [])
        ways = int(ways_of_ref[i])
        if line in stack:
            pos = stack.index(line)
            hits[i] = pos < ways
            del stack[pos]
        stack.insert(0, line)
        del stack[ways * 4 :]  # bound memory; far beyond any way count
    return hits


def make_trace(lines, threads=None):
    lines = np.asarray(lines, dtype=np.int64)
    n = len(lines)
    layout = MemoryLayout.for_matrix(random_uniform(16, 2, seed=0), 256)
    return MemoryTrace(
        lines,
        np.zeros(n, dtype=np.int8),
        np.zeros(n, dtype=np.int32) if threads is None else np.asarray(threads),
        layout,
    )


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 5000),
    sets=st.sampled_from([2, 4, 8]),
    ways=st.sampled_from([2, 4]),
    split=st.integers(0, 3),
)
def test_matches_brute_force_lru(seed, sets, ways, split):
    if split >= ways:
        split = 0
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 300))
    lines = rng.integers(0, sets * ways * 3, n)
    sectors = rng.integers(0, 2, n).astype(np.int8)
    cache_ids = rng.integers(0, 2, n)
    geometry = CacheGeometry(line_size=256, num_sets=sets, ways=ways)
    trace = make_trace(lines)
    sim = simulate(trace, geometry, listing1_policy(1), cache_ids=cache_ids)
    object.__setattr__(sim, "sectors", sectors)  # randomized sector labels
    got = sim.hit_mask(split)
    if split == 0:
        ways_of_ref = np.full(n, ways)
        sector_key = np.zeros(n, dtype=np.int8)
    else:
        ways_of_ref = np.where(sectors == 1, split, ways - split)
        sector_key = sectors
    expected = brute_force_lru(lines, sets, ways_of_ref, sector_key, cache_ids)
    np.testing.assert_array_equal(got, expected)


def test_hit_mask_validates_way_split():
    geometry = CacheGeometry(line_size=256, num_sets=4, ways=4)
    trace = make_trace([0, 1, 2])
    sim = simulate(trace, geometry, listing1_policy(1))
    with pytest.raises(ValueError):
        sim.hit_mask(4)
    with pytest.raises(ValueError):
        sim.hit_mask(-1)


def test_one_rd_pass_serves_every_way_split():
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 600, 5000)
    geometry = CacheGeometry(line_size=256, num_sets=8, ways=8)
    matrix = random_uniform(200, 4, seed=1)
    trace = spmv_trace(matrix, MemoryLayout.for_matrix(matrix, 256))[0]
    sim = simulate(trace, geometry, listing1_policy(1))
    masks = {w: sim.hit_mask(w) for w in range(0, 8)}
    # partitioned reuse distances computed once: cache holds two entries
    assert set(sim._cache) == {"shared", "split"}
    # more sector-1 ways can only help sector-1 references
    sector1 = sim.sectors == 1
    for w in range(2, 8):
        assert np.all(masks[w][sector1] >= masks[w - 1][sector1])


def test_set_index_is_deterministic_permutation_per_block():
    sets = 128
    lines = np.arange(sets * 16, dtype=np.int64)
    idx = set_index(lines, sets)
    assert idx.min() >= 0 and idx.max() < sets
    # every aligned block of `sets` consecutive lines covers all sets
    for block in range(16):
        chunk = idx[block * sets : (block + 1) * sets]
        assert len(np.unique(chunk)) == sets


def test_set_index_breaks_stride_phase_locking():
    # two streams offset by exactly num_sets lines must not collide forever
    sets = 128
    a = set_index(np.arange(0, 4 * sets, dtype=np.int64), sets)
    b = set_index(np.arange(sets, 5 * sets, dtype=np.int64), sets)
    collisions = float((a == b).mean())
    assert collisions < 0.25  # plain modulo would give 1.0
