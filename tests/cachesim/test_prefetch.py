"""Stream-prefetcher trace augmentation."""

import numpy as np
import pytest

from repro.cachesim import STREAMED_ARRAYS, inject_prefetches
from repro.core import ARRAY_ID, MemoryLayout, repeat_trace, spmv_trace
from repro.matrices import banded
from repro.spmv import static_schedule


def build_trace(num_threads=1):
    matrix = banded(256, 8, 8, seed=0)
    layout = MemoryLayout.for_matrix(matrix, 256)
    sched = static_schedule(matrix, num_threads)
    traces = spmv_trace(matrix, layout, sched)
    from repro.parallel import interleave

    return matrix, interleave(traces, "mcs")


def test_distance_zero_is_identity():
    _, trace = build_trace()
    assert inject_prefetches(trace, 0) is trace


def test_negative_distance_rejected():
    _, trace = build_trace()
    with pytest.raises(ValueError):
        inject_prefetches(trace, -1)


def test_injected_refs_are_tagged_and_demand_preserved():
    _, trace = build_trace()
    augmented = inject_prefetches(trace, 4)
    demand = augmented.select(~augmented.is_prefetch)
    np.testing.assert_array_equal(demand.lines, trace.lines)
    np.testing.assert_array_equal(demand.arrays, trace.arrays)
    assert augmented.is_prefetch.sum() > 0


def test_prefetches_only_on_streamed_arrays():
    _, trace = build_trace()
    augmented = inject_prefetches(trace, 4)
    stream_ids = {ARRAY_ID[a] for a in STREAMED_ARRAYS}
    prefetched = set(np.unique(augmented.arrays[augmented.is_prefetch]).tolist())
    assert prefetched <= stream_ids
    assert ARRAY_ID["x"] not in prefetched


def test_prefetch_stays_within_array_extent():
    _, trace = build_trace()
    augmented = inject_prefetches(trace, 8)
    layout = trace.layout
    for aid in np.unique(augmented.arrays[augmented.is_prefetch]):
        sel = augmented.is_prefetch & (augmented.arrays == aid)
        lines = augmented.lines[sel]
        assert lines.min() >= layout.base[aid]
        assert lines.max() < layout.base[aid] + layout.num_lines[aid]


def test_prefetch_precedes_demand_use():
    # with distance d, the demand access to a steady-state stream line must
    # find a prefetch for that line earlier in the trace
    _, trace = build_trace()
    d = 4
    augmented = inject_prefetches(trace, d)
    values_id = ARRAY_ID["values"]
    sel = augmented.arrays == values_id
    lines = augmented.lines[sel]
    is_pf = augmented.is_prefetch[sel]
    first_pf: dict[int, int] = {}
    first_demand: dict[int, int] = {}
    for pos, (line, pf) in enumerate(zip(lines.tolist(), is_pf.tolist())):
        target = first_pf if pf else first_demand
        target.setdefault(line, pos)
    covered = [l for l in first_demand if l in first_pf]
    assert covered, "no prefetched lines found"
    # every line beyond the ramp is prefetched before its demand use
    late = [l for l in covered if first_pf[l] > first_demand[l]]
    assert not late


def test_per_thread_ramps():
    _, merged = build_trace(num_threads=4)
    augmented = inject_prefetches(merged, 3)
    # each thread's stream ramps independently: at least one prefetch per
    # thread per streamed array that actually appears
    for t in range(4):
        sel = augmented.is_prefetch & (augmented.threads == t)
        assert sel.sum() > 0


def test_iteration_tags_carried_to_injections():
    _, trace = build_trace()
    repeated = repeat_trace(trace, 2)
    augmented = inject_prefetches(repeated, 2)
    pf = augmented.is_prefetch
    assert set(np.unique(augmented.iteration[pf]).tolist()) == {0, 1}
