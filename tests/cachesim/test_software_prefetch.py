"""Software x-prefetch injection."""

import numpy as np
import pytest

from repro.cachesim.software_prefetch import inject_x_software_prefetch
from repro.core import ARRAY_ID, MemoryLayout, spmv_trace
from repro.matrices import random_uniform
from repro.parallel import interleave
from repro.spmv import static_schedule


def build_trace(num_threads=1, n=400, npr=4, seed=0):
    matrix = random_uniform(n, npr, seed=seed)
    layout = MemoryLayout.for_matrix(matrix, 256)
    traces = spmv_trace(matrix, layout, static_schedule(matrix, num_threads))
    return interleave(traces, "mcs")


def test_zero_lookahead_is_identity():
    trace = build_trace()
    assert inject_x_software_prefetch(trace, 0) is trace
    with pytest.raises(ValueError):
        inject_x_software_prefetch(trace, -1)


def test_injections_are_x_prefetches_only():
    trace = build_trace()
    augmented = inject_x_software_prefetch(trace, 8)
    injected = augmented.is_prefetch & ~np.isin(
        np.arange(len(augmented)), np.arange(len(trace))
    )
    pf = augmented.select(augmented.is_prefetch)
    assert np.all(pf.arrays == ARRAY_ID["x"])
    assert len(augmented) > len(trace)


def test_demand_sequence_preserved():
    trace = build_trace(num_threads=3)
    augmented = inject_x_software_prefetch(trace, 4)
    demand = augmented.select(~augmented.is_prefetch)
    np.testing.assert_array_equal(demand.lines, trace.lines)
    np.testing.assert_array_equal(demand.threads, trace.threads)


def test_every_steady_x_line_is_prefetched_before_use():
    trace = build_trace(num_threads=2)
    d = 4
    augmented = inject_x_software_prefetch(trace, d)
    for t in range(2):
        sel = (augmented.arrays == ARRAY_ID["x"]) & (augmented.threads == t)
        lines = augmented.lines[sel]
        is_pf = augmented.is_prefetch[sel]
        # the k-th demand x ref (k >= d... well, all of them thanks to the
        # preamble) must have been named by an earlier prefetch
        first_pf: dict[int, int] = {}
        demand_positions = []
        for pos, (line, pf) in enumerate(zip(lines.tolist(), is_pf.tolist())):
            if pf:
                first_pf.setdefault((pos, line)[1], pos)
            else:
                demand_positions.append((pos, line))
        # all but at most the first demand ref are covered
        uncovered = [
            (pos, line)
            for pos, line in demand_positions[1:]
            if line not in first_pf or first_pf[line] > pos
        ]
        assert not uncovered


def test_prefetch_count_matches_lookahead_structure():
    trace = build_trace(num_threads=1, n=100, npr=2)
    d = 3
    augmented = inject_x_software_prefetch(trace, d)
    x_demand = int((trace.arrays == ARRAY_ID["x"]).sum())
    injected = len(augmented) - len(trace)
    # steady: one per x ref beyond the last d, plus d-1 preamble slots
    assert injected == (x_demand - d) + (d - 1)
