"""SpMVCacheSim: end-to-end hierarchy behaviour."""

import numpy as np
import pytest

from repro.cachesim import SimConfig, SpMVCacheSim
from repro.core import stream_misses
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform
from repro.spmv import SectorPolicy, listing1_policy, no_sector_cache

MACHINE = scaled_machine(16)


def class2_matrix():
    return banded(3_000, 60, 40, seed=1)


def test_streaming_refills_close_to_line_counts():
    matrix = class2_matrix()
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    events = sim.baseline_events()
    streams = stream_misses(matrix, MACHINE.line_size)
    # the streamed matrix data must be fetched about once per iteration
    assert events.l2_refill >= streams.matrix_data
    assert events.l2_refill <= 1.3 * streams.total


def test_sector_cache_reduces_misses_for_class2():
    matrix = class2_matrix()
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    base = sim.baseline_events()
    part = sim.events(listing1_policy(5))
    assert part.l2_misses < base.l2_misses


def test_prefetcher_converts_demand_to_prefetch_fills():
    matrix = class2_matrix()
    with_pf = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    without = SpMVCacheSim(
        matrix,
        MACHINE,
        SimConfig(num_threads=1, l1_prefetch_distance=0, l2_prefetch_distance=0),
    )
    ev_pf = with_pf.baseline_events()
    ev_no = without.baseline_events()
    assert ev_pf.l2_refill_prefetch > 0
    assert ev_no.l2_refill_prefetch == 0
    assert ev_pf.l2_refill_demand < ev_no.l2_refill_demand


def test_small_sector_causes_premature_eviction_in_parallel():
    # the Section 4.3 pathology: 2 ways + aggressive prefetch + 12 threads
    matrix = random_uniform(18_000, 9, seed=2)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=48))
    two = sim.events(listing1_policy(2))
    five = sim.events(listing1_policy(5))
    assert two.l2_refill_demand > five.l2_refill_demand


def test_reducing_prefetch_distance_heals_two_way_sector():
    # the paper's confirmation experiment (Section 4.3)
    matrix = random_uniform(18_000, 9, seed=2)
    aggressive = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=48))
    short = SpMVCacheSim(
        matrix, MACHINE, SimConfig(num_threads=48, l2_prefetch_distance=1)
    )
    assert (
        short.events(listing1_policy(2)).l2_refill_demand
        < aggressive.events(listing1_policy(2)).l2_refill_demand
    )


def test_l2_stream_is_l1_filtered():
    matrix = class2_matrix()
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    events = sim.baseline_events()
    # far more references hit L1 than reach L2
    assert events.l1_refill < len(sim.demand_trace)
    stream, _ = sim._l2_level(0)
    assert len(stream) < len(sim._l1_stream)


def test_events_validate_policy_compatibility():
    matrix = banded(300, 10, 8, seed=0)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    with pytest.raises(ValueError):
        sim.events(SectorPolicy(sector1_arrays=frozenset({"x"}), l2_sector1_ways=2))
    with pytest.raises(ValueError):
        sim.events(listing1_policy(16))
    with pytest.raises(ValueError):
        SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=49))


def test_sweep_covers_grid():
    matrix = banded(300, 10, 8, seed=0)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=4))
    grid = sim.sweep((2, 5), (0, 1))
    assert set(grid) == {(2, 0), (5, 0), (2, 1), (5, 1)}


def test_writebacks_only_from_dirty_lines():
    matrix = class2_matrix()
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    events = sim.baseline_events()
    streams = stream_misses(matrix, MACHINE.line_size)
    assert events.l2_writeback <= streams.y * 1.2


def test_deterministic_across_instances():
    matrix = banded(500, 20, 10, seed=5)
    a = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=8)).baseline_events()
    b = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=8)).baseline_events()
    assert a == b
