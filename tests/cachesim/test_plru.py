"""Tree-PLRU cache: unit behaviour and comparison with LRU."""

import numpy as np
import pytest

from repro.cachesim import PLRUCache, TreePLRU, simulate, simulate_plru
from repro.cachesim.plru import events_from_hits
from repro.core import MemoryLayout
from repro.core.trace import MemoryTrace
from repro.machine.a64fx import CacheGeometry
from repro.matrices import random_uniform
from repro.spmv import listing1_policy


def test_tree_plru_points_away_from_touched_way():
    tree = TreePLRU(4)
    tree.touch(0)
    assert tree.victim() != 0
    tree.touch(tree.victim())
    tree.touch(1)
    assert tree.victim() not in (1,)


def test_tree_plru_cycles_through_all_ways():
    tree = TreePLRU(8)
    victims = []
    for _ in range(8):
        v = tree.victim()
        victims.append(v)
        tree.touch(v)
    assert sorted(victims) == list(range(8))


def test_tree_plru_limit_restricts_victims():
    tree = TreePLRU(4)
    for _ in range(20):
        v = tree.victim(limit=3)
        assert v < 3
        tree.touch(v)


def test_tree_plru_validation():
    with pytest.raises(ValueError):
        TreePLRU(3)
    tree = TreePLRU(4)
    with pytest.raises(ValueError):
        tree.touch(4)
    with pytest.raises(ValueError):
        tree.victim(limit=0)


def test_plru_cache_basic_hits_and_misses():
    geometry = CacheGeometry(line_size=256, num_sets=1, ways=4)
    cache = PLRUCache(geometry)
    assert not cache.access(0)
    assert cache.access(0)
    for line in (1, 2, 3):
        cache.access(line)
    assert cache.access(0)  # still resident: 4 distinct lines in 4 ways
    cache.access(4)  # evicts something
    residents = sum(cache.access(l) for l in (0, 1, 2, 3, 4))
    assert residents >= 3  # exactly one line was evicted before re-touching


def test_plru_sector_partition_isolates_streams():
    geometry = CacheGeometry(line_size=256, num_sets=1, ways=4)
    cache = PLRUCache(geometry, sector1_ways=2)
    # stream through sector 1: must not evict sector-0 residents
    cache.access(100, sector=0)
    cache.access(101, sector=0)
    for line in range(20):
        cache.access(line, sector=1)
    assert cache.access(100, sector=0)
    assert cache.access(101, sector=0)


def test_plru_equals_lru_for_two_ways():
    # with 2 ways, tree-PLRU degenerates to exact LRU
    geometry = CacheGeometry(line_size=256, num_sets=4, ways=2)
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 32, 400)
    layout = MemoryLayout.for_matrix(random_uniform(16, 2, seed=0), 256)
    trace = MemoryTrace(
        lines, np.zeros(400, dtype=np.int8), np.zeros(400, dtype=np.int32), layout
    )
    sectors = np.zeros(400, dtype=np.int8)
    plru_hits = simulate_plru(trace, geometry, sectors, 0)
    lru = simulate(trace, geometry, listing1_policy(1))
    np.testing.assert_array_equal(plru_hits, lru.hit_mask(0))


def test_plru_close_to_lru_for_high_associativity():
    # the paper's Eq. (1) argument: LRU approximates PLRU well
    geometry = CacheGeometry(line_size=256, num_sets=8, ways=16)
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 400, 3000)
    layout = MemoryLayout.for_matrix(random_uniform(16, 2, seed=0), 256)
    trace = MemoryTrace(
        lines, np.zeros(3000, dtype=np.int8), np.zeros(3000, dtype=np.int32), layout
    )
    sectors = np.zeros(3000, dtype=np.int8)
    plru_miss = float((~simulate_plru(trace, geometry, sectors, 0)).mean())
    lru_miss = float(simulate(trace, geometry, listing1_policy(1)).miss_mask(0).mean())
    assert abs(plru_miss - lru_miss) / lru_miss < 0.08


def test_events_from_hits_classifies_fills():
    layout = MemoryLayout.for_matrix(random_uniform(16, 2, seed=0), 256)
    lines = np.array([0, 0, 1])
    trace = MemoryTrace(
        lines,
        np.zeros(3, dtype=np.int8),
        np.zeros(3, dtype=np.int32),
        layout,
        np.array([False, False, True]),
    )
    hits = np.array([False, True, False])
    events = events_from_hits(trace, hits)
    assert events.l2_refill == 2
    assert events.l2_refill_demand == 1
    assert events.l2_refill_prefetch == 1


def test_plru_cache_validation():
    geometry = CacheGeometry(line_size=256, num_sets=2, ways=4)
    with pytest.raises(ValueError):
        PLRUCache(geometry, sector1_ways=4)
