"""PMU-style event bookkeeping."""

import numpy as np
import pytest

from repro.cachesim import CacheEvents, combine, per_array_counts
from repro.core.layout import ARRAY_ID


def test_l2_misses_is_total_refills():
    ev = CacheEvents(l2_refill=100, l2_refill_demand=30, l2_refill_prefetch=70)
    assert ev.l2_misses == 100
    assert ev.l2_demand_misses == 30


def test_traffic_counts_refills_and_writebacks():
    ev = CacheEvents(l2_refill=10, l2_writeback=5)
    assert ev.traffic_bytes(256) == 15 * 256


def test_bandwidth_formula():
    ev = CacheEvents(l2_refill=1000, l2_writeback=200)
    assert ev.bandwidth(256, 1e-3) == pytest.approx(1200 * 256 / 1e-3)
    with pytest.raises(ValueError):
        ev.bandwidth(256, 0.0)


def test_combine_sums_fields_and_breakdowns():
    a = CacheEvents(l1_refill=1, l2_refill=2, per_array_l2_misses={"x": 2})
    b = CacheEvents(l1_refill=10, l2_refill=20, per_array_l2_misses={"x": 5, "y": 1})
    c = combine([a, b])
    assert c.l1_refill == 11
    assert c.l2_refill == 22
    assert c.per_array_l2_misses == {"x": 7, "y": 1}


def test_combine_empty_is_zero():
    assert combine([]).l2_refill == 0


def test_unknown_array_in_breakdown_rejected():
    with pytest.raises(ValueError):
        CacheEvents(per_array_l2_misses={"bogus": 1})


def test_per_array_counts_drops_zeros():
    arrays = np.array([ARRAY_ID["x"], ARRAY_ID["y"], ARRAY_ID["x"]], dtype=np.int8)
    miss = np.array([True, False, True])
    counts = per_array_counts(arrays, miss)
    assert counts == {"x": 2}
