"""Periodic fast path of the cache hierarchy vs. the doubled-trace oracle."""

import numpy as np
import pytest

from repro.cachesim.hierarchy import SimConfig, SpMVCacheSim
from repro.cachesim.prefetch import inject_prefetches
from repro.core import concat_traces, repeat_trace, spmv_trace
from repro.machine.a64fx import scaled_machine
from repro.matrices import banded, random_uniform
from repro.parallel import interleave
from repro.spmv import static_schedule
from repro.spmv.sector_policy import SectorPolicy, no_sector_cache

MACHINE = scaled_machine()

POLICIES = [no_sector_cache()] + [
    SectorPolicy(l2_sector1_ways=l2w, l1_sector1_ways=l1w)
    for l2w in (1, 2, 5, 7)
    for l1w in (0, 1, 2)
]


def _sims(matrix, **overrides):
    base = dict(num_threads=4, iterations=2)
    base.update(overrides)
    fast = SpMVCacheSim(matrix, MACHINE, SimConfig(**base, periodic=True))
    oracle = SpMVCacheSim(matrix, MACHINE, SimConfig(**base, periodic=False))
    assert fast.periodic and not oracle.periodic
    return fast, oracle


@pytest.mark.parametrize(
    "matrix",
    [banded(48, 3, 4, seed=1), random_uniform(30, 4, seed=2)],
    ids=lambda m: m.name,
)
@pytest.mark.parametrize("d1,d2", [(0, 0), (2, 4), (3, 2)])
def test_events_byte_identical(matrix, d1, d2):
    fast, oracle = _sims(
        matrix, l1_prefetch_distance=d1, l2_prefetch_distance=d2
    )
    for policy in POLICIES:
        assert fast.events(policy) == oracle.events(policy)


def test_small_streams_exercise_wrap_edge_cases():
    # tiny matrix, many threads: per-thread streams of one or two lines, the
    # regime where wrap-around new-line detection and absent ramps matter most
    matrix = banded(10, 1, 1, seed=3)
    fast, oracle = _sims(matrix, num_threads=8, l1_prefetch_distance=3)
    for policy in POLICIES:
        assert fast.events(policy) == oracle.events(policy)


def test_three_iterations_fall_back_to_the_oracle_path():
    matrix = banded(20, 2, 2, seed=4)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=2, iterations=3))
    assert not sim.periodic  # iteration >= 2 L2 streams are not exactly periodic
    ref = SpMVCacheSim(
        matrix, MACHINE, SimConfig(num_threads=2, iterations=3, periodic=False)
    )
    assert sim.events(no_sector_cache()) == ref.events(no_sector_cache())


def test_periodic_demand_trace_is_one_period():
    matrix = banded(24, 2, 3, seed=5)
    fast, oracle = _sims(matrix, num_threads=2)
    assert 2 * len(fast.demand_trace) == len(oracle.demand_trace)


def test_periodic_injection_matches_doubled_injection():
    # iteration >= 1 of injecting into the doubled trace == periodic injection
    matrix = random_uniform(20, 3, seed=6)
    sched = static_schedule(matrix, 3)
    merged = interleave(spmv_trace(matrix, None, sched, line_size=MACHINE.line_size))
    doubled = inject_prefetches(repeat_trace(merged, 2), 3)
    steady = inject_prefetches(merged.with_iteration(1), 3, periodic=True)
    warm = inject_prefetches(merged, 3)
    joined = concat_traces([warm, steady])
    np.testing.assert_array_equal(joined.lines, doubled.lines)
    np.testing.assert_array_equal(joined.arrays, doubled.arrays)
    np.testing.assert_array_equal(joined.threads, doubled.threads)
    np.testing.assert_array_equal(joined.is_prefetch, doubled.is_prefetch)
    np.testing.assert_array_equal(joined.iteration, doubled.iteration)


def test_single_distinct_line_stream_never_retriggers():
    # a stream whose period holds one distinct line: its wrap predecessor is
    # itself, so steady state injects no prefetch for it at all
    matrix = banded(1, 0, 1, seed=7)
    merged = interleave(
        spmv_trace(matrix, None, static_schedule(matrix, 1), line_size=MACHINE.line_size)
    )
    steady = inject_prefetches(merged.with_iteration(1), 2, periodic=True)
    doubled = inject_prefetches(repeat_trace(merged, 2), 2)
    n = len(merged)
    second_half = doubled.select(doubled.iteration == 1)
    np.testing.assert_array_equal(steady.lines, second_half.lines)
    np.testing.assert_array_equal(steady.is_prefetch, second_half.is_prefetch)
