"""Matrix generators: structural guarantees per family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices import (
    banded,
    block_diagonal,
    diagonal_plus_random,
    matrix_stats,
    power_law,
    random_uniform,
    rmat,
    stencil_2d,
    stencil_3d,
)


def test_banded_respects_bandwidth():
    m = banded(200, 7, 5, seed=1)
    stats = matrix_stats(m)
    assert stats.bandwidth <= 7
    assert m.num_rows == m.num_cols == 200
    assert np.all(m.row_lengths >= 1)


def test_banded_deterministic_per_seed():
    a = banded(100, 5, 4, seed=3)
    b = banded(100, 5, 4, seed=3)
    np.testing.assert_array_equal(a.colidx, b.colidx)
    c = banded(100, 5, 4, seed=4)
    assert not np.array_equal(a.colidx, c.colidx)


def test_block_diagonal_full_blocks():
    m = block_diagonal(64, 8, fill=1.0)
    assert m.nnz == 64 * 8  # 8 dense 8x8 blocks
    # entries never leave their block
    rows, cols, _ = m.to_coo()
    assert np.all(rows // 8 == cols // 8)


def test_block_diagonal_partial_fill_keeps_diagonal():
    m = block_diagonal(64, 8, fill=0.3, seed=0)
    dense = m.to_dense()
    assert np.all(np.diag(dense) != 0)
    assert m.nnz < 64 * 8


def test_stencil_2d_interior_row_length():
    m = stencil_2d(10, 10, points=5)
    assert m.num_rows == 100
    # interior vertices have all 5 neighbours
    assert int(m.row_lengths.max()) == 5
    assert int(m.row_lengths.min()) == 3  # corners
    # symmetric structure
    np.testing.assert_array_equal(m.to_dense(), m.to_dense().T)


def test_stencil_3d_27_point():
    m = stencil_3d(5, 5, 5, points=27)
    assert m.num_rows == 125
    assert int(m.row_lengths.max()) == 27
    assert int(m.row_lengths.min()) == 8  # corners


def test_stencil_validation():
    with pytest.raises(ValueError):
        stencil_2d(4, 4, points=7)
    with pytest.raises(ValueError):
        stencil_3d(4, 4, 4, points=5)
    with pytest.raises(ValueError):
        stencil_2d(0, 4)


def test_random_uniform_row_lengths_before_dedup():
    m = random_uniform(500, 6, seed=2)
    assert m.num_rows == 500
    assert m.nnz <= 500 * 6
    assert m.nnz >= 500 * 3  # few duplicates for sparse fill


def test_random_uniform_rectangular():
    m = random_uniform(100, 4, seed=0, num_cols=300)
    assert m.shape == (100, 300)


def test_power_law_has_high_row_variation():
    m = power_law(2_000, 6.0, exponent=1.8, seed=3)
    stats = matrix_stats(m)
    uniform = matrix_stats(random_uniform(2_000, 6, seed=3))
    assert stats.cv_nnz_per_row > 2 * uniform.cv_nnz_per_row


def test_rmat_shape_and_coverage():
    m = rmat(8, edge_factor=4, seed=1)
    assert m.num_rows == 256
    assert np.all(m.row_lengths >= 1)  # diagonal guarantees non-empty rows
    assert m.nnz <= 256 * 4 + 256


def test_rmat_validation():
    with pytest.raises(ValueError):
        rmat(0)
    with pytest.raises(ValueError):
        rmat(5, probabilities=(0.5, 0.5, 0.5, 0.5))


def test_diagonal_plus_random_mixes_components():
    m = diagonal_plus_random(1_000, 4, 2, bandwidth=10, seed=5)
    rows, cols, _ = m.to_coo()
    dist = np.abs(rows - cols)
    assert (dist <= 10).sum() > 0.5 * m.nnz  # band part dominates
    assert dist.max() > 100  # random part reaches far


def test_generator_argument_validation():
    with pytest.raises(ValueError):
        banded(0, 1, 1)
    with pytest.raises(ValueError):
        block_diagonal(10, 4, fill=0.0)
    with pytest.raises(ValueError):
        power_law(10, 2.0, exponent=1.0)
    with pytest.raises(ValueError):
        diagonal_plus_random(10, 0, 0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(16, 300), npr=st.integers(1, 8), seed=st.integers(0, 100))
def test_all_generators_produce_valid_csr(n, npr, seed):
    for m in (
        banded(n, max(1, n // 20), npr, seed=seed),
        random_uniform(n, npr, seed=seed),
        power_law(n, float(npr), seed=seed),
        diagonal_plus_random(n, npr, 1, seed=seed),
    ):
        assert m.rowptr[-1] == m.nnz
        assert np.all(np.diff(m.rowptr) >= 0)
        if m.nnz:
            assert 0 <= m.colidx.min() and m.colidx.max() < m.num_cols
