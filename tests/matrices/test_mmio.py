"""Matrix Market I/O."""

import numpy as np
import pytest

from repro.matrices import banded, read_matrix_market, write_matrix_market
from repro.spmv import CSRMatrix


def test_roundtrip(tmp_path):
    m = banded(60, 4, 5, seed=2)
    path = tmp_path / "band.mtx"
    write_matrix_market(m, path)
    back = read_matrix_market(path)
    np.testing.assert_allclose(back.to_dense(), m.to_dense())
    assert back.name == "band"


def test_read_pattern_field(tmp_path):
    path = tmp_path / "p.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n1 1\n2 2\n"
    )
    m = read_matrix_market(path)
    np.testing.assert_allclose(m.to_dense(), np.eye(2))


def test_read_symmetric_expands_lower_triangle(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "% a comment line\n"
        "3 3 2\n2 1 5.0\n3 3 1.0\n"
    )
    m = read_matrix_market(path)
    dense = m.to_dense()
    assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
    assert dense[2, 2] == 1.0
    assert m.nnz == 3


def test_reject_malformed_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)
    path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)
    path.write_text("%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_reject_wrong_entry_count(tmp_path):
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_empty_matrix_roundtrip(tmp_path):
    m = CSRMatrix(3, 3, np.zeros(4, dtype=np.int64), np.empty(0), np.empty(0))
    path = tmp_path / "empty.mtx"
    write_matrix_market(m, path)
    back = read_matrix_market(path)
    assert back.nnz == 0
    assert back.shape == (3, 3)


def test_values_survive_precision(tmp_path):
    m = CSRMatrix.from_coo(
        1, 2, np.array([0, 0]), np.array([0, 1]), np.array([1e-17, np.pi])
    )
    path = tmp_path / "prec.mtx"
    write_matrix_market(m, path)
    back = read_matrix_market(path)
    np.testing.assert_allclose(back.values, m.values, rtol=1e-15)
