"""Reverse Cuthill-McKee reordering."""

import numpy as np
import pytest

from repro.matrices import (
    banded,
    matrix_stats,
    random_uniform,
    rcm_permutation,
    rcm_reorder,
)
from repro.spmv import CSRMatrix


def shuffled_band(n=300, seed=0):
    """A band matrix hidden behind a random symmetric permutation."""
    m = banded(n, 5, 6, seed=seed)
    sym = CSRMatrix.from_coo(
        n,
        n,
        np.concatenate([m.to_coo()[0], m.to_coo()[1]]),
        np.concatenate([m.to_coo()[1], m.to_coo()[0]]),
    )
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    return sym.permute(perm)


def test_rcm_recovers_small_bandwidth():
    shuffled = shuffled_band()
    before = matrix_stats(shuffled).bandwidth
    after = matrix_stats(rcm_reorder(shuffled)).bandwidth
    assert after < before / 3


def test_rcm_is_a_permutation():
    m = shuffled_band(100, seed=1)
    perm = rcm_permutation(m)
    assert sorted(perm.tolist()) == list(range(100))


def test_rcm_preserves_spectrum_of_pattern():
    m = shuffled_band(80, seed=2)
    reordered = rcm_reorder(m)
    assert reordered.nnz == m.nnz
    # symmetric permutation preserves eigenvalues of the dense form
    ev_a = np.sort(np.linalg.eigvalsh(m.to_dense()))
    ev_b = np.sort(np.linalg.eigvalsh(reordered.to_dense()))
    np.testing.assert_allclose(ev_a, ev_b, atol=1e-8)


def test_rcm_handles_disconnected_components():
    # two disjoint cliques
    rows = [0, 0, 1, 3, 3, 4]
    cols = [1, 2, 2, 4, 5, 5]
    m = CSRMatrix.from_coo(
        6, 6, np.array(rows + cols), np.array(cols + rows)
    )
    perm = rcm_permutation(m)
    assert sorted(perm.tolist()) == list(range(6))


def test_rcm_handles_isolated_vertices():
    m = CSRMatrix.from_coo(5, 5, np.array([0, 1]), np.array([1, 0]))
    perm = rcm_permutation(m)
    assert sorted(perm.tolist()) == list(range(5))


def test_rcm_requires_square():
    m = random_uniform(10, 2, seed=0, num_cols=20)
    with pytest.raises(ValueError):
        rcm_permutation(m)


def test_rcm_improves_random_matrix_locality():
    m = random_uniform(400, 3, seed=4)
    before = matrix_stats(m).avg_column_distance
    after = matrix_stats(rcm_reorder(m)).avg_column_distance
    assert after < before


def test_rcm_recovers_bandwidth_of_nonsymmetric_pattern():
    """Regression: the adjacency must be built on ``A + A^T``.

    A strictly upper-triangular band has only forward edges; a BFS on
    the *directed* pattern could never walk back to a row's
    predecessors, so without symmetrization RCM loses the chain and the
    shuffle stays unrecovered.  This is the non-symmetric class-3 shape
    the reordering search feeds to the RCM strategy.
    """
    n = 300
    band = banded(n, 5, 6, seed=8)
    rows, cols, vals = band.to_coo()
    upper = cols > rows
    m = CSRMatrix.from_coo(n, n, rows[upper], cols[upper], vals[upper])
    assert not np.array_equal(m.to_dense(), m.to_dense().T)  # non-symmetric
    rng = np.random.default_rng(8)
    perm = rng.permutation(n)
    shuffled = m.permute(perm)

    reordered = rcm_reorder(shuffled)
    assert reordered.nnz == shuffled.nnz
    before = matrix_stats(shuffled).bandwidth
    after = matrix_stats(reordered).bandwidth
    assert after < before / 3
    # and the recovered bandwidth is in the ballpark of the clean band's
    assert after <= 2 * matrix_stats(m).bandwidth
