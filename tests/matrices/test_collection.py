"""Synthetic collection: determinism, stratification, Table-1 proxies."""

import numpy as np
import pytest

from repro.core import classify
from repro.machine import scaled_machine
from repro.matrices import TABLE1, collection, iter_matrices, table1_entry

MACHINE = scaled_machine(16)


def test_collection_sizes():
    assert len(collection("tiny")) == 12
    assert len(collection("small")) == 48
    with pytest.raises(ValueError):
        collection("medium")


def test_collection_is_deterministic():
    a = collection("tiny")
    b = collection("tiny")
    assert [s.name for s in a] == [s.name for s in b]
    ma = a[0].materialize()
    mb = b[0].materialize()
    np.testing.assert_array_equal(ma.colidx, mb.colidx)


def test_collection_names_are_unique():
    names = [s.name for s in collection("small")]
    assert len(names) == len(set(names))


def test_small_collection_spans_all_classes():
    specs = collection("small", machine=MACHINE)
    classes = set()
    for spec, matrix in zip(specs, iter_matrices(specs)):
        classes.add(classify(matrix, MACHINE, 5, num_cmgs=4).value)
    assert classes == {"1", "2", "3a", "3b"}


def test_stratification_mostly_hits_targets():
    specs = collection("small", machine=MACHINE)
    hits = 0
    for spec, matrix in zip(specs, iter_matrices(specs)):
        actual = classify(matrix, MACHINE, 5, num_cmgs=4).value
        hits += actual == spec.target_class
    assert hits >= 0.7 * len(specs)


def test_materialize_names_match_spec():
    spec = collection("tiny")[0]
    assert spec.materialize().name == spec.name


def test_table1_has_all_18_matrices():
    assert len(TABLE1) == 18
    names = [e.name for e in TABLE1]
    assert "pdb1HYS" in names and "ML_Geer" in names and "delaunay_n24" in names


def test_table1_entry_lookup():
    entry = table1_entry("pwtk")
    assert entry.rows == 218_000
    assert entry.gflops_paper == pytest.approx(87.3)
    with pytest.raises(KeyError):
        table1_entry("nonexistent")


def test_table1_proxies_preserve_nnz_per_row():
    for name in ("pdb1HYS", "Hamrle3", "delaunay_n24"):
        entry = table1_entry(name)
        proxy = entry.proxy(scale=256)
        ratio = (proxy.nnz / proxy.num_rows) / entry.nnz_per_row
        assert 0.3 < ratio < 3.0, f"{name}: nnz/row off by {ratio}"


def test_table1_proxy_scale_shrinks_size():
    entry = table1_entry("pwtk")
    small = entry.proxy(scale=512)
    smaller_rows = entry.rows // 512
    assert abs(small.num_rows - smaller_rows) < smaller_rows * 0.5
    with pytest.raises(ValueError):
        entry.proxy(scale=0)
