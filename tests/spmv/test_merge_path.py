"""Merge-path search and scheduling (Merrill & Garland baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import CSRMatrix, merge_path_search, merge_schedule


def skewed(n=32):
    rows = [0] * n + list(range(n))
    cols = list(range(n)) + [0] * n
    return CSRMatrix.from_coo(n, n, np.array(rows), np.array(cols))


def test_path_endpoints():
    m = skewed()
    end = merge_path_search(m.num_rows + m.nnz, m.rowptr[1:], m.nnz)
    assert end.row == m.num_rows
    assert end.nonzero == m.nnz
    start = merge_path_search(0, m.rowptr[1:], m.nnz)
    assert start.row == 0 and start.nonzero == 0


def test_coordinates_on_diagonal():
    m = skewed()
    for d in range(0, m.num_rows + m.nnz, 7):
        coord = merge_path_search(d, m.rowptr[1:], m.nnz)
        assert coord.row + coord.nonzero == d


def test_schedule_is_contiguous_and_covering():
    m = skewed()
    spans = merge_schedule(m, 5)
    assert spans[0][0].row == 0 and spans[0][0].nonzero == 0
    assert spans[-1][1].row == m.num_rows
    assert spans[-1][1].nonzero == m.nnz
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        assert (e0.row, e0.nonzero) == (s1.row, s1.nonzero)


def test_schedule_balances_merge_items():
    m = skewed(64)
    spans = merge_schedule(m, 8)
    items = [
        (e.row + e.nonzero) - (s.row + s.nonzero) for s, e in spans
    ]
    assert max(items) - min(items) <= 1


def test_invalid_thread_count():
    with pytest.raises(ValueError):
        merge_schedule(skewed(), 0)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 40), seed=st.integers(0, 100), threads=st.integers(1, 9))
def test_merge_path_monotone_property(n, seed, threads):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(0, 8, n)
    rowptr = np.concatenate(([0], np.cumsum(lengths)))
    cols = rng.integers(0, n, int(rowptr[-1]))
    m = CSRMatrix(n, n, rowptr, cols, np.ones(int(rowptr[-1])))
    spans = merge_schedule(m, threads)
    prev = (0, 0)
    for start, end in spans:
        assert (start.row, start.nonzero) == prev
        assert end.row >= start.row
        assert end.nonzero >= start.nonzero
        prev = (end.row, end.nonzero)
    assert prev == (m.num_rows, m.nnz)
