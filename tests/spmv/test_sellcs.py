"""SELL-C-sigma format: packing, kernel, and trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sellcs_trace import sellcs_layout, sellcs_trace
from repro.core.layout import ARRAY_ID
from repro.matrices import power_law, random_uniform
from repro.spmv import CSRMatrix, spmv
from repro.spmv.sellcs import SellCSigmaMatrix


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    return CSRMatrix.from_dense(dense)


def test_conversion_preserves_product():
    m = random_csr(50, 0.2, 0)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=16)
    x = np.random.default_rng(1).standard_normal(50)
    np.testing.assert_allclose(sell.spmv(x), spmv(m, x), rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 40),
    density=st.floats(0.05, 0.8),
    chunk=st.sampled_from([2, 4, 8]),
    sigma=st.sampled_from([1, 4, 64]),
    seed=st.integers(0, 500),
)
def test_spmv_matches_csr_property(n, density, chunk, sigma, seed):
    m = random_csr(n, density, seed)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=chunk, sigma=sigma)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    np.testing.assert_allclose(
        sell.spmv(x, y0.copy()), spmv(m, x, y0.copy()), rtol=1e-10
    )


def test_sigma_sorting_reduces_padding():
    m = power_law(2_000, 6.0, exponent=1.7, seed=1)
    unsorted = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=1)
    sorted_ = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=512)
    assert sorted_.padding_ratio < unsorted.padding_ratio
    assert sorted_.padding_ratio >= 1.0


def test_uniform_rows_need_no_padding():
    m = random_uniform(64, 4, seed=0)
    # uniform rows may still vary slightly after dedup; use a regular case
    dense = np.tril(np.ones((16, 16)))[:, :4]
    m = CSRMatrix.from_dense(np.ones((16, 4)))
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=4, sigma=1)
    assert sell.padding_ratio == pytest.approx(1.0)


def test_row_perm_is_permutation_within_windows():
    m = power_law(100, 4.0, seed=2)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=20)
    assert sorted(sell.row_perm.tolist()) == list(range(100))
    for start in range(0, 100, 20):
        window = sell.row_perm[start : start + 20]
        assert set(window.tolist()) == set(range(start, min(start + 20, 100)))


def test_validation():
    m = random_csr(10, 0.3, 0)
    with pytest.raises(ValueError):
        SellCSigmaMatrix.from_csr(m, chunk_size=0)
    with pytest.raises(ValueError):
        SellCSigmaMatrix.from_csr(m, chunk_size=4, sigma=0)
    sell = SellCSigmaMatrix.from_csr(m)
    with pytest.raises(ValueError):
        sell.spmv(np.ones(3))


def test_trace_covers_all_slots():
    m = random_csr(40, 0.2, 3)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=4, sigma=8)
    trace = sellcs_trace(sell, line_size=64)[0]
    values_refs = int((trace.arrays == ARRAY_ID["values"]).sum())
    assert values_refs == sell.nnz_stored  # padding is loaded too
    y_refs = int((trace.arrays == ARRAY_ID["y"]).sum())
    assert y_refs == sell.num_rows


def test_trace_chunk_order_is_column_major():
    dense = np.ones((4, 3))
    m = CSRMatrix.from_dense(dense)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=4, sigma=1)
    layout = sellcs_layout(sell, 64)
    trace = sellcs_trace(sell, layout)[0]
    # first ref is the chunk pointer, then triples per slot
    assert trace.arrays[0] == ARRAY_ID["rowptr"]
    triple = trace.arrays[1:4]
    assert triple.tolist() == [
        ARRAY_ID["values"], ARRAY_ID["colidx"], ARRAY_ID["x"]
    ]


def test_parallel_traces_partition_chunks():
    m = random_csr(64, 0.2, 4)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=8)
    traces = sellcs_trace(sell, num_threads=3)
    total_y = sum(int((t.arrays == ARRAY_ID["y"]).sum()) for t in traces)
    assert total_y == sell.num_rows
    assert all(np.all(t.threads == i) for i, t in enumerate(traces))


def test_memory_bytes_accounts_padding():
    m = power_law(500, 5.0, seed=5)
    sell = SellCSigmaMatrix.from_csr(m, chunk_size=8, sigma=1)
    csr_bytes = m.values_bytes + m.colidx_bytes
    assert sell.memory_bytes() > csr_bytes  # padding + permutation overhead
