"""Sector-policy semantics (Listing 1 directives)."""

import pytest

from repro.machine import scaled_machine
from repro.spmv import (
    SectorPolicy,
    isolate_x_policy,
    listing1_policy,
    no_sector_cache,
)


def test_listing1_assigns_matrix_data_to_sector1():
    policy = listing1_policy(5)
    assert policy.sector_of("values") == 1
    assert policy.sector_of("colidx") == 1
    for array in ("x", "y", "rowptr"):
        assert policy.sector_of(array) == 0


def test_no_sector_cache_disables_both_levels():
    policy = no_sector_cache()
    assert not policy.l1_enabled and not policy.l2_enabled
    assert policy.describe() == "sector cache disabled"


def test_isolate_x_keeps_only_x_in_sector0():
    policy = isolate_x_policy(5)
    assert policy.sector_of("x") == 0
    for array in ("values", "colidx", "rowptr", "y"):
        assert policy.sector_of(array) == 1


def test_describe_mirrors_fcc_pragma():
    text = listing1_policy(5, 1).describe()
    assert "L2=5" in text and "L1=1" in text
    assert "colidx" in text and "values" in text


def test_validation_against_machine_way_counts():
    machine = scaled_machine(16)
    listing1_policy(5).validate(machine)
    with pytest.raises(ValueError):
        listing1_policy(16).validate(machine)  # no way left for sector 0
    with pytest.raises(ValueError):
        listing1_policy(2, 4).validate(machine)  # L1 has only 4 ways


def test_unknown_array_rejected():
    with pytest.raises(ValueError):
        SectorPolicy(sector1_arrays=frozenset({"bogus"}))
    with pytest.raises(ValueError):
        listing1_policy(2).sector_of("bogus")


def test_negative_ways_rejected():
    with pytest.raises(ValueError):
        SectorPolicy(l2_sector1_ways=-1)
