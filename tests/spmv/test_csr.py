"""CSRMatrix construction, conversion and permutation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import CSRMatrix


def small_matrix() -> CSRMatrix:
    dense = np.array(
        [
            [0.0, 1.0, 2.0, 0.0],
            [3.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 4.0, 5.0],
            [0.0, 6.0, 0.0, 7.0],
        ]
    )
    return CSRMatrix.from_dense(dense, name="small")


def test_from_dense_roundtrip():
    m = small_matrix()
    assert m.shape == (4, 4)
    assert m.nnz == 7
    np.testing.assert_array_equal(m.to_dense(), small_matrix().to_dense())


def test_from_coo_sums_duplicates():
    m = CSRMatrix.from_coo(
        2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([2.0, 3.0, 1.0])
    )
    assert m.nnz == 2
    assert m.to_dense()[0, 1] == 5.0


def test_from_coo_keeps_duplicates_when_asked():
    m = CSRMatrix.from_coo(
        2, 2, np.array([0, 0]), np.array([1, 1]), sum_duplicates=False
    )
    assert m.nnz == 2


def test_byte_sizes_match_paper_element_sizes():
    m = small_matrix()
    assert m.values_bytes == 8 * m.nnz
    assert m.colidx_bytes == 4 * m.nnz
    assert m.rowptr_bytes == 8 * (m.num_rows + 1)
    assert m.x_bytes == 8 * m.num_cols
    assert m.y_bytes == 8 * m.num_rows
    assert m.total_bytes == m.matrix_bytes + m.x_bytes + m.y_bytes


def test_row_lengths():
    assert small_matrix().row_lengths.tolist() == [2, 1, 2, 2]


def test_validation_rejects_malformed_inputs():
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CSRMatrix(1, 1, np.array([0, 2]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CSRMatrix(1, 1, np.array([1, 1]), np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        CSRMatrix(1, 1, np.array([0, 1]), np.array([5]), np.array([1.0]))
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))


def test_from_coo_rejects_out_of_range():
    with pytest.raises(ValueError):
        CSRMatrix.from_coo(2, 2, np.array([2]), np.array([0]))
    with pytest.raises(ValueError):
        CSRMatrix.from_coo(2, 2, np.array([0]), np.array([-1]))


def test_transpose_matches_dense_transpose():
    m = small_matrix()
    np.testing.assert_array_equal(m.transpose().to_dense(), m.to_dense().T)


def test_permute_matches_dense_permutation():
    m = small_matrix()
    perm = np.array([2, 0, 3, 1])
    dense = m.to_dense()[perm][:, perm]
    np.testing.assert_array_equal(m.permute(perm).to_dense(), dense)


def test_permute_rejects_bad_lengths():
    m = small_matrix()
    with pytest.raises(ValueError):
        m.permute(np.array([0, 1]))
    with pytest.raises(ValueError):
        m.permute(np.arange(4), np.array([0]))


def test_sort_indices_orders_columns():
    m = CSRMatrix.from_coo(
        1, 4, np.array([0, 0, 0]), np.array([3, 0, 2]), sum_duplicates=False
    )
    assert m.sort_indices().colidx.tolist() == [0, 2, 3]


def test_empty_matrix():
    m = CSRMatrix(0, 0, np.zeros(1, dtype=np.int64), np.empty(0), np.empty(0))
    assert m.nnz == 0
    # rowptr always stores one sentinel element, everything else is empty
    assert m.total_bytes == m.rowptr_bytes == 8


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 12),
    seed=st.integers(0, 1000),
)
def test_coo_dense_roundtrip_property(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3) * rng.random((n, n))
    m = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(m.to_dense(), dense)
    rows, cols, vals = m.to_coo()
    m2 = CSRMatrix.from_coo(n, n, rows, cols, vals)
    np.testing.assert_allclose(m2.to_dense(), dense)
