"""CSC format, kernels and trace generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.csc_trace import csc_layout, csc_trace
from repro.core.layout import ARRAY_ID
from repro.spmv import CSRMatrix, spmv
from repro.spmv.csc import CSCMatrix


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    return CSRMatrix.from_dense(dense)


def test_csr_csc_roundtrip():
    m = random_csr(30, 0.25, 0)
    csc = CSCMatrix.from_csr(m)
    np.testing.assert_allclose(csc.to_csr().to_dense(), m.to_dense())


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 25), density=st.floats(0.05, 0.8), seed=st.integers(0, 500))
def test_csc_spmv_matches_csr(n, density, seed):
    m = random_csr(n, density, seed)
    csc = CSCMatrix.from_csr(m)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    np.testing.assert_allclose(
        csc.spmv(x, y0.copy()), spmv(m, x, y0.copy()), rtol=1e-10
    )


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 25), density=st.floats(0.05, 0.8), seed=st.integers(0, 500))
def test_transposed_spmv_matches_dense(n, density, seed):
    m = random_csr(n, density, seed)
    csc = CSCMatrix.from_csr(m)
    rng = np.random.default_rng(seed + 2)
    y = rng.standard_normal(n)
    expected = m.to_dense().T @ y
    np.testing.assert_allclose(csc.spmv_transposed(y), expected, rtol=1e-9, atol=1e-12)


def test_validation():
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, np.array([0, 1, 0]), np.array([0]), np.array([1.0]))
    m = CSCMatrix.from_csr(random_csr(5, 0.5, 0))
    with pytest.raises(ValueError):
        m.spmv(np.ones(3))
    with pytest.raises(ValueError):
        m.spmv_transposed(np.ones(3))


def test_empty_columns_handled():
    dense = np.zeros((4, 4))
    dense[2, 1] = 3.0
    csc = CSCMatrix.from_csr(CSRMatrix.from_dense(dense))
    np.testing.assert_allclose(csc.spmv(np.ones(4))[2], 3.0)
    np.testing.assert_allclose(csc.spmv_transposed(np.ones(4))[1], 3.0)


def test_csc_trace_is_dual_of_csr():
    m = random_csr(20, 0.3, 3)
    csc = CSCMatrix.from_csr(m)
    trace = csc_trace(csc, line_size=64)[0]
    counts = {
        name: int((trace.arrays == aid).sum()) for name, aid in ARRAY_ID.items()
    }
    # per column: one colptr + one x; per nonzero: values, rowidx, y
    assert counts["x"] == csc.num_cols
    assert counts["y"] == csc.nnz
    assert counts["values"] == csc.nnz
    assert counts["colidx"] == csc.nnz
    assert counts["rowptr"] == csc.num_cols + 1


def test_csc_trace_parallel_covers_columns():
    m = random_csr(40, 0.2, 4)
    csc = CSCMatrix.from_csr(m)
    traces = csc_trace(csc, num_threads=3)
    total_x = sum(int((t.arrays == ARRAY_ID["x"]).sum()) for t in traces)
    assert total_x == csc.num_cols


def test_csc_layout_extents():
    m = random_csr(16, 0.4, 5)
    csc = CSCMatrix.from_csr(m)
    layout = csc_layout(csc, 64)
    assert layout.num_lines[ARRAY_ID["rowptr"]] == -(-8 * (csc.num_cols + 1) // 64)
