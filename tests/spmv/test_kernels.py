"""SpMV kernels: vectorized and merge-based vs. the scalar oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import (
    CSRMatrix,
    balanced_schedule,
    flops,
    spmv,
    spmv_merge,
    spmv_reference,
    spmv_rows,
    static_schedule,
)


def random_csr(n: int, density: float, seed: int) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    return CSRMatrix.from_dense(dense)


def test_spmv_accumulates_into_y():
    m = CSRMatrix.from_dense(np.eye(3) * 2.0)
    x = np.array([1.0, 2.0, 3.0])
    y = np.ones(3)
    np.testing.assert_allclose(spmv(m, x, y), [3.0, 5.0, 7.0])


def test_spmv_default_y_is_zero():
    m = CSRMatrix.from_dense(np.eye(2))
    np.testing.assert_allclose(spmv(m, np.array([4.0, 5.0])), [4.0, 5.0])


def test_spmv_handles_empty_rows():
    dense = np.zeros((4, 4))
    dense[1, 2] = 3.0
    m = CSRMatrix.from_dense(dense)
    out = spmv(m, np.ones(4))
    np.testing.assert_allclose(out, [0.0, 3.0, 0.0, 0.0])


def test_spmv_empty_matrix():
    m = CSRMatrix(2, 3, np.zeros(3, dtype=np.int64), np.empty(0), np.empty(0))
    np.testing.assert_allclose(spmv(m, np.ones(3)), np.zeros(2))


def test_operand_shape_validation():
    m = CSRMatrix.from_dense(np.eye(3))
    with pytest.raises(ValueError):
        spmv(m, np.ones(2))
    with pytest.raises(ValueError):
        spmv(m, np.ones(3), np.ones(2))
    with pytest.raises(ValueError):
        spmv_reference(m, np.ones(4), np.ones(3))


def test_flops_is_two_per_nonzero():
    m = random_csr(10, 0.4, 0)
    assert flops(m) == 2 * m.nnz


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 20), density=st.floats(0.05, 0.9), seed=st.integers(0, 999))
def test_vectorized_matches_reference(n, density, seed):
    m = random_csr(n, density, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    expected = spmv_reference(m, x, y0.copy())
    np.testing.assert_allclose(spmv(m, x, y0.copy()), expected, rtol=1e-12, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 20),
    density=st.floats(0.05, 0.9),
    seed=st.integers(0, 999),
    threads=st.integers(1, 7),
)
def test_merge_based_matches_reference(n, density, seed, threads):
    m = random_csr(n, density, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    y0 = rng.standard_normal(n)
    expected = spmv_reference(m, x, y0.copy())
    np.testing.assert_allclose(
        spmv_merge(m, x, y0.copy(), num_threads=threads), expected, rtol=1e-12, atol=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 999), threads=st.integers(1, 5))
def test_spmv_rows_partitions_compose(n, seed, threads):
    m = random_csr(n, 0.3, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    expected = spmv(m, x)
    y = np.zeros(n)
    sched = static_schedule(m, threads)
    for t in range(threads):
        r0, r1 = sched.rows_of(t)
        spmv_rows(m, x, y, np.arange(r0, r1))
    np.testing.assert_allclose(y, expected, rtol=1e-12, atol=1e-9)


def test_spmv_rows_with_balanced_schedule():
    m = random_csr(30, 0.2, 3)
    x = np.ones(30)
    expected = spmv(m, x)
    y = np.zeros(30)
    sched = balanced_schedule(m, 4)
    for t in range(4):
        r0, r1 = sched.rows_of(t)
        spmv_rows(m, x, y, np.arange(r0, r1))
    np.testing.assert_allclose(y, expected)
