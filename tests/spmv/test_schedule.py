"""Row schedules: static and nonzero-balanced."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv import CSRMatrix, RowSchedule, balanced_schedule, static_schedule


def skewed_matrix(n: int = 64) -> CSRMatrix:
    # first row holds half the nonzeros
    rows = [0] * n + list(range(n))
    cols = list(range(n)) + [0] * n
    return CSRMatrix.from_coo(n, n, np.array(rows), np.array(cols))


def test_static_schedule_covers_all_rows():
    m = skewed_matrix()
    sched = static_schedule(m, 4)
    assert sched.bounds[0] == 0 and sched.bounds[-1] == m.num_rows
    total = sum(sched.rows_of(t)[1] - sched.rows_of(t)[0] for t in range(4))
    assert total == m.num_rows


def test_static_schedule_balances_rows():
    m = skewed_matrix(100)
    sched = static_schedule(m, 4)
    counts = np.diff(sched.bounds)
    assert counts.max() - counts.min() <= 1


def test_balanced_schedule_balances_nonzeros():
    m = skewed_matrix(64)
    static = static_schedule(m, 8)
    balanced = balanced_schedule(m, 8)
    assert balanced.imbalance(m) < static.imbalance(m)


def test_balanced_schedule_covers_all_nonzeros():
    m = skewed_matrix()
    sched = balanced_schedule(m, 5)
    assert int(sched.nnz_per_thread(m).sum()) == m.nnz


def test_thread_of_row_inverts_rows_of():
    m = skewed_matrix(50)
    sched = static_schedule(m, 7)
    for t in range(7):
        r0, r1 = sched.rows_of(t)
        for r in (r0, r1 - 1):
            if r0 < r1:
                assert sched.thread_of_row(r) == t


def test_more_threads_than_rows():
    m = CSRMatrix.from_dense(np.eye(3))
    sched = static_schedule(m, 8)
    assert sched.bounds[-1] == 3
    assert int(sched.nnz_per_thread(m).sum()) == 3


def test_schedule_validation():
    m = skewed_matrix()
    with pytest.raises(ValueError):
        static_schedule(m, 0)
    with pytest.raises(ValueError):
        balanced_schedule(m, -1)
    with pytest.raises(ValueError):
        RowSchedule(2, np.array([0, 5, 3]))
    with pytest.raises(ValueError):
        RowSchedule(2, np.array([1, 2, 3]))
    sched = static_schedule(m, 2)
    with pytest.raises(ValueError):
        sched.rows_of(2)
    with pytest.raises(ValueError):
        sched.thread_of_row(m.num_rows)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 200), threads=st.integers(1, 16), seed=st.integers(0, 99))
def test_schedules_partition_rows(n, threads, seed):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(0, 10, n)
    rowptr = np.concatenate(([0], np.cumsum(lengths)))
    cols = rng.integers(0, n, int(rowptr[-1]))
    m = CSRMatrix(n, n, rowptr, cols, np.ones(int(rowptr[-1])))
    for sched in (static_schedule(m, threads), balanced_schedule(m, threads)):
        assert sched.bounds[0] == 0
        assert sched.bounds[-1] == n
        assert np.all(np.diff(sched.bounds) >= 0)
        assert int(sched.nnz_per_thread(m).sum()) == m.nnz
