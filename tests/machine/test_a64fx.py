"""A64FX machine model: geometry, scaling, partitions."""

import pytest

from repro.machine import A64FX, CacheGeometry, full_machine, scaled_machine


def test_full_machine_matches_published_geometry():
    m = full_machine()
    assert m.num_cores == 48
    assert m.num_cmgs == 4
    assert m.cores_per_cmg == 12
    assert m.line_size == 256
    assert m.l1.capacity_bytes == 64 * 1024
    assert m.l1.ways == 4
    assert m.l2.capacity_bytes == 8 * 1024 * 1024
    assert m.l2.ways == 16
    assert m.l2_total_bytes == 32 * 1024 * 1024
    assert m.mem_bandwidth == pytest.approx(800e9)


def test_scaled_machine_preserves_ways_and_line_size():
    m = scaled_machine(16)
    assert m.l2.capacity_bytes == 512 * 1024
    assert m.l1.capacity_bytes == 8 * 1024  # L1 scales by factor/2
    assert m.l2.ways == 16 and m.l1.ways == 4
    assert m.line_size == 256
    assert m.scale == 16


def test_scaled_machine_factor_one_is_full():
    assert scaled_machine(1) == full_machine()


def test_partition_lines_sum_to_capacity():
    geom = full_machine().l2
    for ways in range(0, 16):
        n0, n1 = geom.partition_lines(ways)
        assert n0 + n1 == geom.capacity_lines
        assert n1 == ways * geom.num_sets
    with pytest.raises(ValueError):
        geom.partition_lines(17)
    with pytest.raises(ValueError):
        geom.partition_lines(-1)


def test_cmg_of_thread_compact_binding():
    m = full_machine()
    assert m.cmg_of_thread(0) == 0
    assert m.cmg_of_thread(11) == 0
    assert m.cmg_of_thread(12) == 1
    assert m.cmg_of_thread(47) == 3
    with pytest.raises(ValueError):
        m.cmg_of_thread(48)


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheGeometry(line_size=100, num_sets=4, ways=4)  # not a power of two
    with pytest.raises(ValueError):
        CacheGeometry(line_size=256, num_sets=0, ways=4)
    with pytest.raises(ValueError):
        CacheGeometry(line_size=256, num_sets=4, ways=0)


def test_scaling_validation():
    geom = CacheGeometry(line_size=256, num_sets=64, ways=4)
    with pytest.raises(ValueError):
        geom.scaled(0)
    with pytest.raises(ValueError):
        geom.scaled(128)  # not divisible


def test_machine_invariants():
    with pytest.raises(ValueError):
        A64FX(num_cores=50)  # not divisible by CMGs
    with pytest.raises(ValueError):
        A64FX(l1=CacheGeometry(128, 64, 4))  # line size mismatch
