"""ECM-style performance model: calibration anchors and monotonicity."""

import pytest

from repro.cachesim import CacheEvents
from repro.machine import full_machine, scaled_machine
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import banded


def events(l1=0, refill=0, demand=0, prefetch=0, wb=0):
    return CacheEvents(
        l1_refill=l1,
        l2_refill=refill,
        l2_refill_demand=demand,
        l2_refill_prefetch=prefetch,
        l2_writeback=wb,
    )


def test_compute_bound_ceiling_matches_observed_peak():
    # perfect locality: only compute limits (the per-core SpMV ceiling)
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(10_000, 50, 50, seed=0)
    est = model.estimate(matrix, events(l1=10), num_threads=48)
    assert est.gflops == pytest.approx(48 * model.core_spmv_flops / 1e9, rel=0.01)
    assert est.bottleneck == "compute"


def test_stream_bound_tracks_bandwidth():
    # matrix-data streaming only: 12 bytes/nnz -> ~2/12 flops per byte
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(10_000, 50, 50, seed=0)
    lines = (matrix.values_bytes + matrix.colidx_bytes) // 256
    est = model.estimate(matrix, events(refill=lines), num_threads=48)
    expected = 2 * matrix.nnz / ((lines * 256) / 800e9) / 1e9
    assert est.gflops == pytest.approx(expected, rel=0.1)


def test_demand_latency_slows_execution():
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(10_000, 50, 50, seed=0)
    fast = model.estimate(matrix, events(refill=1000), num_threads=48)
    slow = model.estimate(
        matrix, events(refill=1000, demand=1000), num_threads=48
    )
    assert slow.seconds > fast.seconds
    assert slow.gflops < fast.gflops


def test_speedup_from_demand_miss_reduction():
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(100_000, 500, 30, seed=0)
    lines = matrix.matrix_bytes // 256
    base = events(refill=lines + 20_000, demand=20_000)
    better = events(refill=lines, demand=2_000)
    speedup = model.speedup(matrix, base, better, num_threads=48)
    assert 1.0 < speedup < 2.0


def test_fewer_threads_take_longer():
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(10_000, 50, 50, seed=0)
    t48 = model.estimate(matrix, events(refill=100), 48).seconds
    t1 = model.estimate(matrix, events(refill=100), 1).seconds
    assert t1 > t48


def test_bandwidth_report_uses_traffic_and_time():
    machine = full_machine()
    model = PerformanceModel(machine)
    matrix = banded(10_000, 50, 50, seed=0)
    est = model.estimate(matrix, events(refill=10_000, wb=1_000), 48)
    assert est.bandwidth_gbs == pytest.approx(
        11_000 * 256 / est.seconds / 1e9, rel=1e-9
    )


def test_scaled_machine_keeps_full_size_constants():
    # the scaled machine projects with full-machine bandwidths
    model_full = PerformanceModel(full_machine())
    model_scaled = PerformanceModel(scaled_machine(16))
    matrix = banded(10_000, 50, 50, seed=0)
    ev = events(refill=5_000, demand=500)
    a = model_full.estimate(matrix, ev, 48).seconds
    b = model_scaled.estimate(matrix, ev, 48).seconds
    assert a == pytest.approx(b)


def test_invalid_thread_count_rejected():
    model = PerformanceModel(full_machine())
    matrix = banded(100, 5, 4, seed=0)
    with pytest.raises(ValueError):
        model.estimate(matrix, events(), 0)
