"""Backoff schedule and retry driver: deterministic under injected
clock/rng/sleep, honouring the deadline budget."""

import random

import pytest

from repro.resilience.retry import BackoffPolicy, DeadlineExceeded, call_with_retries


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def test_raw_delays_are_capped_exponential():
    policy = BackoffPolicy(base_seconds=0.1, cap_seconds=1.0, multiplier=2.0,
                           jitter="none")
    assert [policy.raw_delay(a) for a in range(1, 6)] == [
        0.1, 0.2, 0.4, 0.8, 1.0
    ]
    assert policy.delay(3) == 0.4  # jitter="none" -> raw


def test_full_jitter_is_seed_deterministic_and_bounded():
    def schedule(seed):
        policy = BackoffPolicy(base_seconds=0.1, cap_seconds=1.0,
                               rng=random.Random(seed))
        return [policy.delay(a) for a in range(1, 8)]

    assert schedule(1) == schedule(1)
    assert schedule(1) != schedule(2)
    for attempt, delay in enumerate(schedule(1), start=1):
        assert 0.0 <= delay <= min(1.0, 0.1 * 2 ** (attempt - 1))


def test_equal_jitter_keeps_half_the_raw_delay():
    policy = BackoffPolicy(base_seconds=0.4, cap_seconds=10.0, jitter="equal",
                           rng=random.Random(0))
    for attempt in range(1, 6):
        raw = policy.raw_delay(attempt)
        assert raw / 2 <= policy.delay(attempt) <= raw


def test_policy_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(base_seconds=0)
    with pytest.raises(ValueError):
        BackoffPolicy(cap_seconds=0.01)
    with pytest.raises(ValueError):
        BackoffPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter="bogus")


def test_success_after_transient_failures():
    clock = FakeClock()
    calls = []

    def flaky():
        calls.append(clock.now)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    result = call_with_retries(
        flaky, retries=5,
        backoff=BackoffPolicy(base_seconds=0.1, jitter="none"),
        clock=clock, sleep=clock.sleep,
    )
    assert result == "ok"
    # slept 0.1 then 0.2 between the three attempts
    assert calls == [0.0, pytest.approx(0.1), pytest.approx(0.3)]


def test_attempts_exhausted_raises_last_error():
    clock = FakeClock()

    def always_fails():
        raise OSError("still down")

    with pytest.raises(OSError, match="still down"):
        call_with_retries(always_fails, retries=2,
                          backoff=BackoffPolicy(jitter="none"),
                          clock=clock, sleep=clock.sleep)


def test_non_retryable_errors_propagate_immediately():
    calls = []

    def fails():
        calls.append(1)
        raise ValueError("bad input")

    with pytest.raises(ValueError):
        call_with_retries(fails, retries=5,
                          retryable=lambda exc: isinstance(exc, OSError))
    assert len(calls) == 1


def test_deadline_budget_stops_retrying():
    clock = FakeClock()

    def always_fails():
        raise OSError("down")

    # jitter="none": sleeps would be 1, 2, 4...; with a 2.5 s budget the
    # first retry (1 s) fits, the second (2 s, at t=1) would overrun
    with pytest.raises(DeadlineExceeded) as info:
        call_with_retries(
            always_fails, retries=10,
            backoff=BackoffPolicy(base_seconds=1.0, cap_seconds=60.0,
                                  jitter="none"),
            deadline_seconds=2.5, clock=clock, sleep=clock.sleep,
        )
    assert isinstance(info.value.last_error, OSError)
    assert info.value.__cause__ is info.value.last_error
    assert clock.now == pytest.approx(1.0)  # only the first sleep happened


def test_zero_retries_is_single_attempt():
    calls = []

    def fails():
        calls.append(1)
        raise OSError("down")

    with pytest.raises(OSError):
        call_with_retries(fails, retries=0)
    assert len(calls) == 1
    with pytest.raises(ValueError):
        call_with_retries(fails, retries=-1)
