"""Degraded-mode analytic answers: exact where the model is closed-form
(classify), shape-faithful where it approximates (predict/advise)."""

import pytest

from repro.core.advisor import Recommendation, SectorAdvisor
from repro.core.classification import classify
from repro.experiments.common import ExperimentSetup
from repro.matrices.collection import collection
from repro.resilience.degraded import (
    MatrixDims,
    answer_task,
    degraded_advise,
    degraded_classify,
    degraded_predict,
    dims_from_task,
)
from repro.service.protocol import matrix_name, normalize_request
from repro.service.worker import evaluate

SETUP = ExperimentSetup(scale=16, num_threads=8)
MACHINE = SETUP.machine()


def _spec(index=0):
    return collection("tiny", machine=MACHINE)[index]


def _task(endpoint, **extra):
    payload = {
        "matrix": {"name": _spec().name, "collection": "tiny"},
        "setup": {"scale": SETUP.scale, "num_threads": SETUP.num_threads},
    }
    payload.update(extra)
    return normalize_request(endpoint, payload)


def test_matrix_dims_byte_parity_with_csr():
    matrix = _spec().materialize()
    dims = MatrixDims.of(matrix)
    for attr in ("values_bytes", "colidx_bytes", "rowptr_bytes",
                 "x_bytes", "y_bytes", "matrix_bytes", "total_bytes"):
        assert getattr(dims, attr) == getattr(matrix, attr), attr


def test_matrix_dims_rejects_negative():
    with pytest.raises(ValueError):
        MatrixDims(-1, 4, 4)


def test_degraded_classify_is_exact():
    matrix = _spec().materialize()
    dims = MatrixDims.of(matrix)
    result = degraded_classify(dims, MACHINE, 8, [2, 5], matrix.name)
    for ways in (2, 5):
        assert result["classes"][str(ways)] == classify(
            matrix, MACHINE, ways, result["num_cmgs"]
        ).value


def test_degraded_classify_matches_worker_result_byte_for_byte():
    task = _task("classify")
    full = evaluate(task)["result"]
    degraded = answer_task(task, MACHINE, matrix_name(task))
    assert degraded == full


def test_degraded_predict_shape_matches_wire_format():
    task = _task("predict")
    full = evaluate(task)["result"]
    degraded = answer_task(task, MACHINE, matrix_name(task))
    assert degraded["name"] == full["name"]
    assert degraded["method"] == "B"
    assert [p["policy"] for p in degraded["predictions"]] == [
        p["policy"] for p in full["predictions"]
    ]
    for prediction in degraded["predictions"]:
        assert prediction["l2_misses"] == sum(prediction["per_array"].values())
        assert set(prediction["per_array"]) <= {
            "values", "colidx", "rowptr", "y", "x"
        }


def test_degraded_advise_parses_as_recommendation_with_same_candidates():
    task = _task("advise")
    degraded = Recommendation.from_dict(answer_task(task, MACHINE,
                                                    matrix_name(task)))
    matrix = _spec().materialize()
    full = SectorAdvisor(MACHINE, num_threads=8).recommend(matrix)
    # the candidate *set* mirrors the real advisor exactly (the class,
    # which gates isolate-x candidates, is closed-form); only the
    # predicted numbers are approximations
    assert [c.policy for c in degraded.candidates] == [
        c.policy for c in full.candidates
    ]
    assert degraded.matrix_class == full.matrix_class
    assert degraded.best.policy in [c.policy for c in degraded.candidates]


def test_degraded_advise_requires_way_options():
    dims = MatrixDims(64, 64, 256)
    with pytest.raises(ValueError):
        degraded_advise(dims, MACHINE, 8, [])


def test_answer_task_returns_none_for_sweep():
    assert answer_task(_task("sweep"), MACHINE, "x") is None


def test_dims_from_task_inline_and_named():
    csr_task = normalize_request("classify", {
        "matrix": {"csr": {"num_rows": 3, "num_cols": 4,
                           "rowptr": [0, 1, 2, 3], "colidx": [0, 1, 2]}},
    })
    assert dims_from_task(csr_task, MACHINE) == MatrixDims(3, 4, 3)
    coo_task = normalize_request("classify", {
        "matrix": {"coo": {"num_rows": 3, "num_cols": 3,
                           "rows": [0, 1], "cols": [1, 2]}},
    })
    assert dims_from_task(coo_task, MACHINE) == MatrixDims(3, 3, 2)
    named = _task("classify")
    dims = dims_from_task(named, MACHINE)
    assert dims == MatrixDims.of(_spec().materialize())
    # memoized: the second call must return the identical object
    assert dims_from_task(named, MACHINE) is dims


def test_degraded_predict_empty_policy_list_is_empty_predictions():
    dims = MatrixDims(8, 8, 16)
    result = degraded_predict(dims, MACHINE, 8, [], "tiny")
    assert result["predictions"] == []
