"""Fault-plan schema validation and its CLI."""

import json

from repro.resilience.schema import main, validate_plan

VALID = {
    "schema": "repro.resilience.plan/v1",
    "seed": 42,
    "rules": [
        {"site": "worker.evaluate", "kind": "crash", "max_fires": 1},
        {"site": "cache.disk_read", "kind": "corrupt"},
        {"site": "pool.submit", "kind": "delay", "delay_seconds": 0.5,
         "probability": 0.25, "after": 2},
    ],
}


def test_valid_plan_has_no_problems():
    assert validate_plan(VALID) == []


def test_non_object_payload():
    assert validate_plan([]) == ["payload: must be a JSON object"]


def test_schema_id_and_seed_checked():
    problems = validate_plan({"schema": "nope", "seed": "x",
                              "rules": VALID["rules"]})
    assert any(p.startswith("schema:") for p in problems)
    assert any(p.startswith("seed:") for p in problems)


def test_rules_must_be_nonempty_list():
    assert "rules: must be a list" in validate_plan(
        {"schema": VALID["schema"], "rules": {}})
    assert "rules: must not be empty" in validate_plan(
        {"schema": VALID["schema"], "rules": []})


def test_rule_field_problems_are_located():
    problems = validate_plan({
        "schema": VALID["schema"],
        "rules": [
            {"site": "worker.evaluate", "kind": "bogus"},
            {"site": "worker.evaluate", "kind": "delay"},  # zero delay
            {"site": "worker.evaluate", "kind": "error", "probability": 2},
            {"site": "worker.evaluate", "kind": "error", "typo_field": 1},
        ],
    })
    assert any(p.startswith("rules[0].kind:") for p in problems)
    assert any(p.startswith("rules[1].delay_seconds:") for p in problems)
    assert any(p.startswith("rules[2].probability:") for p in problems)
    assert any("typo_field" in p for p in problems)


def test_unknown_sites_warn_only_in_strict_mode():
    plan = {"schema": VALID["schema"],
            "rules": [{"site": "not.a.site", "kind": "error"}]}
    assert validate_plan(plan) == []
    strict = validate_plan(plan, strict_sites=True)
    assert len(strict) == 1 and "warning" in strict[0]


def test_cli_accepts_valid_plan(tmp_path, capsys):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(VALID))
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "3 rules" in out


def test_cli_rejects_invalid_plan(tmp_path, capsys):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"schema": "nope", "rules": []}))
    assert main([str(path)]) == 1
    assert "invalid:" in capsys.readouterr().err


def test_cli_warns_on_unwired_sites_but_passes(tmp_path, capsys):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "schema": VALID["schema"],
        "rules": [{"site": "not.a.site", "kind": "error"}],
    }))
    assert main([str(path)]) == 0
    assert "warning:" in capsys.readouterr().err


def test_cli_unreadable_file(tmp_path, capsys):
    assert main([str(tmp_path / "missing.json")]) == 1
    assert "cannot read" in capsys.readouterr().err
