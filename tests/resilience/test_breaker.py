"""Circuit-breaker state machine under a fake clock: every transition
deterministic and counted."""

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(threshold=3, recovery=10.0, probes=1):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=threshold,
                             recovery_seconds=recovery,
                             half_open_max_probes=probes, clock=clock)
    return breaker, clock


def test_starts_closed_and_allows():
    breaker, _ = _breaker()
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.rejections == 0


def test_consecutive_failures_trip_open():
    breaker, _ = _breaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.transitions == {"closed->open": 1}
    assert not breaker.allow()
    assert breaker.rejections == 1


def test_success_resets_the_consecutive_count():
    breaker, _ = _breaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never two in a row


def test_recovery_window_moves_to_half_open():
    breaker, clock = _breaker(threshold=1, recovery=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.retry_after_seconds() == pytest.approx(10.0)
    clock.now = 9.999
    assert breaker.state == OPEN
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    assert breaker.transitions["open->half_open"] == 1


def test_half_open_probe_success_closes():
    breaker, clock = _breaker(threshold=1, recovery=5.0)
    breaker.record_failure()
    clock.now = 5.0
    assert breaker.allow()  # claims the probe slot
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.transitions == {
        "closed->open": 1, "open->half_open": 1, "half_open->closed": 1,
    }


def test_half_open_probe_failure_reopens_and_restarts_clock():
    breaker, clock = _breaker(threshold=1, recovery=5.0)
    breaker.record_failure()
    clock.now = 5.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.transitions["half_open->open"] == 1
    # the recovery clock restarted at t=5
    assert breaker.retry_after_seconds() == pytest.approx(5.0)
    clock.now = 9.0
    assert breaker.state == OPEN


def test_half_open_limits_probes_in_flight():
    breaker, clock = _breaker(threshold=1, recovery=1.0, probes=2)
    breaker.record_failure()
    clock.now = 1.0
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()  # both probe slots claimed
    assert breaker.rejections == 1


def test_snapshot_shape():
    breaker, clock = _breaker(threshold=1, recovery=1.0)
    breaker.record_failure()
    clock.now = 1.0
    breaker.allow()
    breaker.record_success()
    snap = breaker.snapshot()
    assert snap["state"] == CLOSED
    assert snap["failures"] == 1
    assert snap["successes"] == 1
    assert snap["transitions"] == {
        "closed->open": 1, "open->half_open": 1, "half_open->closed": 1,
    }
    assert set(STATE_VALUES) == {CLOSED, OPEN, HALF_OPEN}


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(recovery_seconds=0)
    with pytest.raises(ValueError):
        CircuitBreaker(half_open_max_probes=0)
