"""Ambient fault plans against the parallel sweep engine: the pool's
existing isolation absorbs injected faults as structured failures."""

import pytest

from repro.experiments import ExperimentSetup, run_collection_parallel
from repro.matrices.collection import collection
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultRule

SETUP = ExperimentSetup(scale=16, num_threads=8,
                        l2_way_options=(0, 5), l1_way_options=(0,))


def _specs(count=3):
    return collection("tiny", machine=SETUP.machine())[:count]


@pytest.fixture(autouse=True)
def _clean_ambient_plan():
    yield
    faults.install(None)


def test_injected_error_becomes_a_structured_sweep_failure(tmp_path):
    plan = FaultPlan([FaultRule(site="pool.worker", kind="error",
                                max_fires=1)])
    with faults.installed(plan):
        result = run_collection_parallel(_specs(), SETUP, tmp_path, jobs=1)
    assert len(result.failures) == 1
    assert result.failures[0].error_type == "FaultInjected"
    assert len(result.records) == len(_specs()) - 1


def test_sweep_completes_after_injected_worker_crash(tmp_path):
    """A crash kills the worker mid-chunk; the parent records the chunk as
    failures (pool breakage) and the sweep still returns."""
    plan = FaultPlan([FaultRule(site="pool.worker", kind="crash",
                                max_fires=1)])
    with faults.installed(plan):
        result = run_collection_parallel(_specs(), SETUP, tmp_path, jobs=2,
                                         chunksize=1)
    assert result.failures, "the crashed chunk must surface as failures"
    assert len(result.records) + len(result.failures) >= len(_specs())


def test_retry_after_faulted_sweep_heals(tmp_path):
    plan = FaultPlan([FaultRule(site="pool.worker", kind="error",
                                max_fires=1)])
    with faults.installed(plan):
        first = run_collection_parallel(_specs(), SETUP, tmp_path, jobs=1)
    assert first.failures
    # plan gone: retrying the recorded failures completes the sweep
    healed = run_collection_parallel(_specs(), SETUP, tmp_path, jobs=1,
                                     retry_failures=True)
    assert not healed.failures
    assert len(healed.records) == len(_specs())
