"""Chaos harness: under every fault class the daemon answers every request
— a result, a structured error, or a degraded answer — and never hangs."""

import json
import threading
import time

import pytest

from repro.analysis.report import canonical_json
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.protocol import normalize_request, request_key

from .conftest import SETUP, inline_matrix, make_plan


# ----------------------------------------------------------------------
# request-key and gating semantics
# ----------------------------------------------------------------------

def test_faults_flag_does_not_change_the_request_key():
    payload = {"matrix": inline_matrix(16), "setup": SETUP}
    plain = normalize_request("advise", payload)
    faulted = normalize_request("advise", {
        **payload,
        "faults": make_plan({"site": "worker.evaluate", "kind": "error"}),
    })
    assert request_key(plain) == request_key(faulted)


def test_malformed_plan_is_a_400_with_problems(chaos_client):
    with pytest.raises(Exception) as info:
        chaos_client.advise(matrix=inline_matrix(16),
                            faults={"schema": "nope", "rules": []}, **SETUP)
    assert info.value.status == 400
    assert "invalid fault plan" in info.value.error["message"]


def test_fault_flag_refused_without_allow_flag(tmp_path):
    thread = ServiceThread(ServiceConfig(jobs=1, cache_dir=None))
    host, port = thread.start()
    try:
        client = ServiceClient(host, port, timeout=30.0)
        with pytest.raises(Exception) as info:
            client.advise(
                matrix=inline_matrix(16),
                faults=make_plan({"site": "worker.evaluate", "kind": "error"}),
                **SETUP,
            )
        assert info.value.status == 403
        assert "--allow-fault-injection" in info.value.error["message"]
    finally:
        thread.stop()


def test_no_fault_responses_are_byte_identical_to_a_plain_daemon(tmp_path):
    """With faults simply *enabled* but unused, the wire is unchanged."""
    plain = ServiceThread(ServiceConfig(jobs=1, cache_dir=None))
    plain_host, plain_port = plain.start()
    try:
        payload = {"matrix": inline_matrix(24), "setup": SETUP}
        chaos = ServiceThread(ServiceConfig(jobs=1, cache_dir=None,
                                            allow_fault_injection=True))
        chaos_host, chaos_port = chaos.start()
        try:
            for endpoint in ("classify", "predict", "advise"):
                a = ServiceClient(plain_host, plain_port).request(
                    "POST", f"/{endpoint}", payload)
                b = ServiceClient(chaos_host, chaos_port).request(
                    "POST", f"/{endpoint}", payload)
                assert canonical_json(a) == canonical_json(b)
        finally:
            chaos.stop()
    finally:
        plain.stop()


# ----------------------------------------------------------------------
# fault classes, one by one
# ----------------------------------------------------------------------

def test_injected_error_is_a_structured_500(chaos_client):
    with pytest.raises(Exception) as info:
        chaos_client.advise(
            matrix=inline_matrix(20),
            faults=make_plan({"site": "worker.evaluate", "kind": "error",
                              "max_fires": 1}),
            **SETUP,
        )
    assert info.value.status == 500
    assert info.value.error["type"] == "FaultInjected"
    metrics = chaos_client.metrics()
    assert metrics["faults_injected"].get("worker.evaluate:error", 0) >= 1


def test_injected_crash_kills_a_worker_and_the_daemon_recovers(chaos_client):
    with pytest.raises(Exception) as info:
        chaos_client.advise(
            matrix=inline_matrix(28),
            faults=make_plan({"site": "worker.evaluate", "kind": "crash",
                              "max_fires": 1}),
            **SETUP,
        )
    assert info.value.status == 500
    assert info.value.error["type"] == "WorkerCrashed"
    assert chaos_client.metrics()["workers"]["restarts"] >= 1
    # the rebuilt pool serves the same request cleanly
    envelope = chaos_client.advise(matrix=inline_matrix(28), **SETUP)
    assert envelope["ok"] and "degraded" not in envelope


def test_injected_delay_runs_into_the_timeout(chaos_client):
    with pytest.raises(Exception) as info:
        chaos_client.advise(
            matrix=inline_matrix(32),
            faults=make_plan({"site": "worker.evaluate", "kind": "delay",
                              "delay_seconds": 2.0, "max_fires": 1}),
            timeout=0.2,
            **SETUP,
        )
    assert info.value.status == 504
    assert info.value.error["type"] == "TimeoutError"


def test_injected_saturation_degrades_with_an_analytic_answer(chaos_client):
    before = chaos_client.metrics()["evaluations"].get("advise", 0)
    envelope = chaos_client.advise(
        matrix=inline_matrix(36),
        faults=make_plan({"site": "pool.submit", "kind": "saturate",
                          "max_fires": 1}),
        **SETUP,
    )
    assert envelope["ok"] and envelope["degraded"]
    assert envelope["degraded_reason"] == "pool_saturated"
    assert envelope["cached"] is None
    assert envelope["result"]["best"]["policy"]  # Recommendation shape
    metrics = chaos_client.metrics()
    assert metrics["degraded"]["advise"]["pool_saturated"] >= 1
    # the pool was never touched and nothing was cached: a follow-up
    # normal request pays a fresh evaluation
    assert metrics["evaluations"].get("advise", 0) == before
    follow_up = chaos_client.advise(matrix=inline_matrix(36), **SETUP)
    assert follow_up["cached"] is None and "degraded" not in follow_up
    assert chaos_client.metrics()["evaluations"]["advise"] == before + 1


def test_degraded_classify_equals_the_full_answer(chaos_client):
    matrix = inline_matrix(40)
    degraded = chaos_client.classify(
        matrix=matrix,
        faults=make_plan({"site": "pool.submit", "kind": "saturate",
                          "max_fires": 1}),
        **SETUP,
    )
    assert degraded["degraded"]
    full = chaos_client.classify(matrix=matrix, **SETUP)
    assert degraded["result"] == full["result"]  # the taxonomy is closed-form


def test_sweep_saturation_sheds_with_a_structured_503(chaos_client):
    with pytest.raises(Exception) as info:
        chaos_client.sweep(
            matrix=inline_matrix(16),
            faults=make_plan({"site": "pool.submit", "kind": "saturate",
                              "max_fires": 1}),
            **SETUP,
        )
    assert info.value.status == 503
    assert info.value.error["type"] == "ServiceUnavailable"
    assert info.value.error["reason"] == "pool_saturated"
    assert "retry_after_seconds" in info.value.error


def test_corrupt_disk_entry_is_quarantined_and_healed(chaos_server, chaos_client):
    matrix = inline_matrix(44)
    first = chaos_client.advise(matrix=matrix, **SETUP)
    assert first["cached"] is None

    # memory tier is off, so this request must read the disk entry — the
    # injected corruption quarantines it and forces a clean re-evaluation
    corrupted = chaos_client.advise(
        matrix=matrix,
        faults=make_plan({"site": "cache.disk_read", "kind": "corrupt",
                          "max_fires": 1}),
        **SETUP,
    )
    assert corrupted["ok"] and corrupted["cached"] is None
    assert corrupted["result"] == first["result"]
    stats = chaos_client.metrics()["cache"]["disk"]
    assert stats["corrupt"] >= 1
    cache_dir = chaos_server.service.cache.cache_dir
    assert list(cache_dir.glob("*.corrupt")), "corrupt entry not quarantined"

    # the faulted request never writes the cache; the next healthy request
    # re-evaluates and heals the entry, after which reads hit disk again
    healed = chaos_client.advise(matrix=matrix, **SETUP)
    assert healed["cached"] is None and healed["result"] == first["result"]
    assert chaos_client.advise(matrix=matrix, **SETUP)["cached"] == "disk"


# ----------------------------------------------------------------------
# circuit breaker: deterministic transitions end to end
# ----------------------------------------------------------------------

def test_breaker_opens_degrades_and_recovers(tmp_path):
    thread = ServiceThread(ServiceConfig(
        jobs=1, cache_dir=None, allow_fault_injection=True,
        breaker_failure_threshold=2, breaker_recovery_seconds=0.3,
    ))
    host, port = thread.start()
    try:
        client = ServiceClient(host, port, timeout=30.0)
        error_plan = make_plan({"site": "worker.evaluate", "kind": "error",
                                "max_fires": 1})
        for rows in (16, 20):  # two consecutive 5xx failures trip it
            with pytest.raises(Exception) as info:
                client.advise(matrix=inline_matrix(rows), faults=error_plan,
                              **SETUP)
            assert info.value.status == 500

        snap = client.metrics()["breakers"]["advise"]
        assert snap["state"] == "open"
        assert snap["transitions"] == {"closed->open": 1}

        # open breaker: a normal cache-missing request degrades instantly
        envelope = client.advise(matrix=inline_matrix(24), **SETUP)
        assert envelope["degraded"]
        assert envelope["degraded_reason"] == "breaker_open"
        assert client.metrics()["degraded"]["advise"]["breaker_open"] == 1

        # after the recovery window one probe goes through and closes it
        time.sleep(0.35)
        envelope = client.advise(matrix=inline_matrix(24), **SETUP)
        assert "degraded" not in envelope
        snap = client.metrics()["breakers"]["advise"]
        assert snap["state"] == "closed"
        assert snap["transitions"] == {
            "closed->open": 1, "open->half_open": 1, "half_open->closed": 1,
        }
    finally:
        thread.stop()


def test_breaker_counts_ride_the_prometheus_exposition(tmp_path):
    thread = ServiceThread(ServiceConfig(
        jobs=1, cache_dir=None, allow_fault_injection=True,
        breaker_failure_threshold=1, breaker_recovery_seconds=60.0,
    ))
    host, port = thread.start()
    try:
        client = ServiceClient(host, port, timeout=30.0)
        with pytest.raises(Exception):
            client.advise(
                matrix=inline_matrix(16),
                faults=make_plan({"site": "worker.evaluate", "kind": "error"}),
                **SETUP,
            )
        client.advise(matrix=inline_matrix(20), **SETUP)  # degraded
        text = client.metrics(format="prometheus")
        assert 'repro_breaker_state{endpoint="advise"} 1' in text
        assert ('repro_breaker_transitions_total{endpoint="advise",'
                'transition="closed->open"} 1') in text
        assert ('repro_degraded_total{endpoint="advise",'
                'reason="breaker_open"} 1') in text
        assert ('repro_faults_injected_total{site="worker.evaluate",'
                'kind="error"} 1') in text
        from repro.obs.prometheus import parse_prometheus_text
        parse_prometheus_text(text)  # stays strictly parseable
    finally:
        thread.stop()


# ----------------------------------------------------------------------
# zero lost requests under a concurrent faulted burst
# ----------------------------------------------------------------------

def test_no_request_is_lost_under_a_concurrent_faulted_burst(chaos_client):
    """Crash, delay, error and saturation all at once: every request gets
    an answer (ok, structured error, or degraded) within the deadline."""
    plans = [
        None,
        make_plan({"site": "worker.evaluate", "kind": "crash", "max_fires": 1}),
        make_plan({"site": "worker.evaluate", "kind": "error", "max_fires": 1}),
        make_plan({"site": "worker.evaluate", "kind": "delay",
                   "delay_seconds": 0.4, "max_fires": 1}),
        make_plan({"site": "pool.submit", "kind": "saturate", "max_fires": 1}),
    ]
    outcomes: dict[int, str] = {}

    def one(i):
        try:
            envelope = chaos_client.advise(
                matrix=inline_matrix(48 + i),  # distinct keys: no coalescing
                faults=plans[i % len(plans)],
                timeout=5.0,
                **SETUP,
            )
            outcomes[i] = "degraded" if envelope.get("degraded") else "ok"
        except Exception as exc:
            # structured failures only: the error must carry a type
            assert getattr(exc, "error", {}).get("type"), exc
            outcomes[i] = f"error:{exc.error['type']}"

    threads = [threading.Thread(target=one, args=(i,)) for i in range(20)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "a chaos request hung"
    assert len(outcomes) == 20, "a chaos request was lost"
    assert any(v == "ok" for v in outcomes.values())
    # the daemon is still healthy afterwards
    assert chaos_client.health()["ok"]
    assert chaos_client.advise(matrix=inline_matrix(200), **SETUP)["ok"]
