"""Fixtures for the chaos harness: a fault-accepting in-process daemon."""

import pytest

from repro.service import ServiceClient, ServiceConfig, ServiceThread

#: Modest thread count keeps evaluations fast.
SETUP = {"num_threads": 8}


def make_plan(*rules, seed=0):
    """A repro.resilience.plan/v1 payload from rule dicts."""
    return {"schema": "repro.resilience.plan/v1", "seed": seed,
            "rules": list(rules)}


def inline_matrix(num_rows=64, bandwidth=2):
    """A tiny banded inline-CSR payload; vary ``num_rows`` for fresh keys."""
    rowptr, colidx = [0], []
    for row in range(num_rows):
        cols = [c for c in range(row - bandwidth, row + bandwidth + 1)
                if 0 <= c < num_rows]
        colidx.extend(cols)
        rowptr.append(len(colidx))
    return {"csr": {"num_rows": num_rows, "num_cols": num_rows,
                    "rowptr": rowptr, "colidx": colidx}}


@pytest.fixture(scope="module")
def chaos_server(tmp_path_factory):
    """A daemon that accepts fault plans (memory tier off so the
    ``cache.disk_read`` site is reachable deterministically)."""
    cache_dir = tmp_path_factory.mktemp("chaos_cache")
    thread = ServiceThread(ServiceConfig(
        jobs=2,
        cache_dir=str(cache_dir),
        memory_max_bytes=0,
        request_timeout=30.0,
        allow_fault_injection=True,
    ))
    thread.start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def chaos_client(chaos_server):
    host, port = chaos_server.address
    return ServiceClient(host, port, timeout=60.0)
