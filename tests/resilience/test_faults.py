"""FaultPlan scheduling semantics: deterministic, seeded, counted."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultInjected, FaultPlan, FaultRule


def _plan(*rules, seed=0):
    return FaultPlan(list(rules), seed=seed)


def test_rule_fires_every_hit_by_default():
    plan = _plan(FaultRule(site="worker.evaluate", kind="error"))
    assert plan.fire("worker.evaluate") is not None
    assert plan.fire("worker.evaluate") is not None
    assert plan.fire("other.site") is None


def test_after_lets_hits_through_then_fires():
    plan = _plan(FaultRule(site="s", kind="error", after=2))
    assert plan.fire("s") is None
    assert plan.fire("s") is None
    assert plan.fire("s") is not None


def test_max_fires_exhausts():
    plan = _plan(FaultRule(site="s", kind="error", max_fires=2))
    assert plan.fire("s") is not None
    assert plan.fire("s") is not None
    assert plan.fire("s") is None
    assert plan.fired_counts() == {"s:error": 2}


def test_probability_is_deterministic_under_seed():
    def draws(seed):
        plan = _plan(FaultRule(site="s", kind="error", probability=0.5), seed=seed)
        return [plan.fire("s") is not None for _ in range(32)]

    assert draws(7) == draws(7)
    assert draws(7) != draws(8)  # astronomically unlikely to collide
    assert any(draws(7)) and not all(draws(7))


def test_first_matching_rule_wins_and_counters_are_per_rule():
    plan = _plan(
        FaultRule(site="s", kind="error", max_fires=1),
        FaultRule(site="s", kind="delay", delay_seconds=0.1),
    )
    assert plan.fire("s").kind == "error"
    assert plan.fire("s").kind == "delay"
    assert plan.fired_counts() == {"s:error": 1, "s:delay": 1}


def test_roundtrip_through_dict():
    plan = _plan(
        FaultRule(site="worker.evaluate", kind="crash", max_fires=1),
        FaultRule(site="cache.disk_read", kind="corrupt", probability=0.5,
                  after=3),
        seed=42,
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.to_dict() == plan.to_dict()
    assert clone.seed == 42


def test_from_dict_rejects_bad_payloads():
    with pytest.raises(ValueError):
        FaultPlan.from_dict([])
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"schema": "something/else", "rules": []})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"rules": [{"site": "s", "kind": "nope"}]})


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultRule(site="", kind="error")
    with pytest.raises(ValueError):
        FaultRule(site="s", kind="error", probability=1.5)
    with pytest.raises(ValueError):
        FaultRule(site="s", kind="error", max_fires=0)


def test_ambient_install_and_fire():
    assert faults.fire("s") is None  # nothing installed costs nothing
    plan = _plan(FaultRule(site="s", kind="error"))
    with faults.installed(plan):
        assert faults.get_plan() is plan
        assert faults.fire("s") is not None
    assert faults.get_plan() is None
    assert faults.fire("s") is None


def test_installed_restores_previous_plan():
    outer = _plan(FaultRule(site="a", kind="error"))
    inner = _plan(FaultRule(site="b", kind="error"))
    with faults.installed(outer):
        with faults.installed(inner):
            assert faults.fire("a") is None
            assert faults.fire("b") is not None
        assert faults.fire("a") is not None


def test_perform_delay_sleeps_and_returns():
    slept = []
    rule = FaultRule(site="s", kind="delay", delay_seconds=0.25)
    faults.perform(rule, sleep=slept.append)
    assert slept == [0.25]


def test_perform_error_raises_fault_injected():
    with pytest.raises(FaultInjected, match="injected 'error' fault"):
        faults.perform(FaultRule(site="s", kind="error"))


def test_perform_none_is_noop():
    faults.perform(None)
