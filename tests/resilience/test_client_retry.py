"""ServiceClient self-healing: retry schedule, deadline budget, and the
structured BadResponseBody error for non-JSON bodies."""

import random
import socket
import threading

import pytest

from repro.resilience.retry import BackoffPolicy, DeadlineExceeded
from repro.service.client import ServiceClient, ServiceError, _retryable


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def _flaky_client(outcomes, **kwargs):
    """A client whose transport is scripted: each entry is an exception to
    raise or a value to return."""
    clock = FakeClock()
    client = ServiceClient("127.0.0.1", 1, clock=clock, sleep=clock.sleep,
                           **kwargs)
    script = list(outcomes)

    def scripted(method, path, payload):
        outcome = script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    client._request_once = scripted
    return client, clock


def test_default_client_does_not_retry():
    client, clock = _flaky_client([OSError("down"), {"ok": True}])
    with pytest.raises(OSError):
        client.request("GET", "/healthz")
    assert clock.sleeps == []


def test_retries_recover_from_transient_failures():
    client, clock = _flaky_client(
        [OSError("down"), ConnectionRefusedError(), {"ok": True}],
        retries=3,
        backoff=BackoffPolicy(base_seconds=0.1, jitter="none"),
    )
    assert client.request("GET", "/healthz") == {"ok": True}
    assert clock.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]


def test_retry_schedule_is_seed_deterministic():
    def sleeps(seed):
        client, clock = _flaky_client(
            [OSError(), OSError(), OSError(), {"ok": True}],
            retries=3,
            backoff=BackoffPolicy(base_seconds=0.1, rng=random.Random(seed)),
        )
        client.request("GET", "/")
        return clock.sleeps

    assert sleeps(7) == sleeps(7)
    assert sleeps(7) != sleeps(8)


def test_4xx_is_not_retried_5xx_is():
    bad_request = ServiceError(400, {"type": "RequestError", "message": "no"})
    client, clock = _flaky_client([bad_request, {"ok": True}], retries=3)
    with pytest.raises(ServiceError):
        client.request("POST", "/advise", {})
    assert clock.sleeps == []

    server_error = ServiceError(500, {"type": "WorkerCrashed", "message": ""})
    client, clock = _flaky_client([server_error, {"ok": True}], retries=3,
                                  backoff=BackoffPolicy(jitter="none"))
    assert client.request("POST", "/advise", {}) == {"ok": True}
    assert len(clock.sleeps) == 1


def test_bad_response_body_is_retryable():
    torn = ServiceError(200, {"type": "BadResponseBody",
                              "message": "not json", "body": "<html>"})
    assert _retryable(torn)
    client, clock = _flaky_client([torn, {"ok": True}], retries=1,
                                  backoff=BackoffPolicy(jitter="none"))
    assert client.request("GET", "/metrics") == {"ok": True}


def test_deadline_budget_raises_deadline_exceeded():
    client, clock = _flaky_client(
        [OSError("down")] * 10,
        retries=10,
        backoff=BackoffPolicy(base_seconds=1.0, cap_seconds=60.0,
                              jitter="none"),
        deadline_seconds=2.5,
    )
    with pytest.raises(DeadlineExceeded) as info:
        client.request("GET", "/healthz")
    assert isinstance(info.value.last_error, OSError)
    assert clock.sleeps == [pytest.approx(1.0)]  # 2 s retry would overrun


def _one_shot_server(response_bytes):
    """A real socket serving one canned HTTP response."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    port = sock.getsockname()[1]

    def serve():
        conn, _ = sock.accept()
        conn.recv(65536)
        conn.sendall(response_bytes)
        conn.close()
        sock.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return port, thread


def test_non_json_body_becomes_structured_service_error():
    body = b"<html>502 Bad Gateway</html>"
    port, thread = _one_shot_server(
        b"HTTP/1.1 502 Bad Gateway\r\n"
        b"Content-Type: text/html\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + body
    )
    client = ServiceClient("127.0.0.1", port, timeout=5.0)
    with pytest.raises(ServiceError) as info:
        client.request("GET", "/healthz")
    thread.join(timeout=5)
    assert info.value.status == 502
    assert info.value.error["type"] == "BadResponseBody"
    assert "502 Bad Gateway" in info.value.error["body"]


def test_non_json_200_body_is_also_wrapped():
    body = b"this is not json at all"
    port, thread = _one_shot_server(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        b"Connection: close\r\n\r\n" + body
    )
    client = ServiceClient("127.0.0.1", port, timeout=5.0)
    with pytest.raises(ServiceError) as info:
        client.request("GET", "/healthz")
    thread.join(timeout=5)
    assert info.value.error["type"] == "BadResponseBody"
    assert info.value.error["body"] == body.decode()
