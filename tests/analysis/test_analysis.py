"""Analysis utilities: MAPE, boxplot stats, rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    absolute_percentage_errors,
    box_stats,
    canonical_json,
    error_stats,
    jsonable,
    render_box_table,
    render_json,
    render_series,
    render_table,
)


def test_mape_matches_eq3():
    measured = np.array([100.0, 200.0, 400.0])
    predicted = np.array([110.0, 180.0, 400.0])
    stats = error_stats(measured, predicted)
    expected = np.array([10.0, 10.0, 0.0])
    assert stats.mape == pytest.approx(expected.mean())
    assert stats.std == pytest.approx(expected.std())
    assert stats.count == 3


def test_ape_rejects_zero_measurements():
    with pytest.raises(ValueError):
        absolute_percentage_errors(np.array([0.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        absolute_percentage_errors(np.array([1.0, 2.0]), np.array([1.0]))


def test_perfect_prediction_zero_error():
    x = np.array([5.0, 9.0])
    stats = error_stats(x, x)
    assert stats.mape == 0.0 and stats.std == 0.0


def test_empty_error_stats():
    stats = error_stats(np.empty(0), np.empty(0))
    assert stats.count == 0 and stats.mape == 0.0


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(1.0, 1e6), st.floats(0.0, 1e6)), min_size=1, max_size=50
    )
)
def test_mape_non_negative_and_scale_invariant(data):
    measured = np.array([m for m, _ in data])
    predicted = np.array([p for _, p in data])
    stats = error_stats(measured, predicted)
    assert stats.mape >= 0
    scaled = error_stats(measured * 7, predicted * 7)
    assert scaled.mape == pytest.approx(stats.mape, rel=1e-9)


def test_box_stats_quartiles():
    values = np.arange(1, 101, dtype=np.float64)
    stats = box_stats(values)
    assert stats.median == pytest.approx(50.5)
    assert stats.q1 == pytest.approx(25.75)
    assert stats.q3 == pytest.approx(75.25)
    assert stats.count == 100
    assert not stats.outliers


def test_box_stats_flags_outliers():
    values = np.concatenate([np.ones(20), [100.0]])
    stats = box_stats(values)
    assert stats.outliers == (100.0,)
    assert stats.whisker_hi == 1.0


def test_box_stats_empty_rejected():
    with pytest.raises(ValueError):
        box_stats(np.empty(0))


def test_render_box_table_alignment():
    stats = box_stats(np.array([1.0, 2.0, 3.0]))
    text = render_box_table([("config A", stats)], "units")
    assert "config A" in text and "units" in text
    assert len(text.splitlines()) == 3


def test_render_table_basic():
    text = render_table(["name", "value"], [("a", 1.5), ("bb", 20)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.50" in text and "20" in text


def test_render_series():
    text = render_series("s", [(1, 2.0)], "x", "y")
    assert "s" in text and "2.00" in text


class _Box:
    def to_dict(self):
        return {"b": np.int64(2), "a": [np.float64(1.5), "x"]}


def test_jsonable_unwraps_to_dict_and_numpy_scalars():
    value = jsonable({"box": _Box(), "n": np.int32(7)})
    assert value == {"box": {"b": 2, "a": [1.5, "x"]}, "n": 7}
    assert type(value["n"]) is int


def test_jsonable_rejects_unserializable():
    with pytest.raises(TypeError):
        jsonable(object())


def test_canonical_json_is_order_independent():
    assert canonical_json({"a": 1, "b": (2, 3)}) == canonical_json({"b": [2, 3], "a": 1})
    assert canonical_json({"a": 1}) == '{"a":1}'


def test_render_json_is_indented_same_content():
    import json

    payload = {"z": _Box()}
    assert json.loads(render_json(payload)) == json.loads(canonical_json(payload))
    assert "\n" in render_json(payload)
