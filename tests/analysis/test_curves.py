"""Miss-ratio curves and working-set analysis."""

import numpy as np
import pytest

from repro.analysis.curves import MissRatioCurve, miss_ratio_curve, partition_efficiency
from repro.reuse import ReuseProfile, reuse_distances


def cyclic_profile(working_set=64, repeats=20):
    trace = np.tile(np.arange(working_set), repeats)
    return ReuseProfile.from_distances(reuse_distances(trace))


def test_curve_is_monotone_decreasing():
    curve = miss_ratio_curve(cyclic_profile(), max_capacity=256)
    assert np.all(np.diff(curve.miss_ratios) <= 1e-12)
    assert curve.miss_ratios[0] > curve.miss_ratios[-1]


def test_cyclic_trace_has_knee_at_working_set():
    # a cyclic scan misses 100% below the working set, ~0 above it
    curve = miss_ratio_curve(cyclic_profile(64), max_capacity=256, num_points=256,
                             log_spaced=False)
    knees = curve.knees(drop_threshold=0.5)
    assert knees and abs(knees[0] - 64) <= 2


def test_ratio_at_step_semantics():
    curve = MissRatioCurve(np.array([1, 10, 100]), np.array([1.0, 0.5, 0.0]))
    assert curve.ratio_at(0) == 1.0
    assert curve.ratio_at(5) == 1.0
    assert curve.ratio_at(10) == 0.5
    assert curve.ratio_at(1000) == 0.0


def test_curve_validation():
    with pytest.raises(ValueError):
        MissRatioCurve(np.array([1, 1]), np.array([1.0, 0.5]))
    with pytest.raises(ValueError):
        MissRatioCurve(np.array([1]), np.array([1.0, 0.5]))
    with pytest.raises(ValueError):
        miss_ratio_curve(cyclic_profile(), max_capacity=0)
    with pytest.raises(ValueError):
        miss_ratio_curve(cyclic_profile(), max_capacity=10, num_points=1)
    curve = miss_ratio_curve(cyclic_profile(), max_capacity=128)
    with pytest.raises(ValueError):
        curve.knees(drop_threshold=0.0)
    with pytest.raises(ValueError):
        curve.sparkline(width=0)


def test_sparkline_shape():
    curve = miss_ratio_curve(cyclic_profile(), max_capacity=256)
    line = curve.sparkline(width=32)
    assert len(line) == 32
    # high miss ratio on the left, low on the right
    assert line[0] != line[-1]


def test_partition_efficiency_prefers_fitting_both():
    # sector 0 holds a 32-line working set, sector 1 a 16-line one
    c0 = miss_ratio_curve(cyclic_profile(32), max_capacity=128, num_points=128,
                          log_spaced=False)
    c1 = miss_ratio_curve(cyclic_profile(16), max_capacity=128, num_points=128,
                          log_spaced=False)
    fractions = np.array([0.0, 0.25, 0.5, 0.9])
    combined = partition_efficiency(c0, c1, total_lines=64, sector1_fractions=fractions)
    # 25% (16 lines) for sector 1 fits both working sets: best combined ratio
    assert np.argmin(combined) == 1
    with pytest.raises(ValueError):
        partition_efficiency(c0, c1, 64, np.array([1.5]))
