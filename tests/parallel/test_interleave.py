"""Trace interleaving policies and the MCS collator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MemoryLayout, spmv_trace
from repro.matrices import banded
from repro.parallel import MCSLock, collate_fifo, interleave
from repro.parallel.mcs import _QNode
from repro.spmv import static_schedule


def make_traces(num_threads=3, n=120):
    matrix = banded(n, 4, 5, seed=0)
    layout = MemoryLayout.for_matrix(matrix, 256)
    return spmv_trace(matrix, layout, static_schedule(matrix, num_threads))


def per_thread_order_preserved(merged, originals):
    for t, original in enumerate(originals):
        sub = merged.lines[merged.threads == t]
        np.testing.assert_array_equal(sub, original.lines)


@pytest.mark.parametrize("policy", ["mcs", "block", "random", "sequential"])
def test_policies_preserve_per_thread_order(policy):
    traces = make_traces()
    merged = interleave(traces, policy, block=4, seed=42)
    assert len(merged) == sum(len(t) for t in traces)
    per_thread_order_preserved(merged, traces)


def test_mcs_is_per_access_round_robin():
    traces = make_traces(num_threads=2)
    merged = interleave(traces, "mcs")
    shorter = min(len(t) for t in traces)
    head = merged.threads[: 2 * shorter]
    np.testing.assert_array_equal(head[::2], 0)
    np.testing.assert_array_equal(head[1::2], 1)


def test_sequential_policy_concatenates():
    traces = make_traces(num_threads=2)
    merged = interleave(traces, "sequential")
    boundary = len(traces[0])
    assert np.all(merged.threads[:boundary] == 0)
    assert np.all(merged.threads[boundary:] == 1)


def test_random_policy_is_seeded():
    traces = make_traces()
    a = interleave(traces, "random", seed=7)
    b = interleave(traces, "random", seed=7)
    np.testing.assert_array_equal(a.lines, b.lines)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        interleave(make_traces(), "bogus")
    with pytest.raises(ValueError):
        interleave(make_traces(), "block", block=0)
    with pytest.raises(ValueError):
        interleave([], "mcs")


def test_interleave_matches_mcs_collation():
    traces = make_traces(num_threads=4)
    merged = interleave(traces, "mcs")
    items, owners = collate_fifo([t.lines for t in traces])
    np.testing.assert_array_equal(merged.lines, items)
    np.testing.assert_array_equal(merged.threads, owners)


def test_mcs_lock_fifo_handoff():
    lock = MCSLock()
    a = lock.acquire(0)
    b = lock.acquire(1)
    c = lock.acquire(2)
    assert lock.holds(a) and not lock.holds(b)
    lock.release(a)
    assert lock.holds(b) and not lock.holds(c)
    lock.release(b)
    lock.release(c)
    assert lock.history == [0, 1, 2]


def test_mcs_release_by_non_holder_rejected():
    lock = MCSLock()
    node = lock.acquire(0)
    with pytest.raises(RuntimeError):
        lock.release(_QNode(thread=9))
    lock.release(node)


@settings(max_examples=40, deadline=None)
@given(
    lengths=st.lists(st.integers(0, 20), min_size=1, max_size=6),
)
def test_collate_fifo_drains_all_streams(lengths):
    streams = [np.arange(n) + 100 * t for t, n in enumerate(lengths)]
    items, owners = collate_fifo(streams)
    assert len(items) == sum(lengths)
    for t, stream in enumerate(streams):
        np.testing.assert_array_equal(items[owners == t], stream)


def random_policy_reference(traces, seed):
    """The pre-vectorization random merge: per-thread sorted uniform draws."""
    from repro.core import concat_traces

    merged = concat_traces(traces)
    threads = merged.threads.astype(np.int64)
    rng = np.random.default_rng(seed)
    keys = rng.random(len(merged))
    for t in np.unique(threads):
        mask = threads == t
        keys[mask] = np.sort(keys[mask])
    return merged.reorder(np.argsort(keys, kind="stable"))


@pytest.mark.parametrize("seed", [0, 7, 123])
@pytest.mark.parametrize("num_threads", [1, 2, 5])
def test_vectorized_random_matches_per_thread_loop(seed, num_threads):
    traces = make_traces(num_threads=num_threads)
    merged = interleave(traces, "random", seed=seed)
    reference = random_policy_reference(traces, seed)
    np.testing.assert_array_equal(merged.lines, reference.lines)
    np.testing.assert_array_equal(merged.threads, reference.threads)
    np.testing.assert_array_equal(merged.arrays, reference.arrays)
