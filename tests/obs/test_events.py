"""Structured event log: emission, rotation, ambience, validation."""

import json
import os

from repro.obs.events import (
    EVENT_SCHEMA_ID,
    EventLog,
    emit,
    get_log,
    installed,
    main,
    validate_entry,
    validate_log_text,
)


def _read_entries(path):
    entries, problems = validate_log_text(path.read_text())
    assert problems == []
    return entries


def test_emit_writes_schema_valid_lines(tmp_path):
    log = EventLog(tmp_path / "events.jsonl", role="gateway")
    log.emit("request", trace_id="a" * 32, endpoint="advise", seconds=0.01)
    log.emit("gc.sweep", evicted=3)
    log.close()
    entries = _read_entries(tmp_path / "events.jsonl")
    assert [e["event"] for e in entries] == ["request", "gc.sweep"]
    first = entries[0]
    assert first["schema"] == EVENT_SCHEMA_ID
    assert first["trace_id"] == "a" * 32
    assert first["source"] == {"role": "gateway", "pid": os.getpid()}
    assert first["fields"] == {"endpoint": "advise", "seconds": 0.01}
    assert "trace_id" not in entries[1]
    assert [e["seq"] for e in entries] == [0, 1]


def test_non_scalar_fields_are_coerced_to_repr(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    log.emit("odd", payload={"nested": [1, 2]})
    log.close()
    entry, = _read_entries(tmp_path / "events.jsonl")
    assert entry["fields"]["payload"] == repr({"nested": [1, 2]})


def test_rotation_by_byte_budget_keeps_one_predecessor(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path, max_bytes=4096)
    for index in range(64):
        log.emit("filler", index=index, padding="x" * 128)
    log.close()
    rotated = path.with_name(path.name + ".1")
    assert rotated.exists()
    assert path.stat().st_size <= 4096
    # both generations stay individually valid
    _read_entries(path)
    _read_entries(rotated)


def test_ambient_emit_is_a_noop_until_installed(tmp_path):
    assert get_log() is None
    emit("ignored", detail="nobody listening")  # must not raise
    log = EventLog(tmp_path / "events.jsonl")
    with installed(log):
        assert get_log() is log
        emit("seen", detail="ambient")
    assert get_log() is None
    log.close()
    entry, = _read_entries(tmp_path / "events.jsonl")
    assert entry["event"] == "seen"


def test_emit_survives_a_closed_log(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    log.close()
    log.emit("after.close")  # swallowed, never raises into the caller


def test_validate_entry_catches_structural_problems():
    good = {
        "schema": EVENT_SCHEMA_ID, "ts": 1.0, "seq": 0, "event": "x",
        "source": {"role": "service", "pid": 1}, "fields": {},
    }
    assert validate_entry(good) == []
    assert validate_entry([]) == ["entry: must be a JSON object"]
    bad = dict(good, schema="wrong", ts=-1, seq="0", event="",
               source={"role": "", "pid": 0}, trace_id="",
               fields={"deep": {"no": 1}})
    problems = validate_entry(bad)
    for needle in ("schema", ".ts", ".seq", ".event", "source.role",
                   "source.pid", "trace_id", "fields['deep']"):
        assert any(needle in p for p in problems), (needle, problems)


def test_validate_log_text_reports_bad_json_lines():
    entries, problems = validate_log_text('not json\n')
    assert entries == []
    assert problems and "line 1" in problems[0]


def test_cli_validates_and_counts(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.emit("request", trace_id="b" * 32)
    log.emit("gc.sweep")
    log.close()
    assert main(["--validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 entries" in out and "2 event kinds" in out and "1 trace ids" in out

    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"schema": "nope"}) + "\n")
    assert main(["--validate", str(bad)]) == 1
