"""Accuracy-audit plumbing: sampling, backlog, sketches, status."""

import pytest

from repro.obs.audit import (
    AccuracyAuditor,
    compare_results,
    sample_fraction,
)


def test_sampling_is_deterministic_and_roughly_uniform():
    keys = [f"key-{i}" for i in range(2000)]
    fractions = [sample_fraction(7, key) for key in keys]
    assert fractions == [sample_fraction(7, key) for key in keys]
    rate = 0.25
    hit = sum(1 for f in fractions if f < rate) / len(fractions)
    assert abs(hit - rate) < 0.05
    # a different seed picks a different subset
    assert fractions != [sample_fraction(8, key) for key in keys]


def test_should_sample_honours_rate_edges():
    assert not AccuracyAuditor(rate=0.0).should_sample("anything")
    always = AccuracyAuditor(rate=1.0)
    assert all(always.should_sample(f"k{i}") for i in range(32))


def test_constructor_validation():
    with pytest.raises(ValueError):
        AccuracyAuditor(rate=1.5)
    with pytest.raises(ValueError):
        AccuracyAuditor(rate=0.5, backlog_limit=0)
    with pytest.raises(ValueError):
        AccuracyAuditor(rate=0.5, budget_seconds=0)


def test_backlog_is_bounded_and_sheds_visibly():
    auditor = AccuracyAuditor(rate=1.0, backlog_limit=2)
    assert auditor.offer({"key": "a"})
    assert auditor.offer({"key": "b"})
    assert not auditor.offer({"key": "c"})
    assert (auditor.sampled, auditor.dropped, auditor.backlog) == (2, 1, 2)
    assert auditor.pop()["key"] == "a"
    assert auditor.pop()["key"] == "b"
    assert auditor.pop() is None


def test_budget_exhaustion_stops_intake():
    auditor = AccuracyAuditor(rate=1.0, budget_seconds=1.0)
    assert auditor.offer({"key": "a"})
    auditor.spend(2.0)
    assert auditor.budget_exhausted
    assert not auditor.offer({"key": "b"})
    assert auditor.dropped == 1


def test_record_tracks_quantiles_bounds_and_violations():
    auditor = AccuracyAuditor(rate=1.0)
    for error in (0.01, 0.02, 0.03):
        auditor.record("2", 0, error, bound=0.30)
    auditor.record("2", 0, 0.9, bound=0.30)  # one violation
    auditor.record("1", 1, 0.001, bound=0.25)
    snap = auditor.snapshot()
    tier0 = snap["observed_error"]["2"]["0"]
    assert tier0["count"] == 4
    assert tier0["bound"] == 0.30
    assert tier0["violations"] == 1
    assert tier0["quantiles"]["p50"] <= tier0["quantiles"]["p99"]
    assert snap["observed_error"]["1"]["1"]["violations"] == 0
    assert auditor.violations_total() == 1
    # p99 above the bound flips the health status
    assert auditor.status() == "degraded"


def test_status_ok_while_p99_within_bound():
    auditor = AccuracyAuditor(rate=1.0)
    for _ in range(50):
        auditor.record("1", 0, 0.001, bound=0.05)
    assert auditor.status() == "ok"
    assert auditor.snapshot()["status"] == "ok"


def test_compare_results_matches_policies_and_floors_error():
    low = {"predictions": [
        {"policy": {"l2_sector1_ways": 4}, "l2_misses": 110.0},
        {"policy": {"l2_sector1_ways": 2}, "l2_misses": 50.0},
        {"policy": {"l2_sector1_ways": 9}, "l2_misses": 1.0},  # unmatched
    ]}
    reference = {"predictions": [
        {"policy": {"l2_sector1_ways": 4}, "l2_misses": 100.0},
        {"policy": {"l2_sector1_ways": 2}, "l2_misses": 0.0},
    ]}
    pairs = compare_results("predict", low, reference, floor=10.0,
                            classify_policy=lambda policy: "2")
    assert len(pairs) == 2
    by_error = sorted(error for _, error in pairs)
    # |110-100| / max(100, 10, 1) and |50-0| / max(0, 10, 1): the floor
    # keeps a zero reference from exploding the relative error
    assert by_error == pytest.approx([0.1, 5.0])


def test_compare_results_handles_list_valued_policies():
    policy = {"ways": [1, 2], "isolate_x": True}
    low = {"candidates": [{"policy": policy, "predicted_l2_misses": 11.0}]}
    ref = {"candidates": [{"policy": dict(policy), "predicted_l2_misses": 10.0}]}
    pairs = compare_results("advise", low, ref, floor=1.0,
                            classify_policy=lambda p: "3a")
    assert pairs == [("3a", pytest.approx(0.1))]


def test_classify_endpoint_is_never_compared():
    assert compare_results("classify", {}, {}, 1.0, lambda p: "1") == []
