"""The --trace console report: indented tree and self-time table."""

from repro.obs import SpanNode, TraceTree, render_report, render_self_times, render_tree


def _tree():
    return TraceTree(
        roots=[
            SpanNode(
                name="measure_matrix",
                seconds=2.0,
                count=2,
                attrs={"jobs": 2},
                rss_delta_bytes=3 << 20,
                children=[
                    SpanNode(name="simulate", seconds=1.2,
                             counters={"sim.events_queries": 9}),
                    SpanNode(name="model_a", seconds=0.5,
                             mem_peak_bytes=2048),
                ],
            )
        ]
    )


def test_render_tree_shows_structure_and_annotations():
    text = render_tree(_tree())
    lines = text.splitlines()
    assert "measure_matrix x2" in lines[0]
    assert "jobs=2" in lines[0]
    assert "+rss 3.0MiB" in lines[0]
    # children are indented under the parent
    assert lines[1].startswith("  ") and "simulate" in lines[1]
    assert "sim.events_queries:9" in lines[1]
    assert "peak 2.0KiB" in lines[2]


def test_render_tree_max_depth_prunes():
    text = render_tree(_tree(), max_depth=0)
    assert "measure_matrix" in text
    assert "simulate" not in text


def test_self_times_sorted_by_exclusive_time():
    text = render_self_times(_tree())
    rows = text.splitlines()[2:]
    names = [row.split()[0] for row in rows]
    # self seconds: simulate 1.2, model_a 0.5, measure_matrix 2.0-1.7=0.3
    assert names == ["simulate", "model_a", "measure_matrix"]


def test_self_times_against_wall_clock_reports_coverage():
    text = render_self_times(_tree(), wall_seconds=2.5)
    assert "(spans cover)" in text
    # all 2.0s of spans over 2.5s wall -> 80.0%
    assert "80.0%" in text.splitlines()[-1]


def test_render_report_combines_both_views():
    text = render_report(_tree(), wall_seconds=2.5)
    assert text.startswith("span tree:")
    assert "self time by span:" in text
