"""Distributed trace context: ids, wire forms, and validation."""

from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    new_span_id,
    new_trace_id,
    validate_context_dict,
)


def test_fresh_ids_have_the_w3c_shape():
    trace_id, span_id = new_trace_id(), new_span_id()
    assert len(trace_id) == 32 and set(trace_id) <= set("0123456789abcdef")
    assert len(span_id) == 16 and set(span_id) <= set("0123456789abcdef")


def test_new_contexts_are_distinct():
    a, b = TraceContext.new(), TraceContext.new()
    assert a.trace_id != b.trace_id
    assert a.span_id != b.span_id


def test_child_keeps_the_trace_but_mints_a_fresh_span_id():
    parent = TraceContext.new()
    child = parent.child()
    assert child.trace_id == parent.trace_id
    assert child.span_id != parent.span_id


def test_dict_round_trip():
    ctx = TraceContext.new()
    assert TraceContext.from_dict(ctx.to_dict()) == ctx


def test_header_round_trip():
    ctx = TraceContext.new()
    header = ctx.to_header()
    assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
    assert TraceContext.from_header(header) == ctx
    assert TRACE_HEADER == "X-Repro-Trace"


def test_malformed_inputs_parse_to_none_not_exceptions():
    bad = [
        None, 42, "", "00-zz-yy-01", {"trace_id": "abc"},
        {"trace_id": "g" * 32, "span_id": "a" * 16},
        {"trace_id": "A" * 32, "span_id": "a" * 16},  # uppercase rejected
        {"trace_id": "0" * 32, "span_id": "a" * 16},  # all-zero invalid
        {"trace_id": "a" * 32, "span_id": "0" * 16},
        {"trace_id": "a" * 31, "span_id": "a" * 16},
    ]
    for value in bad:
        assert TraceContext.from_dict(value) is None, value
        assert TraceContext.from_header(value) is None, value


def test_validate_context_dict_names_each_problem():
    assert validate_context_dict(TraceContext.new().to_dict()) == []
    assert validate_context_dict("nope") == ["trace_context must be an object"]
    problems = validate_context_dict({"trace_id": "short", "span_id": None})
    assert len(problems) == 2
    assert any("trace_id" in p for p in problems)
    assert any("span_id" in p for p in problems)
