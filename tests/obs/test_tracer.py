"""Tracer semantics: nesting, exception safety, the disabled fast path."""

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    count,
    enabled,
    get_tracer,
    install,
    installed,
    span,
)


def test_span_nesting_builds_a_tree():
    tracer = Tracer()
    with tracer.span("outer", matrix="m1"):
        with tracer.span("inner_a"):
            pass
        with tracer.span("inner_b"):
            with tracer.span("leaf"):
                pass
    tree = tracer.tree()
    assert [r.name for r in tree.roots] == ["outer"]
    outer = tree.roots[0]
    assert outer.attrs == {"matrix": "m1"}
    assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
    assert [c.name for c in outer.children[1].children] == ["leaf"]
    # inclusive times nest: the parent covers its children
    assert outer.seconds >= sum(c.seconds for c in outer.children)


def test_sibling_spans_stay_siblings():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert [r.name for r in tracer.tree().roots] == ["first", "second"]


def test_span_records_seconds_and_annotations():
    tracer = Tracer()
    with tracer.span("work") as sp:
        sp.annotate(rows=7)
        sp.add("queries", 3)
        sp.add("queries")
    assert sp.seconds > 0
    node = tracer.tree().roots[0]
    assert node.attrs == {"rows": 7}
    assert node.counters == {"queries": 4}


def test_exception_safety_records_span_and_propagates():
    tracer = Tracer()
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("outer"):
            with tracer.span("failing"):
                raise ValueError("boom")
    tree = tracer.tree()
    assert [r.name for r in tree.roots] == ["outer"]
    failing = tree.roots[0].children[0]
    assert failing.name == "failing"
    assert failing.attrs["error"] == "ValueError"
    # the stack unwound: a new span is a root's child again, not orphaned
    with tracer.span("after"):
        pass
    assert [r.name for r in tracer.tree().roots] == ["outer", "after"]


def test_counter_outside_any_span_lands_on_the_tracer():
    tracer = Tracer()
    tracer.count("events", 2)
    tracer.count("events")
    assert tracer.tree().counters == {"events": 3}


def test_disabled_ambient_tracing_returns_the_shared_null_span():
    assert get_tracer() is None
    # zero-allocation fast path: the very same object every call
    assert span("anything", matrix="m") is NULL_SPAN
    assert span("other") is span("different")
    count("ignored")  # must be a no-op, not an error
    with span("nested") as sp:
        sp.add("n")
        sp.annotate(x=1)
    assert sp.seconds == 0.0
    assert sp.rss_delta_bytes == 0
    assert sp.mem_peak_bytes == 0
    assert not enabled()


def test_install_and_installed_manage_the_ambient_tracer():
    tracer = Tracer()
    previous = install(tracer)
    try:
        assert previous is None
        assert enabled()
        with span("ambient"):
            count("hits")
    finally:
        install(previous)
    assert get_tracer() is None
    node = tracer.tree().roots[0]
    assert node.name == "ambient"
    assert node.counters == {"hits": 1}

    with installed(Tracer()) as inner:
        assert get_tracer() is inner
    assert get_tracer() is None


def test_installed_restores_on_exception():
    with pytest.raises(RuntimeError):
        with installed(Tracer()):
            raise RuntimeError
    assert get_tracer() is None


def test_rss_memory_mode_records_nonnegative_deltas():
    tracer = Tracer(memory="rss")
    with tracer.span("alloc") as sp:
        data = bytearray(8 << 20)  # 8 MiB should move the high-water mark
        data[-1] = 1
    assert sp.rss_delta_bytes >= 0
    assert tracer.tree().roots[0].rss_delta_bytes == sp.rss_delta_bytes


def test_tracemalloc_mode_segments_peaks_per_span():
    with Tracer(memory="tracemalloc") as tracer:
        with tracer.span("parent"):
            with tracer.span("big"):
                blob = bytearray(4 << 20)
            del blob
            with tracer.span("small"):
                tiny = bytearray(1024)
                del tiny
    parent, = tracer.tree().roots
    big, small = parent.children
    assert big.mem_peak_bytes >= 4 << 20
    assert small.mem_peak_bytes < 4 << 20
    # a parent's peak is the maximum over its extent, so it covers the child
    assert parent.mem_peak_bytes >= big.mem_peak_bytes


def test_tracemalloc_ownership_is_released_on_close():
    import tracemalloc

    assert not tracemalloc.is_tracing()
    tracer = Tracer(memory="tracemalloc")
    assert tracemalloc.is_tracing()
    tracer.close()
    assert not tracemalloc.is_tracing()


def test_invalid_memory_mode_rejected():
    with pytest.raises(ValueError, match="memory"):
        Tracer(memory="heap")


def test_adopt_grafts_a_foreign_tree_under_the_open_span():
    worker = Tracer()
    with worker.span("worker_task"):
        pass
    worker.count("worker_events", 5)

    parent = Tracer()
    with parent.span("run"):
        parent.adopt(worker.tree())
    run, = parent.tree().roots
    assert [c.name for c in run.children] == ["worker_task"]
    assert parent.tree().counters == {"worker_events": 5}
