"""TraceTree serialization, cross-process merge, and determinism."""

import json

from repro.obs import SpanNode, TraceTree, Tracer, self_seconds


def _worker_tree(matrix, seconds, queries):
    """A tree shaped like one fork-pool worker's measurement."""
    return TraceTree(
        roots=[
            SpanNode(
                name="measure_matrix",
                seconds=seconds,
                attrs={"matrix": matrix},
                children=[
                    SpanNode(name="classify", seconds=seconds * 0.1),
                    SpanNode(
                        name="simulate",
                        seconds=seconds * 0.7,
                        counters={"sim.events_queries": queries},
                    ),
                ],
            )
        ],
        counters={"worker_events": 1},
    )


def test_round_trip_preserves_every_field():
    tree = _worker_tree("m1", 2.0, 5)
    tree.roots[0].mem_peak_bytes = 123
    tree.roots[0].rss_delta_bytes = 456
    restored = TraceTree.from_dict(json.loads(json.dumps(tree.to_dict())))
    assert restored.to_dict() == tree.to_dict()


def test_from_dict_tolerates_missing_optional_fields():
    node = SpanNode.from_dict({"name": "bare"})
    assert node.seconds == 0.0
    assert node.count == 1
    assert node.children == []
    tree = TraceTree.from_dict({})
    assert tree.roots == [] and tree.counters == {}


def test_merge_concatenates_and_sums_counters():
    merged = TraceTree.merge([_worker_tree("m1", 1.0, 2), _worker_tree("m2", 3.0, 4)])
    assert [r.attrs["matrix"] for r in merged.roots] == ["m1", "m2"]
    assert merged.counters == {"worker_events": 2}


def test_merged_aggregates_same_named_spans():
    tree = TraceTree.merge([_worker_tree("m1", 1.0, 2), _worker_tree("m2", 3.0, 4)])
    compact = tree.merged()
    root, = compact.roots
    assert root.name == "measure_matrix"
    assert root.count == 2
    assert root.seconds == 4.0
    assert root.attrs == {}  # conflicting matrix attrs do not survive
    by_name = {c.name: c for c in root.children}
    assert by_name["simulate"].counters == {"sim.events_queries": 6}


def test_merged_is_deterministic_under_arrival_order():
    trees = [_worker_tree(f"m{i}", float(i + 1), i) for i in range(4)]
    forward = TraceTree.merge(trees).merged().to_dict()
    backward = TraceTree.merge(list(reversed(trees))).merged().to_dict()
    assert json.dumps(forward, sort_keys=True) == json.dumps(backward, sort_keys=True)


def test_self_seconds_excludes_children():
    node = SpanNode(
        name="outer",
        seconds=2.0,
        children=[SpanNode(name="a", seconds=0.5), SpanNode(name="b", seconds=0.7)],
    )
    assert self_seconds(node) == 2.0 - 0.5 - 0.7
    assert self_seconds(SpanNode(name="tight", seconds=0.1)) == 0.1


def test_self_seconds_by_name_partitions_a_real_trace():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("phase_a"):
            pass
        with tracer.span("phase_b"):
            pass
    tree = tracer.tree()
    by_name = tree.self_seconds_by_name()
    assert set(by_name) == {"root", "phase_a", "phase_b"}
    # self times partition the root's inclusive time (up to clamping slack)
    assert sum(by_name.values()) <= tree.total_seconds() + 1e-9


def test_find_walks_depth_first():
    tree = _worker_tree("m1", 1.0, 1)
    assert [n.name for n in tree.find("simulate")] == ["simulate"]
    assert tree.find("missing") == []
