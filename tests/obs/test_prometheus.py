"""Prometheus text exposition: rendering and the strict parser."""

import pytest

from repro.obs import LatencyHistogram, parse_prometheus_text, render_prometheus
from repro.service.metrics import ServiceMetrics

CACHE_STATS = {
    "memory": {"hits": 3, "misses": 1, "evictions": 0, "expirations": 0,
               "entries": 2, "bytes": 512, "max_bytes": 1 << 20,
               "ttl_seconds": 300.0},
    "disk": {"hits": 1, "misses": 2, "enabled": True},
}


def _snapshot():
    metrics = ServiceMetrics(jobs=2, clock=lambda: 10.0)
    metrics.observe_request("sweep", "ok", 0.02)
    metrics.observe_request("sweep", "ok", 4.0)
    metrics.observe_request("advise", "error", 0.3)
    metrics.evaluations["sweep"] += 2
    metrics.coalesced["sweep"] += 1
    metrics.cache_served["sweep"]["memory"] += 1
    metrics.observe_phases("sweep", {"simulate": 1.5, "model_a": 0.5})
    metrics.observe_phases("sweep", {"simulate": 0.5})
    return metrics.snapshot(CACHE_STATS)


def test_rendered_snapshot_parses_under_the_strict_reader():
    text = render_prometheus(_snapshot())
    samples = parse_prometheus_text(text)
    assert ({"endpoint": "sweep", "status": "ok"}, 2.0) in samples[
        "repro_requests_total"
    ]
    assert ({"endpoint": "sweep"}, 2.0) in samples["repro_evaluations_total"]
    assert ({"endpoint": "sweep", "phase": "simulate"}, 2.0) in samples[
        "repro_evaluation_phase_seconds_total"
    ]
    assert ({"endpoint": "sweep", "tier": "memory"}, 1.0) in samples[
        "repro_cache_served_total"
    ]


def test_histogram_series_are_cumulative_and_consistent():
    text = render_prometheus(_snapshot())
    samples = parse_prometheus_text(text)
    buckets = [
        (labels["le"], value)
        for labels, value in samples["repro_request_latency_seconds_bucket"]
        if labels["endpoint"] == "sweep"
    ]
    values = [v for _, v in buckets]
    assert values == sorted(values), "buckets must be cumulative"
    assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 2.0
    counts = dict(
        (labels["endpoint"], value)
        for labels, value in samples["repro_request_latency_seconds_count"]
    )
    assert counts["sweep"] == 2.0


def test_label_values_are_escaped():
    snapshot = _snapshot()
    snapshot["requests"]['we"ird\nname'] = {"ok": 1}
    text = render_prometheus(snapshot)
    samples = parse_prometheus_text(text)
    assert any(
        labels.get("endpoint") == 'we\\"ird\\nname'
        for labels, _ in samples["repro_requests_total"]
    )


def test_parser_rejects_malformed_text():
    with pytest.raises(ValueError, match="no TYPE"):
        parse_prometheus_text("untyped_metric 1\n")
    with pytest.raises(ValueError, match="malformed sample"):
        parse_prometheus_text("# TYPE m counter\nm{broken 1\n")
    with pytest.raises(ValueError, match="malformed TYPE"):
        parse_prometheus_text("# TYPE m wrongkind\n")
    with pytest.raises(ValueError, match="duplicate TYPE"):
        parse_prometheus_text("# TYPE m counter\n# TYPE m counter\n")


def test_parser_rejects_inconsistent_histograms():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="0.1"} 5\n'
        'h_bucket{le="+Inf"} 3\n'
    )
    with pytest.raises(ValueError, match="non-monotonic"):
        parse_prometheus_text(bad)
    missing_inf = "# TYPE h histogram\n" 'h_bucket{le="0.1"} 1\n'
    with pytest.raises(ValueError, match="missing \\+Inf"):
        parse_prometheus_text(missing_inf)
    mismatch = (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 3\n'
        "h_count 4\n"
    )
    with pytest.raises(ValueError, match="_count"):
        parse_prometheus_text(mismatch)


def test_latency_histogram_is_shared_between_obs_and_service():
    # the satellite move: one histogram class, re-exported by the service
    from repro.obs import histogram as obs_histogram
    from repro.service import metrics as service_metrics

    assert service_metrics.LatencyHistogram is obs_histogram.LatencyHistogram
    hist = LatencyHistogram()
    hist.observe(0.003)
    hist.observe(100.0)
    snap = hist.snapshot()
    assert snap["count"] == 2
    assert snap["buckets"]["+Inf"] == 2
    assert snap["buckets"]["0.005"] == 1
