"""The /debug/traces ring buffer: lifecycle, bounds, snapshot shape."""

import pytest

from repro.obs.traces import TraceBuffer


def test_start_finish_round_trip():
    buffer = TraceBuffer(capacity=4)
    token = buffer.start("a" * 32, "predict")
    snap = buffer.snapshot()
    assert [e["trace_id"] for e in snap["in_flight"]] == ["a" * 32]
    buffer.finish(token, seconds=0.5, status="ok", tree={"roots": []})
    snap = buffer.snapshot()
    assert snap["in_flight"] == []
    entry, = snap["traces"]
    assert entry["trace_id"] == "a" * 32
    assert entry["status"] == "ok"
    assert entry["tree"] == {"roots": []}
    assert snap["recorded"] == 1 and snap["dropped"] == 0


def test_capacity_bound_counts_drops():
    buffer = TraceBuffer(capacity=2)
    for index in range(3):
        token = buffer.start(f"{index:032x}", "advise")
        buffer.finish(token, seconds=float(index), status="ok", tree=None)
    snap = buffer.snapshot()
    assert snap["recorded"] == 3 and snap["dropped"] == 1
    kept = {e["trace_id"] for e in snap["traces"]}
    assert f"{0:032x}" not in kept  # oldest evicted


def test_snapshot_is_slowest_first_and_filterable():
    buffer = TraceBuffer(capacity=8)
    for seconds, endpoint in ((0.1, "predict"), (0.9, "advise"),
                              (0.5, "predict")):
        token = buffer.start("b" * 32, endpoint)
        buffer.finish(token, seconds=seconds, status="ok", tree=None)
    snap = buffer.snapshot()
    assert [e["seconds"] for e in snap["traces"]] == [0.9, 0.5, 0.1]
    only_predict = buffer.snapshot(endpoint="predict")
    assert [e["seconds"] for e in only_predict["traces"]] == [0.5, 0.1]
    top1 = buffer.snapshot(limit=1)
    assert [e["seconds"] for e in top1["traces"]] == [0.9]


def test_discard_drops_in_flight_without_recording():
    buffer = TraceBuffer(capacity=2)
    token = buffer.start("c" * 32, "sweep")
    buffer.discard(token)
    buffer.finish(token, seconds=1.0, status="ok", tree=None)  # stale token
    snap = buffer.snapshot()
    assert snap["traces"] == [] and snap["in_flight"] == []
    assert snap["recorded"] == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)
