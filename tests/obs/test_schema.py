"""Trace-payload validation: the structural schema and its CLI."""

import json

import pytest

from repro.obs import TRACE_SCHEMA_ID, Tracer, validate_trace_payload, validate_tree
from repro.obs.schema import main as schema_main


def _payload(tree_dict=None, **overrides):
    payload = {
        "schema": TRACE_SCHEMA_ID,
        "wall_seconds": 1.5,
        "tree": tree_dict
        if tree_dict is not None
        else {
            "roots": [
                {
                    "name": "root",
                    "seconds": 1.0,
                    "children": [{"name": "leaf", "seconds": 0.4}],
                }
            ],
            "counters": {"queries": 3},
        },
    }
    payload.update(overrides)
    return payload


def test_valid_payload_has_no_problems():
    assert validate_trace_payload(_payload()) == []


def test_live_tracer_output_validates():
    tracer = Tracer(memory="rss")
    with tracer.span("outer", matrix="m1"):
        with tracer.span("inner"):
            pass
    tracer.count("loose", 2)
    assert validate_tree(tracer.tree().to_dict()) == []


@pytest.mark.parametrize(
    "payload,needle",
    [
        ([], "must be a JSON object"),
        (_payload(schema="other/v9"), "schema"),
        (_payload(wall_seconds=-1), "wall_seconds"),
        ({"schema": TRACE_SCHEMA_ID}, "tree: missing"),
        (_payload(tree_dict={"roots": 3}), "roots"),
        (_payload(tree_dict={"roots": [{"name": ""}]}), "name"),
        (_payload(tree_dict={"roots": [{"name": "a", "seconds": -0.1}]}), "seconds"),
        (_payload(tree_dict={"roots": [{"name": "a", "count": 0}]}), "count"),
        (_payload(tree_dict={"roots": [{"name": "a", "attrs": {"k": [1]}}]}), "attrs"),
        (
            _payload(tree_dict={"roots": [{"name": "a", "counters": {"k": "x"}}]}),
            "counters",
        ),
        (
            _payload(tree_dict={"roots": [{"name": "a", "mem_peak_bytes": -4}]}),
            "mem_peak_bytes",
        ),
    ],
)
def test_invalid_payloads_are_reported(payload, needle):
    problems = validate_trace_payload(payload)
    assert problems, f"expected a problem mentioning {needle!r}"
    assert any(needle in p for p in problems), problems


def test_children_exceeding_parent_rejected_for_unaggregated_spans():
    tree = {
        "roots": [
            {
                "name": "root",
                "seconds": 1.0,
                "children": [
                    {"name": "a", "seconds": 0.8},
                    {"name": "b", "seconds": 0.8},
                ],
            }
        ]
    }
    assert any("children cover" in p for p in validate_tree(tree))


def test_children_may_exceed_parent_after_aggregation():
    # a merged parallel run: 2 workers' CPU time under one wall-clock span
    tree = {
        "roots": [
            {
                "name": "run_collection",
                "seconds": 1.0,
                "children": [{"name": "measure_matrix", "seconds": 1.8, "count": 2}],
            }
        ]
    }
    assert validate_tree(tree) == []


def test_cli_accepts_a_valid_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_payload()))
    assert schema_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and TRACE_SCHEMA_ID in out


def test_cli_rejects_a_broken_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_payload(schema="nope")))
    assert schema_main([str(path)]) == 1
    assert "invalid" in capsys.readouterr().err


def test_cli_rejects_unreadable_file(tmp_path, capsys):
    assert schema_main([str(tmp_path / "missing.json")]) == 1
    assert "cannot read" in capsys.readouterr().err
