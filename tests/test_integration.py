"""Cross-module integration tests.

These exercise whole pipelines rather than single modules: numerics against
SciPy, model-vs-simulator agreement bounds per matrix family, stack-
inclusion properties of the simulated hierarchy, and end-to-end driver
runs at tiny scale.
"""

import numpy as np
import pytest
import scipy.sparse

from repro import (
    CacheMissModel,
    SimConfig,
    SpMVCacheSim,
    listing1_policy,
    no_sector_cache,
    scaled_machine,
    spmv,
)
from repro.matrices import banded, power_law, random_uniform, rcm_reorder, stencil_2d
from repro.spmv import CSRMatrix, spmv_merge
from repro.spmv.csc import CSCMatrix
from repro.spmv.sellcs import SellCSigmaMatrix

MACHINE = scaled_machine(16)


# ----------------------------------------------------------------------
# numerics vs SciPy
# ----------------------------------------------------------------------
def to_scipy(matrix: CSRMatrix) -> scipy.sparse.csr_matrix:
    return scipy.sparse.csr_matrix(
        (matrix.values, matrix.colidx, matrix.rowptr), shape=matrix.shape
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_all_kernels_match_scipy(seed):
    rng = np.random.default_rng(seed)
    n = 300
    m = power_law(n, 5.0, seed=seed)
    m = CSRMatrix(m.num_rows, m.num_cols, m.rowptr, m.colidx,
                  rng.standard_normal(m.nnz), name=m.name)
    x = rng.standard_normal(n)
    expected = to_scipy(m) @ x
    np.testing.assert_allclose(spmv(m, x), expected, rtol=1e-10)
    np.testing.assert_allclose(spmv_merge(m, x, num_threads=5), expected, rtol=1e-10)
    np.testing.assert_allclose(
        SellCSigmaMatrix.from_csr(m).spmv(x), expected, rtol=1e-10
    )
    np.testing.assert_allclose(CSCMatrix.from_csr(m).spmv(x), expected, rtol=1e-10)


def test_transpose_matches_scipy():
    m = power_law(200, 4.0, seed=3)
    np.testing.assert_allclose(
        m.transpose().to_dense(), to_scipy(m).T.toarray()
    )


def test_rcm_comparable_to_scipy_rcm():
    # both orderings should land in the same bandwidth ballpark
    from scipy.sparse.csgraph import reverse_cuthill_mckee
    from repro.matrices import matrix_stats

    m = random_uniform(400, 3, seed=5)
    sym = to_scipy(m) + to_scipy(m).T
    sym.data[:] = 1.0
    perm = reverse_cuthill_mckee(scipy.sparse.csr_matrix(sym), symmetric_mode=True)
    scipy_bw = matrix_stats(
        CSRMatrix.from_dense(sym.toarray()[perm][:, perm])
    ).bandwidth
    ours_bw = matrix_stats(
        rcm_reorder(CSRMatrix.from_dense(sym.toarray()))
    ).bandwidth
    assert ours_bw <= 1.5 * scipy_bw + 10


# ----------------------------------------------------------------------
# model vs simulator agreement per family
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "matrix,bound",
    [
        (banded(5_000, 120, 60, seed=1), 0.08),    # streaming-dominated
        (stencil_2d(190, 190, 5), 0.10),           # regular grid
        (random_uniform(20_000, 8, seed=2), 0.15),  # x-heavy
    ],
    ids=["band", "stencil", "random"],
)
def test_method_a_tracks_simulator(matrix, bound):
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=48))
    model = CacheMissModel(matrix, MACHINE, num_threads=48)
    for policy in (no_sector_cache(), listing1_policy(5)):
        measured = sim.events(policy).l2_misses
        predicted = model.predict(policy, "A").l2_misses
        assert measured > 0
        assert abs(measured - predicted) / measured < bound


def test_sequential_model_is_near_exact():
    # without threads, prefetcher effects aside, model A ~ simulator
    matrix = banded(3_000, 60, 40, seed=1)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=1))
    model = CacheMissModel(matrix, MACHINE, num_threads=1)
    measured = sim.events(listing1_policy(5)).l2_misses
    predicted = model.predict(listing1_policy(5), "A").l2_misses
    assert abs(measured - predicted) / measured < 0.02


# ----------------------------------------------------------------------
# structural properties of the simulated hierarchy
# ----------------------------------------------------------------------
def test_lru_stack_inclusion_across_way_splits():
    # giving sector 1 more ways can only turn its misses into hits
    matrix = random_uniform(10_000, 6, seed=3)
    sim = SpMVCacheSim(matrix, MACHINE, SimConfig(num_threads=12))
    stream, rd = sim._l2_level(0)
    sector1 = rd.sectors == 1
    previous = None
    for ways in range(2, 8):
        hits = rd.hit_mask(ways)
        if previous is not None:
            assert np.all(hits[sector1] >= previous[sector1])
        previous = hits


def test_miss_monotonicity_in_cache_size():
    # the same trace on a twice-larger machine cannot miss more
    matrix = random_uniform(12_000, 6, seed=4)
    small = scaled_machine(16)
    large = scaled_machine(8)
    misses_small = SpMVCacheSim(matrix, small, SimConfig(num_threads=4)).baseline_events().l2_misses
    misses_large = SpMVCacheSim(matrix, large, SimConfig(num_threads=4)).baseline_events().l2_misses
    assert misses_large <= misses_small


def test_interleaving_policies_change_little_for_symmetric_loads():
    matrix = banded(4_000, 80, 25, seed=5)
    results = []
    for policy in ("mcs", "random"):
        sim = SpMVCacheSim(
            matrix, MACHINE, SimConfig(num_threads=12, interleave_policy=policy)
        )
        results.append(sim.baseline_events().l2_misses)
    a, b = results
    assert abs(a - b) / max(a, 1) < 0.1
