"""Cluster-era service plumbing: keep-alive client, disk GC, /cache/peek."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.cache import QUARANTINE_SUFFIXES, gc_sweep
from repro.service.protocol import normalize_request

SETUP = {"num_threads": 8}


# -- keep-alive connection pooling ---------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("support_cache")
    thread = ServiceThread(ServiceConfig(jobs=1, cache_dir=str(cache_dir)))
    thread.start()
    yield thread
    thread.stop()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ServiceClient(host, port, timeout=60.0) as c:
        yield c


def test_requests_reuse_one_pooled_connection(client):
    client.health()
    first = client._local.conn
    assert first is not None
    client.health()
    client.metrics()
    assert client._local.conn is first  # same socket, three requests


def test_stale_pooled_connection_reconnects_transparently(client):
    client.health()
    # simulate a server-side idle close: kill the pooled socket underneath
    client._local.conn.sock.close()
    assert client.health()["ok"]  # retried on a fresh connection
    assert client._local.conn is not None


def test_close_drops_the_pool_and_client_still_works(client):
    client.health()
    client.close()
    assert getattr(client._local, "conn", None) is None
    assert client.health()["ok"]


# -- /cache/peek ---------------------------------------------------------


def test_cache_peek_hits_only_after_a_real_request(client):
    task = normalize_request("advise", {
        "matrix": {"name": "banded_001", "collection": "tiny"},
        "setup": SETUP,
    })
    miss = client.cache_peek(task)
    assert miss["ok"] and miss["found"] is False

    envelope = client.advise(name="banded_001", collection="tiny", **SETUP)
    hit = client.cache_peek(task)
    assert hit["found"] is True
    assert hit["key"] == envelope["key"]
    assert hit["result"] == envelope["result"]
    assert hit["tier"] in ("memory", "disk")

    counters = client.metrics()["cache_peek"]
    assert counters.get("hit") == 1 and counters.get("miss") == 1


def test_cache_peek_rejects_malformed_tasks(client):
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as err:
        client.cache_peek({"endpoint": "nonsense"})
    assert err.value.status == 400
    with pytest.raises(ServiceError):
        client.request("POST", "/cache/peek", {"task": "not-an-object"})


def test_cache_peek_never_evaluates(client):
    """A peek for a never-requested matrix is a cheap miss, not a fresh
    evaluation (the whole point: peers peek before paying)."""
    task = normalize_request("advise", {
        "matrix": {"name": "stencil_2d_004", "collection": "tiny"},
        "setup": SETUP,
    })
    t0 = time.perf_counter()
    assert client.cache_peek(task)["found"] is False
    assert time.perf_counter() - t0 < 1.0
    # still a miss afterwards: nothing was admitted or computed
    assert client.cache_peek(task)["found"] is False


# -- disk-cache GC -------------------------------------------------------


def _write(path: Path, text: str, age_seconds: float = 0.0) -> None:
    path.write_text(text)
    if age_seconds:
        stamp = time.time() - age_seconds
        os.utime(path, (stamp, stamp))


def test_gc_expires_by_age_and_keeps_young_files(tmp_path):
    _write(tmp_path / "old.json", "x" * 100, age_seconds=3600)
    _write(tmp_path / "young.json", "y" * 100)
    stats = gc_sweep(tmp_path, max_age_seconds=600)
    assert stats["expired"] == 1 and stats["deleted"] == 1
    assert stats["kept"] == 1
    assert not (tmp_path / "old.json").exists()
    assert (tmp_path / "young.json").exists()


def test_gc_evicts_oldest_first_down_to_byte_budget(tmp_path):
    for i, age in enumerate((300, 200, 100)):
        _write(tmp_path / f"entry{i}.json", "z" * 100, age_seconds=age)
    stats = gc_sweep(tmp_path, max_bytes=250)
    # the two newest fit in 250 bytes; the oldest is evicted
    assert stats["evicted"] == 1
    assert not (tmp_path / "entry0.json").exists()
    assert (tmp_path / "entry2.json").exists()
    assert stats["kept_bytes"] <= 250


def test_gc_never_touches_quarantine_files(tmp_path):
    for suffix in QUARANTINE_SUFFIXES:
        _write(tmp_path / f"bad{suffix}", "q" * 500, age_seconds=7200)
    _write(tmp_path / "entry.json", "e" * 100, age_seconds=7200)
    stats = gc_sweep(tmp_path, max_age_seconds=60, max_bytes=10)
    assert stats["quarantined"] == len(QUARANTINE_SUFFIXES)
    assert stats["deleted"] == 1
    for suffix in QUARANTINE_SUFFIXES:
        assert (tmp_path / f"bad{suffix}").exists()


def test_gc_cli_reports_json_stats(tmp_path):
    _write(tmp_path / "old.json", "x" * 100, age_seconds=3600)
    _write(tmp_path / "keep.failure.json", "f", age_seconds=3600)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service.cache", "--gc",
         "--dir", str(tmp_path), "--max-age", "600"],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parents[2],
    )
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["deleted"] == 1 and stats["quarantined"] == 1
    assert (tmp_path / "keep.failure.json").exists()


def test_gc_cli_requires_a_limit(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service.cache", "--gc",
         "--dir", str(tmp_path)],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parents[2],
    )
    assert proc.returncode != 0


def test_periodic_gc_task_prunes_and_counts(tmp_path):
    """An opt-in --gc-interval daemon sweeps its own cache dir."""
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    _write(cache_dir / "stale.json", "s" * 100, age_seconds=3600)
    _write(cache_dir / "held.failure.json", "f", age_seconds=3600)
    config = ServiceConfig(jobs=1, cache_dir=str(cache_dir),
                           gc_interval_seconds=0.2,
                           gc_max_age_seconds=600)
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port, timeout=30.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            gc = client.metrics()["gc"]
            if gc["sweeps"] >= 1:
                break
            time.sleep(0.1)
        assert gc["sweeps"] >= 1
        assert gc["deleted"] >= 1
        assert gc["quarantined"] >= 1
        client.close()
    assert not (cache_dir / "stale.json").exists()
    assert (cache_dir / "held.failure.json").exists()


def test_gc_interval_requires_a_limit():
    with pytest.raises(ValueError):
        ServiceConfig(jobs=1, cache_dir="/tmp/x", gc_interval_seconds=5.0)
