"""Request normalization, canonical keys, and worker-side builders."""

import numpy as np
import pytest

from repro.matrices import banded
from repro.matrices.collection import collection
from repro.service.client import matrix_payload
from repro.service.protocol import (
    RequestError,
    matrix_from_task,
    matrix_name,
    normalize_request,
    request_key,
    setup_from_task,
)


def _inline(matrix):
    return matrix_payload(matrix)


def test_key_is_independent_of_field_order():
    m = _inline(banded(64, 4, 3, seed=0))
    a = normalize_request("advise", {"matrix": m, "setup": {"num_threads": 8, "scale": 16}})
    b = normalize_request("advise", {"setup": {"scale": 16, "num_threads": 8}, "matrix": m})
    assert request_key(a) == request_key(b)


def test_key_ignores_timeout_but_not_setup():
    m = _inline(banded(64, 4, 3, seed=0))
    base = normalize_request("advise", {"matrix": m})
    patient = normalize_request("advise", {"matrix": m, "timeout": 5.0})
    other = normalize_request("advise", {"matrix": m, "setup": {"num_threads": 1}})
    assert request_key(base) == request_key(patient)
    assert request_key(base) != request_key(other)


def test_endpoints_key_separately():
    m = _inline(banded(64, 4, 3, seed=0))
    advise = normalize_request("advise", {"matrix": m})
    classify = normalize_request("classify", {"matrix": m})
    assert request_key(advise) != request_key(classify)


def test_defaults_are_filled_in():
    task = normalize_request("advise", {"matrix": _inline(banded(64, 4, 3, seed=0))})
    assert task["setup"]["num_threads"] == 48
    assert task["way_options"] == [2, 3, 4, 5, 6]
    assert task["consider_isolate_x"] is True
    setup = setup_from_task(task)
    assert setup.scale == 16 and setup.num_threads == 48


def test_inline_csr_round_trips():
    matrix = banded(64, 4, 3, seed=0)
    task = normalize_request("advise", {"matrix": _inline(matrix)})
    rebuilt = matrix_from_task(task)
    assert rebuilt.num_rows == matrix.num_rows
    assert np.array_equal(rebuilt.rowptr, matrix.rowptr)
    assert np.array_equal(rebuilt.colidx, matrix.colidx)
    assert rebuilt.name == matrix_name(task)
    assert rebuilt.name.startswith("inline-")


def test_inline_coo_builds_matrix():
    task = normalize_request("classify", {
        "matrix": {"coo": {"num_rows": 3, "num_cols": 3,
                           "rows": [0, 1, 2], "cols": [1, 2, 0]}},
    })
    rebuilt = matrix_from_task(task)
    assert rebuilt.nnz == 3
    assert rebuilt.num_rows == 3


def test_named_matrix_materializes_from_collection():
    spec = collection("tiny")[0]
    task = normalize_request("classify", {
        "matrix": {"name": spec.name, "collection": "tiny"},
    })
    assert matrix_name(task) == spec.name
    rebuilt = matrix_from_task(task)
    assert rebuilt.nnz == spec.materialize().nnz


@pytest.mark.parametrize("payload, fragment", [
    ({}, "matrix"),
    ({"matrix": {"csr": {"num_rows": 2, "num_cols": 2}}}, "rowptr"),
    ({"matrix": {"coo": {"num_rows": 2, "num_cols": 2,
                         "rows": [0], "cols": [0, 1]}}}, "same length"),
    ({"matrix": {"name": "x", "collection": "bogus"}}, "collection"),
    ({"matrix": {"csr": {"num_rows": -1, "num_cols": 2,
                         "rowptr": [0], "colidx": []}}}, "non-negative"),
    ({"matrix": {"coo": {"num_rows": 2, "num_cols": 2, "rows": [0],
                         "cols": [0]}}, "setup": {"bogus": 1}}, "unknown setup"),
    ({"matrix": {"coo": {"num_rows": 2, "num_cols": 2, "rows": [0],
                         "cols": [0]}}, "timeout": -1}, "timeout"),
])
def test_malformed_requests_rejected(payload, fragment):
    with pytest.raises(RequestError) as err:
        normalize_request("advise", payload)
    assert fragment in str(err.value)


def test_unknown_named_matrix_is_404():
    with pytest.raises(RequestError) as err:
        normalize_request("advise", {"matrix": {"name": "no_such", "collection": "tiny"}})
    assert err.value.status == 404


def test_unknown_endpoint_is_404():
    with pytest.raises(RequestError) as err:
        normalize_request("frobnicate", {"matrix": {"name": "x"}})
    assert err.value.status == 404


def test_predict_policies_are_canonicalized():
    m = _inline(banded(64, 4, 3, seed=0))
    a = normalize_request("predict", {
        "matrix": m, "policies": [{"l2_sector1_ways": 5}],
    })
    b = normalize_request("predict", {
        "matrix": m,
        "policies": [{"l2_sector1_ways": 5, "l1_sector1_ways": 0,
                      "sector1_arrays": ["colidx", "values"]}],
    })
    assert request_key(a) == request_key(b)


def test_bad_policy_rejected():
    with pytest.raises(RequestError):
        normalize_request("predict", {
            "matrix": _inline(banded(64, 4, 3, seed=0)),
            "policies": [{"sector1_arrays": ["bogus_array"]}],
        })
