"""The continuous accuracy audit and the structured event log, end to
end against a live daemon.

The audit daemon here samples every delivered tier-0/1 ladder answer
(``audit_rate=1.0``), re-answers off the hot path, and must report
observed error within the calibrated bound — the live falsification of
the fidelity ladder's central claim.
"""

import time

import pytest

from repro.obs import parse_prometheus_text
from repro.obs.events import validate_log_text
from repro.service import ServiceClient, ServiceConfig, ServiceThread

from .conftest import SETUP


@pytest.fixture(scope="module")
def audit_server(tmp_path_factory):
    base = tmp_path_factory.mktemp("audit_service")
    thread = ServiceThread(ServiceConfig(
        jobs=2, cache_dir=str(base / "cache"),
        audit_rate=1.0, audit_seed=0,
        event_log_path=str(base / "events.jsonl"),
    ))
    thread.start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def audit_client(audit_server):
    host, port = audit_server.address
    return ServiceClient(host, port, timeout=120.0)


def _drain_audit(client, minimum=1, timeout=60.0):
    """Wait for the background auditor to complete ``minimum`` samples."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        audit = client.metrics()["audit"]
        if audit["completed"] + audit["failed"] >= minimum:
            return audit
        time.sleep(0.1)
    raise AssertionError(f"audit did not drain: {client.metrics()['audit']}")


def test_cheap_tier_answers_are_audited_within_their_bounds(audit_client):
    for name in ("banded_001", "stencil_2d_004"):
        envelope = audit_client.predict(name=name, collection="tiny",
                                        max_tier=0, **SETUP)
        assert envelope["ok"]
        assert envelope["fidelity"]["tier"] == 0
    audit = _drain_audit(audit_client, minimum=2)
    assert audit["sampled"] >= 2
    assert audit["failed"] == 0
    assert audit["violations_total"] == 0
    assert audit["status"] == "ok"
    # observed error recorded per paper class, against the tier-0 bound
    assert audit["observed_error"], "expected per-class sketches"
    for per_tier in audit["observed_error"].values():
        for sketch in per_tier.values():
            assert sketch["count"] >= 1
            assert sketch["quantiles"]["p99"] <= sketch["bound"]
    health = audit_client.request("GET", "/healthz")
    assert health["accuracy"] == "ok"


def test_tier1_answers_use_the_apriori_bound(audit_client):
    envelope = audit_client.predict(name="random_uniform_002",
                                    collection="tiny", max_tier=1, **SETUP)
    assert envelope["ok"]
    tier = envelope["fidelity"]["tier"]
    if tier != 1:
        pytest.skip(f"ladder answered at tier {tier}, not 1")
    before = audit_client.metrics()["audit"]["completed"]
    audit = _drain_audit(audit_client, minimum=before + 1)
    tier1 = [sketch for per_tier in audit["observed_error"].values()
             for t, sketch in per_tier.items() if t == "1"]
    assert tier1, "expected a tier-1 sketch"
    assert all(s["bound"] == pytest.approx(0.25) for s in tier1)


def test_cached_repeats_are_not_resampled(audit_client):
    envelope = audit_client.predict(name="banded_001", collection="tiny",
                                    max_tier=0, **SETUP)
    assert envelope["cached"] in ("memory", "disk")
    sampled = audit_client.metrics()["audit"]["sampled"]
    again = audit_client.predict(name="banded_001", collection="tiny",
                                 max_tier=0, **SETUP)
    assert again["cached"] in ("memory", "disk")
    assert audit_client.metrics()["audit"]["sampled"] == sampled


def test_audit_exports_prometheus_families(audit_client):
    _drain_audit(audit_client)
    samples = parse_prometheus_text(audit_client.metrics(format="prometheus"))
    observed = samples["repro_audit_observed_error"]
    assert observed, "expected observed-error quantile samples"
    for labels, value in observed:
        assert set(labels) == {"class", "tier", "quantile"}
        assert labels["quantile"] in ("p50", "p95", "p99")
        assert value >= 0.0
    violations = samples["repro_audit_bound_violations_total"]
    assert sum(value for _, value in violations) == 0
    assert "repro_audit_backlog" in samples


def test_audit_disabled_daemon_has_no_audit_surface(client):
    snapshot = client.metrics()
    assert "audit" not in snapshot
    health = client.request("GET", "/healthz")
    assert "accuracy" not in health


def test_event_log_correlates_processes_by_trace_id(audit_server,
                                                    audit_client):
    envelope = audit_client.advise(name="power_law_007", collection="tiny",
                                   max_tier=0, **SETUP)
    assert envelope["ok"]
    _drain_audit(audit_client, minimum=1)
    log_path = audit_server.config.event_log_path
    entries, problems = validate_log_text(
        open(log_path, encoding="utf-8").read())
    assert problems == []
    events = {entry["event"] for entry in entries}
    assert {"service.start", "request", "worker.evaluate",
            "audit.sample"} <= events
    # one request's entries share a trace id across daemon + worker pids
    by_trace = {}
    for entry in entries:
        if entry.get("trace_id"):
            by_trace.setdefault(entry["trace_id"], []).append(entry)
    correlated = [
        group for group in by_trace.values()
        if {"request", "worker.evaluate"} <= {e["event"] for e in group}
    ]
    assert correlated, "expected daemon+worker entries sharing a trace_id"
    group = correlated[0]
    pids = {e["source"]["pid"] for e in group}
    assert len(pids) >= 2, "fork worker logs under its own pid"
