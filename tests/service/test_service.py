"""End-to-end daemon behaviour over real HTTP.

The acceptance criteria live here: service responses byte-identical to
direct model calls, N concurrent identical requests performing exactly
one evaluation (asserted via the ``/metrics`` evaluation counter), and
fault isolation — a crashed or timed-out worker yields a structured JSON
error while the daemon keeps serving.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.report import canonical_json
from repro.core import MethodB, SectorAdvisor, classify
from repro.core.advisor import Recommendation
from repro.experiments import ExperimentSetup, record_fingerprint, run_collection
from repro.experiments.common import MatrixRecord, measure_matrix
from repro.machine import scaled_machine
from repro.matrices import banded
from repro.matrices.collection import collection
from repro.service import ServiceClient, ServiceConfig, ServiceThread, matrix_payload
from repro.spmv import listing1_policy, no_sector_cache

from .conftest import SETUP

MACHINE = scaled_machine(16)


def test_health_and_metrics_shape(client):
    assert client.health() == {"ok": True, "status": "healthy"}
    metrics = client.metrics()
    assert {"uptime_seconds", "requests", "evaluations", "coalesced",
            "cache_served", "latency_seconds", "cache", "queue",
            "workers"} <= set(metrics)
    assert metrics["workers"]["jobs"] == 2
    assert metrics["cache"]["memory"]["max_bytes"] > 0


def test_advise_byte_identical_to_direct_call(client):
    matrix = banded(900, 30, 8, seed=11)
    envelope = client.advise(matrix, **SETUP)
    direct = SectorAdvisor(MACHINE, num_threads=8).recommend(matrix)
    assert canonical_json(envelope["result"]) == canonical_json(direct.to_dict())
    # and the wire form round-trips into a live Recommendation
    rec = Recommendation.from_dict(envelope["result"])
    assert rec.best == direct.best
    assert rec.predicted_speedup == direct.predicted_speedup


def test_predict_matches_method_b(client):
    matrix = banded(800, 24, 6, seed=12)
    envelope = client.predict(
        matrix, policies=[{"l2_sector1_ways": 0}, {"l2_sector1_ways": 5}], **SETUP
    )
    model = MethodB(matrix, MACHINE, num_threads=8)
    for entry, policy in zip(envelope["result"]["predictions"],
                             [no_sector_cache(), listing1_policy(5)]):
        direct = model.predict(policy)
        assert entry["l2_misses"] == direct.l2_misses
        assert entry["per_array"] == {k: int(v) for k, v in direct.per_array.items()}


def test_classify_matches_direct_call(client):
    matrix = banded(700, 22, 6, seed=13)
    envelope = client.classify(matrix, way_options=[0, 5], **SETUP)
    num_cmgs = envelope["result"]["num_cmgs"]
    for ways in (0, 5):
        expected = classify(matrix, MACHINE, ways, num_cmgs).value
        assert envelope["result"]["classes"][str(ways)] == expected


def test_second_request_hits_memory_cache(client):
    matrix = banded(640, 16, 5, seed=14)
    first = client.advise(matrix, **SETUP)
    second = client.advise(matrix, **SETUP)
    assert first["cached"] is None
    assert second["cached"] == "memory"
    assert second["result"] == first["result"]
    assert second["key"] == first["key"]


def test_coalescing_one_evaluation_for_concurrent_duplicates(client):
    matrix = banded(620, 14, 5, seed=15)
    payload = {"matrix": matrix_payload(matrix), "setup": SETUP,
               "x_test_sleep": 0.8}
    before = client.metrics()["evaluations"].get("advise", 0)
    with ThreadPoolExecutor(max_workers=6) as pool:
        envelopes = list(pool.map(
            lambda _: client.request("POST", "/advise", payload), range(6)
        ))
    after = client.metrics()["evaluations"].get("advise", 0)
    assert after - before == 1, "N concurrent duplicates must evaluate once"
    results = {canonical_json(e["result"]) for e in envelopes}
    assert len(results) == 1
    assert sum(e["cached"] == "coalesced" for e in envelopes) == len(envelopes) - 1


def test_worker_crash_is_isolated(client):
    matrix = banded(600, 12, 5, seed=16)
    payload = {"matrix": matrix_payload(matrix), "setup": SETUP,
               "x_test_crash": True}
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as err:
        client.request("POST", "/advise", payload)
    assert err.value.status == 500
    assert err.value.error["type"] == "WorkerCrashed"
    # the daemon survived and the rebuilt pool serves the next request
    envelope = client.classify(matrix, **SETUP)
    assert envelope["ok"] is True
    assert client.metrics()["workers"]["restarts"] >= 1


def test_timeout_returns_structured_error_and_daemon_survives(client):
    matrix = banded(580, 10, 5, seed=17)
    payload = {"matrix": matrix_payload(matrix), "setup": SETUP,
               "x_test_sleep": 5.0, "timeout": 0.3}
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as err:
        client.request("POST", "/classify", payload)
    assert err.value.status == 504
    assert err.value.error["type"] == "TimeoutError"
    envelope = client.classify(matrix, **SETUP)
    assert envelope["ok"] is True


def test_worker_model_error_is_structured_400(client):
    # a pattern-free matrix: method B rejects it inside the worker
    payload = {"matrix": {"csr": {"num_rows": 4, "num_cols": 4,
                                  "rowptr": [0, 0, 0, 0, 0], "colidx": []}},
               "setup": SETUP}
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as err:
        client.request("POST", "/advise", payload)
    assert err.value.status == 400
    assert "non-empty" in err.value.error["message"]


def test_unknown_endpoint_and_path(client):
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as err:
        client.request("POST", "/frobnicate", {})
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.request("GET", "/bogus")
    assert err.value.status == 404


def test_latency_histogram_accumulates(client):
    matrix = banded(560, 8, 4, seed=18)
    client.classify(matrix, **SETUP)
    hist = client.metrics()["latency_seconds"]["classify"]
    assert hist["count"] >= 1
    assert hist["buckets"]["+Inf"] == hist["count"]
    assert hist["sum_seconds"] > 0


def test_named_matrix_from_collection(client):
    spec = collection("tiny")[0]
    envelope = client.classify(name=spec.name, collection="tiny", **SETUP)
    assert envelope["result"]["name"] == spec.name


def test_sweep_matches_measure_matrix_and_shares_disk_records(tmp_path):
    setup = ExperimentSetup(scale=16, num_threads=8,
                            l2_way_options=(0, 5), l1_way_options=(0,))
    specs = collection("tiny", machine=setup.machine())[:1]
    serial = run_collection(specs, setup, tmp_path)

    config = ServiceConfig(jobs=1, cache_dir=str(tmp_path))
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port)
        envelope = client.sweep(name=specs[0].name, collection="tiny",
                                num_threads=8, l2_way_options=[0, 5],
                                l1_way_options=[0])
        # the batch sweep's record is the service's disk tier
        assert envelope["cached"] == "disk"
        record = MatrixRecord.from_dict(envelope["result"])
        assert record_fingerprint(record) == record_fingerprint(serial[0])
        client.shutdown()


def test_sweep_inline_matrix_fingerprint(tmp_path):
    matrix = banded(512, 8, 4, seed=19)
    setup = ExperimentSetup(scale=16, num_threads=8,
                            l2_way_options=(0, 5), l1_way_options=(0,))
    config = ServiceConfig(jobs=1, cache_dir=str(tmp_path))
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port)
        envelope = client.sweep(matrix, num_threads=8,
                                l2_way_options=[0, 5], l1_way_options=[0])
        record = MatrixRecord.from_dict(envelope["result"])
        direct = measure_matrix(
            type(matrix)(matrix.num_rows, matrix.num_cols, matrix.rowptr,
                         matrix.colidx, matrix.values, name=record.name),
            setup,
        )
        assert record_fingerprint(record) == record_fingerprint(direct)
        client.shutdown()


def test_disk_tier_serves_when_memory_is_cold(tmp_path):
    # a zero-byte memory budget forces every hit onto the disk tier
    matrix = banded(540, 8, 4, seed=20)
    config = ServiceConfig(jobs=1, cache_dir=str(tmp_path), memory_max_bytes=0)
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port)
        first = client.advise(matrix, **SETUP)
        second = client.advise(matrix, **SETUP)
        assert first["cached"] is None
        assert second["cached"] == "disk"
        assert second["result"] == first["result"]
        metrics = client.metrics()
        assert metrics["cache"]["disk"]["hits"] >= 1
        client.shutdown()


def test_shutdown_endpoint_stops_daemon():
    config = ServiceConfig(jobs=1, cache_dir=None)
    thread = ServiceThread(config)
    host, port = thread.start()
    client = ServiceClient(host, port)
    assert client.shutdown() == {"ok": True, "status": "shutting down"}
    thread._thread.join(timeout=30)
    assert not thread._thread.is_alive()
