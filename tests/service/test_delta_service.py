"""``POST /delta`` end to end: identity, chaining, failure modes, metrics."""

import pytest

from repro.delta import MatrixDelta
from repro.matrices.generators import banded
from repro.service.client import ServiceError

#: The incremental engine patches single-thread traces, so delta bases
#: are submitted sequentially (the module conftest's 8-thread SETUP is
#: exercised separately as the ``threads`` fallback).
SEQ = {"num_threads": 1, "scale": 16}

MATRIX = banded(1_200, 8, 6, seed=2)


def band_edits(matrix, rows):
    inserts, deletes = [], []
    for r in rows:
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]].tolist()
        colset = set(cols)
        ins = next(c for base in cols for c in (base + 1, base - 1)
                   if 0 <= c < matrix.num_cols and c not in colset)
        inserts.append([r, int(ins), 1.0])
        deletes.append([r, int(cols[0])])
    return inserts, deletes


def expect_error(fn, status):
    with pytest.raises(ServiceError) as excinfo:
        fn()
    assert excinfo.value.status == status, excinfo.value.error
    return excinfo.value


def test_delta_answer_is_byte_identical_and_chains_keys(client):
    base = client.advise(matrix=MATRIX, **SEQ)
    assert base["ok"], base

    ins1, del1 = band_edits(MATRIX, [10, 400, 900])
    d1 = client.delta(base["key"], inserts=ins1, deletes=del1)
    assert d1["ok"] and d1["delta"]["path"] == "incremental", d1
    assert d1["delta"]["base"] == base["key"]
    assert d1["delta"]["chain_length"] == 1
    assert d1["delta"]["edits"] == len(ins1) + len(del1)

    edited = MatrixDelta.from_dict(
        {"inserts": ins1, "deletes": del1}).apply(MATRIX).matrix
    full = client.advise(matrix=edited, **SEQ)
    assert d1["result"] == full["result"]

    # the derived key is itself a registered base: edits chain
    ins2, del2 = band_edits(edited, [60, 700])
    d2 = client.delta(d1["key"], inserts=ins2, deletes=del2)
    assert d2["ok"] and d2["delta"]["chain_length"] == 2, d2
    assert len({base["key"], d1["key"], d2["key"]}) == 3
    twice = MatrixDelta.from_dict(
        {"inserts": ins2, "deletes": del2}).apply(edited).matrix
    assert d2["result"] == client.advise(matrix=twice, **SEQ)["result"]

    # a repeated batch costs a cache lookup, not another patch
    again = client.delta(base["key"], inserts=ins1, deletes=del1)
    assert again["cached"] == "memory" and again["key"] == d1["key"]
    assert again["result"] == d1["result"]
    assert again["delta"]["chain_length"] == 1


def test_unknown_base_is_404(client):
    ins, _ = band_edits(MATRIX, [5])
    exc = expect_error(lambda: client.delta("f" * 32, inserts=ins), 404)
    assert "registry" in exc.error["message"]


def test_tampered_registry_record_is_409(server, client):
    base = client.advise(matrix=MATRIX, **SEQ)
    key = base["key"]
    registry = server.service.registry
    original = registry._memory[key]
    tampered = dict(original, setup=dict(original["setup"], scale=17))
    registry._memory[key] = tampered
    try:
        ins, del_ = band_edits(MATRIX, [5])
        exc = expect_error(
            lambda: client.delta(key, inserts=ins, deletes=del_), 409)
        assert "revalidation" in exc.error["message"]
    finally:
        registry._memory[key] = original


def test_bad_batches_are_400(client):
    base = client.advise(matrix=MATRIX, **SEQ)
    # inserting an edge that already exists: DeltaError out of the worker
    existing = [[3, int(MATRIX.colidx[MATRIX.rowptr[3]]), 1.0]]
    exc = expect_error(lambda: client.delta(base["key"], inserts=existing),
                       400)
    assert exc.error["type"] == "DeltaError"
    # an empty batch is rejected at validation, before any base lookup
    expect_error(lambda: client.delta(base["key"]), 400)
    # malformed base keys never reach the registry
    expect_error(lambda: client.delta("nope", inserts=[[0, 1]]), 400)


def test_non_model_base_is_never_registered(client):
    # only classify/predict/advise keys enter the stored-task registry;
    # a sweep key is valid for cache reads but can never take deltas
    swept = client.sweep(matrix=banded(600, 4, 3, seed=5), **SEQ)
    ins = [[0, 599, 1.0]]
    exc = expect_error(lambda: client.delta(swept["key"], inserts=ins), 404)
    assert "registry" in exc.error["message"]


def test_parallel_base_falls_back_but_still_answers(client):
    base = client.advise(matrix=MATRIX, num_threads=8, scale=16)
    ins, del_ = band_edits(MATRIX, [33])
    fb = client.delta(base["key"], inserts=ins, deletes=del_)
    assert fb["ok"], fb
    assert fb["delta"]["path"] == "fallback"
    assert fb["delta"]["reason"] == "threads"
    edited = MatrixDelta.from_dict(
        {"inserts": ins, "deletes": del_}).apply(MATRIX).matrix
    assert fb["result"] == client.advise(matrix=edited,
                                         num_threads=8, scale=16)["result"]


def test_ladder_flags_ride_the_delta(client):
    base = client.advise(matrix=MATRIX, **SEQ)
    ins, del_ = band_edits(MATRIX, [77])
    loose = client.delta(base["key"], inserts=ins, deletes=del_,
                         accuracy=10.0)
    assert loose["ok"], loose
    assert loose["delta"]["path"] == "tier0"
    assert loose["delta"]["reason"] == "drift-within-bound"
    assert loose["fidelity"]["tier"] == 0
    assert loose["fidelity"]["drift"] == loose["delta"]["drift"] > 0


def test_metrics_expose_the_delta_families(client):
    base = client.advise(matrix=MATRIX, **SEQ)
    ins, del_ = band_edits(MATRIX, [123, 456])
    assert client.delta(base["key"], inserts=ins, deletes=del_)["ok"]
    snapshot = client.metrics()["delta"]
    assert snapshot["applied"]["advise"]["incremental"] >= 1
    assert snapshot["fallback"].get("advise", {}).get("threads", 0) >= 0
    drift = snapshot["drift"]
    assert drift["count"] >= 1 and drift["sum_seconds"] >= 0.0
    assert any(v >= 1 for v in drift["buckets"].values())
