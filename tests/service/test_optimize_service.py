"""``POST /optimize`` over the wire: search, cache keys, metrics.

The daemon contract under test: an inline class-3 matrix comes back
with a tier-2-confirmed strictly positive improvement and a fidelity
object proving the screens ran at tiers 0/1; the search config
(strategies, budget, seed, accuracy) is part of the cache key; the
daemon budget cap and the ``max_tier`` flag are 400s; the per-strategy
and improvement metric families surface in ``/metrics``.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import ExperimentSetup
from repro.matrices import banded
from repro.obs import parse_prometheus_text
from repro.optimize import SearchConfig, optimize, optimize_fingerprint
from repro.service import ServiceError, matrix_payload

#: 1/64 machine scale, one CMG: class 3 reachable with small matrices.
SETUP = {"scale": 64, "num_threads": 8}


def shuffled_band():
    base = banded(12_000, 24, 6, seed=3)
    perm = np.random.default_rng(7).permutation(base.num_rows).astype(np.int64)
    return dataclasses.replace(base.permute(perm, perm), name="shuffled_band")


@pytest.fixture(scope="module")
def gated_matrix():
    """Clean band: the tier-0 gate makes its searches nearly free."""
    return banded(2_000, 16, 4, seed=2)


def test_optimize_confirms_a_class3_improvement(client):
    envelope = client.optimize(shuffled_band(), seed=0, **SETUP)
    assert envelope["ok"] and envelope["cached"] is None
    result = envelope["result"]
    confirmation = result["confirmation"]
    assert confirmation["tier"] == 2
    assert confirmation["improvement"] > 0
    assert confirmation["after_misses"] < confirmation["before_misses"]
    assert result["winner"]["label"] != "identity"
    assert sorted(result["winner"]["row_perm"]) == list(range(12_000))


def test_screens_are_cheap_exact_only_at_confirmation(client):
    # rides on the module cache entry warmed by the test above
    envelope = client.optimize(shuffled_band(), seed=0, **SETUP)
    fidelity = envelope["fidelity"]
    assert fidelity["ladder_answers"]["2"] == 2
    assert fidelity["ladder_answers"]["1"] >= 1
    assert not fidelity["gated"]
    # the daemon-wide counters agree: every search pays one tier-0 gate
    # and at most the two confirmation passes at tier 2
    answers = client.metrics()["ladder"]["answers"]["optimize"]
    assert 0 < answers["2"] <= 2 * answers["0"]


def test_search_is_deterministic_across_the_pool(client):
    """The forked worker and an in-process search agree byte for byte."""
    envelope = client.optimize(shuffled_band(), seed=0, **SETUP)
    local = optimize(
        shuffled_band(),
        ExperimentSetup(scale=64, num_threads=8),
        SearchConfig(seed=0),
    ).to_dict()
    # the daemon names inline matrices by content fingerprint; everything
    # else — permutation, trace, confirmation — must match byte for byte
    local["name"] = envelope["result"]["name"]
    assert (optimize_fingerprint(envelope["result"])
            == optimize_fingerprint(local))


def test_cache_round_trip_keeps_fidelity(client, gated_matrix):
    fresh = client.optimize(gated_matrix, **SETUP)
    assert fresh["cached"] is None
    assert fresh["fidelity"]["gated"]
    again = client.optimize(gated_matrix, **SETUP)
    assert again["cached"] == "memory"
    assert again["key"] == fresh["key"]
    assert again["result"] == fresh["result"]
    # fidelity is embedded in the result, so cache hits still carry it
    assert again["fidelity"] == fresh["fidelity"]


def test_search_config_is_part_of_the_key(client, gated_matrix):
    base = client.optimize(gated_matrix, **SETUP)
    seeded = client.optimize(gated_matrix, seed=1, **SETUP)
    budgeted = client.optimize(gated_matrix, budget_seconds=15.0, **SETUP)
    narrowed = client.optimize(gated_matrix, strategies=["identity", "rcm"],
                               **SETUP)
    keys = {base["key"], seeded["key"], budgeted["key"], narrowed["key"]}
    assert len(keys) == 4


def test_strategies_are_canonicalized_in_the_key(client, gated_matrix):
    forward = client.optimize(gated_matrix, strategies=["identity", "rcm"],
                              **SETUP)
    reversed_ = client.optimize(gated_matrix, strategies=["rcm", "identity"],
                                **SETUP)
    assert reversed_["key"] == forward["key"]
    assert reversed_["cached"] == "memory"


def test_budget_above_the_daemon_cap_is_rejected(client, gated_matrix):
    with pytest.raises(ServiceError) as excinfo:
        client.optimize(gated_matrix, budget_seconds=1e6, **SETUP)
    assert excinfo.value.status == 400
    assert "cap" in str(excinfo.value)


def test_max_tier_is_rejected_for_optimize(client, gated_matrix):
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/optimize", {
            "matrix": matrix_payload(gated_matrix),
            "setup": SETUP, "max_tier": 2,
        })
    assert excinfo.value.status == 400
    assert "max_tier" in str(excinfo.value)


def test_unknown_strategy_is_a_400(client, gated_matrix):
    with pytest.raises(ServiceError) as excinfo:
        client.optimize(gated_matrix, strategies=["identity", "bogus"],
                        **SETUP)
    assert excinfo.value.status == 400


def test_metric_families_surface(client, gated_matrix):
    client.optimize(gated_matrix, **SETUP)  # ensure at least one search
    metrics = client.metrics()
    strategies = metrics["optimize"]["strategies"]
    assert strategies["identity"].get("winner", 0) >= 1
    assert metrics["optimize"]["improvement"]["count"] >= 1

    text = client.metrics(format="prometheus")
    families = parse_prometheus_text(text)  # raises on malformed exposition
    assert any(
        labels.get("strategy") == "identity" and value >= 1
        for labels, value in families["repro_optimize_strategies_total"]
    )
    assert "repro_optimize_predicted_improvement_bucket" in families
    assert any(
        value >= 1
        for _, value in families["repro_optimize_predicted_improvement_count"]
    )
