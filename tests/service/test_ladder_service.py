"""Fidelity-ladder flags over the wire: SLOs, caching tiers, metrics.

The daemon contract under test: ``accuracy`` / ``max_tier`` request
flags route evaluation through the ladder and attach a ``fidelity``
object to the envelope; the request key excludes both flags, so ladder
and legacy requests warm the *same* plain cache entry (served to a
ladder request only when the tier-2 bound satisfies its SLO) while
tier-3 answers live under a suffixed key; the per-tier answer counters
and the escalation histogram surface in ``/metrics`` (JSON and
Prometheus).
"""

import pytest

from repro.matrices import banded
from repro.obs.prometheus import parse_prometheus_text
from repro.service import ServiceError, matrix_payload

from .conftest import SETUP

#: Class-1 matrices under the conftest setup (scale 16, 8 threads):
#: tier-0 bound 0.70, tier-2 bound 0.65.
TIER0_SLO = 1.0       # satisfied by tier 0
TIER2_SLO = 0.68      # satisfied by a cached tier-2 answer, not by tier 0
SIM_ONLY_SLO = 0.5    # below every analytic bound: only tier 3 qualifies


def test_loose_slo_is_answered_without_a_stack_pass(client):
    """First ladder request of this daemon: tier 0, no stack pass ever."""
    matrix = banded(620, 20, 5, seed=31)
    envelope = client.predict(matrix, accuracy=TIER0_SLO, **SETUP)
    fidelity = envelope["fidelity"]
    assert fidelity["tier"] == 0
    assert fidelity["slo_met"] is True
    assert fidelity["accuracy_slo"] == TIER0_SLO
    assert fidelity["error_bound"] <= TIER0_SLO
    metrics = client.metrics()
    assert metrics["ladder"]["answers"]["predict"]["0"] >= 1
    phases = metrics["evaluation_phase_seconds"].get("predict", {})
    assert not [k for k in phases if "stack_pass" in k]
    assert any(k.startswith("ladder.tier0") for k in phases)


def test_legacy_and_ladder_requests_share_the_plain_cache_entry(client):
    matrix = banded(640, 22, 5, seed=32)
    legacy = client.predict(matrix, **SETUP)
    assert legacy["cached"] is None
    assert "fidelity" not in legacy
    served = client.predict(matrix, accuracy=TIER2_SLO, **SETUP)
    assert served["key"] == legacy["key"]
    assert served["cached"] == "memory"
    assert served["result"] == legacy["result"]
    fidelity = served["fidelity"]
    assert fidelity["tier"] == 2
    assert fidelity["slo_met"] is True
    assert fidelity["cost_seconds"] == 0.0
    assert fidelity["tiers_tried"] == []


def test_tight_slo_bypasses_the_plain_cache_and_simulates(client):
    matrix = banded(660, 24, 5, seed=33)
    client.predict(matrix, **SETUP)  # warm the plain (tier-2) entry
    first = client.predict(matrix, accuracy=SIM_ONLY_SLO, **SETUP)
    # the cached tier-2 answer's bound cannot satisfy the SLO: evaluate
    assert first["cached"] is None
    assert first["fidelity"]["tier"] == 3
    assert first["fidelity"]["error_bound"] == 0.0
    assert first["fidelity"]["slo_met"] is True
    # the simulated answer is cached under its own (suffixed) key
    second = client.predict(matrix, accuracy=SIM_ONLY_SLO, **SETUP)
    assert second["cached"] == "memory"
    assert second["result"] == first["result"]
    assert second["fidelity"]["tier"] == 3


def test_max_tier_cap_over_the_wire(client):
    matrix = banded(680, 26, 5, seed=34)
    envelope = client.predict(matrix, max_tier=0, **SETUP)
    fidelity = envelope["fidelity"]
    assert fidelity["tier"] == 0
    assert fidelity["accuracy_slo"] is None
    assert fidelity["slo_met"] is True  # no SLO: the cap is the contract
    capped = client.predict(matrix, accuracy=SIM_ONLY_SLO, max_tier=2, **SETUP)
    assert capped["fidelity"]["tier"] == 2
    assert capped["fidelity"]["slo_met"] is False


def test_advise_and_classify_carry_fidelity(client):
    matrix = banded(700, 28, 5, seed=35)
    advised = client.advise(matrix, accuracy=TIER0_SLO, **SETUP)
    assert advised["fidelity"]["tier"] == 0
    assert "best" in advised["result"]
    classified = client.classify(matrix, accuracy=SIM_ONLY_SLO, **SETUP)
    assert classified["fidelity"]["tier"] == 0
    assert classified["fidelity"]["error_bound"] == 0.0
    assert classified["fidelity"]["slo_met"] is True


def test_sweep_rejects_ladder_flags(client):
    matrix = banded(600, 20, 5, seed=36)
    payload = {"matrix": matrix_payload(matrix), "setup": dict(SETUP),
               "accuracy": 0.5}
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/sweep", payload)
    assert excinfo.value.status == 400
    assert "ladder" in excinfo.value.error.get("message", "")


def test_invalid_ladder_flags_are_client_errors(client):
    matrix = banded(600, 20, 5, seed=37)
    for bad in ({"accuracy": -1.0}, {"accuracy": 0.0}, {"max_tier": 4},
                {"max_tier": -1}):
        with pytest.raises(ServiceError) as excinfo:
            client.predict(matrix, **dict(SETUP, **bad))
        assert excinfo.value.status == 400


def test_ladder_metrics_families_in_prometheus(client):
    metrics = client.metrics()
    answers = metrics["ladder"]["answers"]
    assert answers["predict"]["0"] >= 1
    assert answers["predict"]["3"] >= 1
    escalations = metrics["ladder"]["escalations"]
    assert sum(escalations.values()) >= 1
    text = client.metrics(format="prometheus")
    parsed = parse_prometheus_text(text)
    totals = parsed["repro_ladder_answers_total"]
    by_label = {(lbl["endpoint"], lbl["tier"]): v for lbl, v in totals}
    assert by_label[("predict", "0")] >= 1
    buckets = parsed["repro_ladder_escalations_bucket"]
    counts = [v for lbl, v in buckets]
    assert counts == sorted(counts)  # cumulative histogram is monotone
