"""Service observability: the trace flag and Prometheus metrics exposition."""

from repro.obs import parse_prometheus_text, validate_tree

from .conftest import SETUP


def test_trace_flag_round_trips_a_span_tree(client):
    envelope = client.predict(
        name="banded_001", collection="tiny", trace=True, **SETUP
    )
    assert envelope["ok"]
    if envelope["cached"] is None:
        tree = envelope["trace"]
        assert tree is not None
        assert validate_tree(tree) == []
        evaluate, = [r for r in tree["roots"] if r["name"] == "evaluate"]
        assert evaluate["attrs"]["endpoint"] == "predict"
        # the worker's model spans hang under the evaluate root
        names = {c["name"] for c in evaluate["children"]}
        assert "method_b.trace_build" in names
    else:
        # served from cache: trace is best-effort and explicitly null
        assert envelope["trace"] is None


def test_cached_repeat_returns_null_trace(client):
    first = client.classify(name="banded_001", collection="tiny",
                            trace=True, **SETUP)
    second = client.classify(name="banded_001", collection="tiny",
                             trace=True, **SETUP)
    assert second["cached"] in ("memory", "disk", "coalesced")
    assert second["trace"] is None
    assert first["key"] == second["key"], "trace flag must not change the key"


def test_untraced_requests_have_no_trace_field(client):
    envelope = client.classify(name="random_uniform_002", collection="tiny", **SETUP)
    assert envelope["ok"]
    assert "trace" not in envelope


def test_metrics_report_evaluation_phase_seconds(client):
    client.predict(name="diagonal_plus_random_003", collection="tiny", **SETUP)
    snapshot = client.metrics()
    phases = snapshot["evaluation_phase_seconds"]
    assert "predict" in phases
    assert phases["predict"]["evaluate"] >= 0.0


def test_prometheus_exposition_parses_and_matches_json(client):
    client.classify(name="banded_001", collection="tiny", **SETUP)
    text = client.metrics(format="prometheus")
    samples = parse_prometheus_text(text)  # raises on malformed exposition
    assert "repro_uptime_seconds" in samples
    assert "repro_request_latency_seconds_bucket" in samples
    snapshot = client.metrics()
    classify_ok = sum(
        value
        for labels, value in samples["repro_requests_total"]
        if labels == {"endpoint": "classify", "status": "ok"}
    )
    assert classify_ok == snapshot["requests"]["classify"]["ok"]


def test_unknown_metrics_format_is_a_client_error(client):
    from repro.service import ServiceError

    try:
        client.metrics(format="xml")
    except ServiceError as exc:
        assert exc.status == 400
        assert "xml" in str(exc)
    else:
        raise AssertionError("expected a 400 for an unknown format")
