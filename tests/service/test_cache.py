"""Unit tests of the two-tier result cache."""

import json

import pytest

from repro.service.cache import MemoryLRU, TieredResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_lru_hit_and_miss_counting():
    cache = MemoryLRU(max_bytes=1024, ttl_seconds=10, clock=FakeClock())
    assert cache.get("a") is None
    cache.put("a", b"payload")
    assert cache.get("a") == b"payload"
    assert cache.hits == 1 and cache.misses == 1


def test_lru_ttl_expiry():
    clock = FakeClock()
    cache = MemoryLRU(max_bytes=1024, ttl_seconds=5, clock=clock)
    cache.put("a", b"x")
    clock.advance(4.9)
    assert cache.get("a") == b"x"
    clock.advance(0.2)
    assert cache.get("a") is None
    assert cache.expirations == 1
    assert len(cache) == 0


def test_lru_byte_budget_evicts_oldest_first():
    cache = MemoryLRU(max_bytes=30, ttl_seconds=60, clock=FakeClock())
    cache.put("a", b"0123456789")
    cache.put("b", b"0123456789")
    cache.put("c", b"0123456789")
    assert len(cache) == 3 and cache.current_bytes == 30
    cache.put("d", b"0123456789")  # exceeds budget -> 'a' goes
    assert cache.get("a") is None
    assert cache.get("d") == b"0123456789"
    assert cache.evictions == 1


def test_lru_recent_use_protects_from_eviction():
    cache = MemoryLRU(max_bytes=20, ttl_seconds=60, clock=FakeClock())
    cache.put("a", b"0123456789")
    cache.put("b", b"0123456789")
    assert cache.get("a") is not None  # touch: 'a' becomes most recent
    cache.put("c", b"0123456789")  # now 'b' is the LRU victim
    assert cache.get("b") is None
    assert cache.get("a") is not None


def test_lru_oversized_entry_is_not_admitted():
    cache = MemoryLRU(max_bytes=5, ttl_seconds=60, clock=FakeClock())
    cache.put("big", b"0123456789")
    assert cache.get("big") is None
    assert cache.current_bytes == 0


def test_lru_overwrite_replaces_bytes():
    cache = MemoryLRU(max_bytes=100, ttl_seconds=60, clock=FakeClock())
    cache.put("a", b"0123456789")
    cache.put("a", b"01234")
    assert cache.current_bytes == 5
    assert cache.get("a") == b"01234"


def test_lru_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MemoryLRU(max_bytes=-1)
    with pytest.raises(ValueError):
        MemoryLRU(ttl_seconds=0)


def test_tiered_disk_hit_promotes_to_memory(tmp_path):
    cache = TieredResultCache(tmp_path, max_bytes=1024, ttl_seconds=60)
    disk_path = tmp_path / "k.advise.json"
    payload = {"answer": 42}
    cache.put("k", json.dumps(payload).encode(), disk_path)
    assert disk_path.exists()

    # a fresh instance has a cold memory tier but sees the disk record
    fresh = TieredResultCache(tmp_path, max_bytes=1024, ttl_seconds=60)
    result, tier = fresh.get("k", disk_path)
    assert result == payload and tier == "disk"
    fresh.promote("k", json.dumps(result).encode())
    result, tier = fresh.get("k", disk_path)
    assert tier == "memory"
    stats = fresh.stats()
    assert stats["disk"]["hits"] == 1
    assert stats["memory"]["hits"] == 1


def test_tiered_disk_text_override(tmp_path):
    cache = TieredResultCache(tmp_path, max_bytes=1024, ttl_seconds=60)
    disk_path = tmp_path / "rec.json"
    cache.put("k", b'{"b":1,"a":2}', disk_path, disk_text='{"a": 2, "b": 1}')
    assert disk_path.read_text() == '{"a": 2, "b": 1}'


def test_tiered_without_disk_dir(tmp_path):
    cache = TieredResultCache(None)
    cache.put("k", b'{"x":1}', tmp_path / "ignored.json")
    assert not (tmp_path / "ignored.json").exists()
    result, tier = cache.get("k", None)
    assert result == {"x": 1} and tier == "memory"
    assert cache.stats()["disk"]["enabled"] is False
