"""Distributed trace-context edge cases at the replica daemon.

Satellite invariants pinned here: a caller's context is adopted (same
trace id) while every hop mints a fresh span id — the fork worker never
reuses the daemon's; cache hits mark their serving tier in the recorded
spans instead of fabricating evaluation spans; the ``X-Repro-Trace``
header is a fallback the explicit JSON ``trace_context`` always beats.
"""

import pytest

from repro.obs.context import TraceContext
from repro.service import ServiceClient, ServiceError

from .conftest import SETUP


def _roots(envelope):
    return {root["name"]: root for root in envelope["trace"]["roots"]}


def _fresh_traced(client, **kwargs):
    """One traced request guaranteed fresh (skip if racing a cache)."""
    envelope = client.predict(trace=True, **kwargs, **SETUP)
    assert envelope["ok"]
    if envelope["cached"] is not None:
        pytest.skip("answer already cached; freshness needed here")
    return envelope


def test_adopted_context_spans_share_the_callers_trace_id(server):
    host, port = server.address
    caller = TraceContext.new()
    client = ServiceClient(host, port, timeout=120.0, trace_context=caller)
    envelope = _fresh_traced(client, name="stencil_2d_004", collection="tiny")
    roots = _roots(envelope)
    request, evaluate = roots["service.request"], roots["evaluate"]
    # one trace id across daemon and fork worker, rooted at the caller
    assert request["attrs"]["trace_id"] == caller.trace_id
    assert evaluate["attrs"]["trace_id"] == caller.trace_id
    assert request["attrs"]["parent_span_id"] == caller.span_id


def test_fork_worker_mints_its_own_span_id(server):
    host, port = server.address
    client = ServiceClient(host, port, timeout=120.0,
                           trace_context=TraceContext.new())
    envelope = _fresh_traced(client, name="stencil_2d_005",
                             collection="tiny")
    roots = _roots(envelope)
    request, evaluate = roots["service.request"], roots["evaluate"]
    daemon_span = request["attrs"]["span_id"]
    assert evaluate["attrs"]["span_id"] != daemon_span, \
        "a reused span id would alias two different spans"
    assert evaluate["attrs"]["parent_span_id"] == daemon_span


def test_explicit_json_trace_context_beats_the_header(client, server):
    host, port = server.address
    header_ctx = TraceContext.new()
    body_ctx = TraceContext.new()
    headered = ServiceClient(host, port, timeout=120.0,
                             trace_context=header_ctx)
    envelope = headered.request("POST", "/predict", {
        "matrix": {"name": "diagonal_plus_random_006", "collection": "tiny"},
        "setup": SETUP, "trace": True,
        "trace_context": body_ctx.to_dict(),
    })
    assert envelope["ok"]
    if envelope["cached"] is None:
        attrs = _roots(envelope)["service.request"]["attrs"]
        assert attrs["trace_id"] == body_ctx.trace_id
        assert attrs["parent_span_id"] == body_ctx.span_id


def test_malformed_trace_context_is_a_client_error(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/classify", {
            "matrix": {"name": "stencil_2d_004", "collection": "tiny"},
            "setup": SETUP,
            "trace_context": {"trace_id": "nope", "span_id": "also nope"},
        })
    assert excinfo.value.status == 400
    assert "trace_context" in str(excinfo.value)


def test_trace_context_does_not_change_the_request_key(client, server):
    host, port = server.address
    plain = client.classify(name="power_law_007", collection="tiny", **SETUP)
    routed = ServiceClient(host, port, timeout=120.0,
                           trace_context=TraceContext.new())
    again = routed.classify(name="power_law_007", collection="tiny", **SETUP)
    assert plain["key"] == again["key"]
    assert again["cached"] in ("memory", "disk", "coalesced")


def test_cached_hits_mark_the_tier_instead_of_fabricating_spans(client):
    first = client.predict(name="banded_001", collection="tiny",
                           trace=True, **SETUP)
    second = client.predict(name="banded_001", collection="tiny",
                            trace=True, **SETUP)
    assert second["cached"] in ("memory", "disk")
    # the envelope trace is explicitly null — nothing was evaluated ...
    assert second["trace"] is None
    # ... and the recorded /debug/traces entry keeps this hop's spans
    # with the serving tier marked, but no evaluate span
    debug = client.request("GET", "/debug/traces?endpoint=predict")
    by_status = [entry for entry in debug["traces"]
                 if entry["tree"] is not None]
    cached_trees = []
    for entry in by_status:
        for root in entry["tree"]["roots"]:
            lookups = [c for c in root["children"]
                       if c["name"] == "cache.lookup"]
            if lookups and lookups[0]["attrs"].get("tier") in ("memory",
                                                               "disk"):
                cached_trees.append(root)
    assert cached_trees, "cached traced request must be recorded"
    for root in cached_trees:
        names = {c["name"] for c in root["children"]}
        assert "pool.evaluate" not in names and "evaluate" not in names
    assert first["ok"]


def test_debug_traces_endpoint_shape_and_limit_validation(client):
    client.predict(name="stencil_2d_004", collection="tiny", trace=True, **SETUP)
    debug = client.request("GET", "/debug/traces?limit=2")
    assert debug["ok"]
    assert set(debug) >= {"capacity", "recorded", "dropped", "in_flight",
                          "traces"}
    assert len(debug["traces"]) <= 2
    assert all(len(e["trace_id"]) == 32 for e in debug["traces"])
    with pytest.raises(ServiceError) as excinfo:
        client.request("GET", "/debug/traces?limit=banana")
    assert excinfo.value.status == 400
