"""Shared fixtures: one in-process daemon per test module."""

import pytest

from repro.service import ServiceClient, ServiceConfig, ServiceThread

#: Small setup used throughout: modest thread count keeps MethodB traces tiny.
SETUP = {"num_threads": 8}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A running daemon (2 pool workers, fault-injection hooks enabled)."""
    cache_dir = tmp_path_factory.mktemp("service_cache")
    thread = ServiceThread(
        ServiceConfig(jobs=2, cache_dir=str(cache_dir), test_hooks=True)
    )
    host, port = thread.start()
    yield thread
    thread.stop()


@pytest.fixture(scope="module")
def client(server):
    host, port = server.address
    return ServiceClient(host, port, timeout=120.0)
