"""Method B: colidx-only approximation vs. method A and its analytics."""

import pytest

from repro.core import MethodA, MethodB, stream_misses
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform
from repro.spmv import CSRMatrix, listing1_policy, no_sector_cache
import numpy as np

MACHINE = scaled_machine(16)


def test_class2_prediction_is_pure_stream_count():
    # vectors fit partition 0: method B predicts exactly the matrix stream
    matrix = banded(3_000, 60, 40, seed=1)
    model = MethodB(matrix, MACHINE, num_threads=1)
    pred = model.predict(listing1_policy(5))
    streams = stream_misses(matrix, MACHINE.line_size)
    assert pred.per_array["values"] == streams.values
    assert pred.per_array["colidx"] == streams.colidx
    assert "rowptr" not in pred.per_array
    assert pred.per_array.get("x", 0) == 0


def test_unpartitioned_class_not1_adds_vector_streams():
    matrix = banded(3_000, 60, 40, seed=1)
    model = MethodB(matrix, MACHINE, num_threads=1)
    pred = model.predict(no_sector_cache())
    streams = stream_misses(matrix, MACHINE.line_size)
    assert pred.l2_misses >= streams.total


def test_class1_unpartitioned_predicts_zero():
    matrix = banded(300, 10, 8, seed=0)
    model = MethodB(matrix, MACHINE, num_threads=1)
    assert model.predict(no_sector_cache()).l2_misses == 0


def test_b_close_to_a_for_regular_matrices():
    # mu_K >= 8, CV_K ~ 0: the regime where the paper finds B accurate
    matrix = banded(4_000, 100, 30, seed=2)
    policy = listing1_policy(5)
    a = MethodA(matrix, MACHINE, num_threads=1).predict(policy).l2_misses
    b = MethodB(matrix, MACHINE, num_threads=1).predict(policy).l2_misses
    assert a > 0
    assert abs(a - b) / a < 0.15


def test_b_single_pass_covers_all_way_splits():
    matrix = random_uniform(20_000, 8, seed=3)
    model = MethodB(matrix, MACHINE, num_threads=1)
    predictions = [model.predict(listing1_policy(w)).l2_misses for w in range(2, 8)]
    # larger sector 1 shrinks partition 0: x misses must not decrease
    assert all(b >= a for a, b in zip(predictions, predictions[1:]))


def test_empty_matrix_rejected():
    empty = CSRMatrix(2, 2, np.zeros(3, dtype=np.int64), np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        MethodB(empty, MACHINE)


def test_parallel_b_uses_all_cmgs():
    matrix = random_uniform(20_000, 8, seed=4)
    model = MethodB(matrix, MACHINE, num_threads=48)
    assert model.num_cmgs_used == 4
    assert model.predict(listing1_policy(5)).l2_misses > 0


def test_l1_prediction_counts_all_streams():
    matrix = random_uniform(5_000, 6, seed=5)
    model = MethodB(matrix, MACHINE, num_threads=1)
    pred = model.predict_l1(no_sector_cache())
    streams = stream_misses(matrix, MACHINE.line_size)
    assert pred.l2_misses >= streams.total
