"""MemoryLayout: cache-line assignment (paper Fig. 1c)."""

import numpy as np
import pytest

from repro.core import MemoryLayout
from repro.spmv import CSRMatrix


def figure1_matrix() -> CSRMatrix:
    rows = np.array([0, 0, 1, 2, 2, 3, 3])
    cols = np.array([1, 2, 0, 2, 3, 1, 3])
    return CSRMatrix.from_coo(4, 4, rows, cols)


def test_figure1c_line_assignment():
    # the worked example: 16-byte lines, arrays x, y, a, colidx, rowptr
    layout = MemoryLayout.for_matrix(figure1_matrix(), 16)
    assert layout.lines_of("x", np.arange(4)).tolist() == [0, 0, 1, 1]
    assert layout.lines_of("y", np.arange(4)).tolist() == [2, 2, 3, 3]
    assert layout.lines_of("values", np.arange(7)).tolist() == [4, 4, 5, 5, 6, 6, 7]
    assert layout.lines_of("colidx", np.arange(7)).tolist() == [8, 8, 8, 8, 9, 9, 9]
    assert layout.lines_of("rowptr", np.arange(5)).tolist() == [10, 10, 11, 11, 12]
    assert layout.total_lines == 13


def test_arrays_never_share_lines():
    layout = MemoryLayout.for_matrix(figure1_matrix(), 16)
    seen = set()
    for array, count in [("x", 4), ("y", 4), ("values", 7), ("colidx", 7), ("rowptr", 5)]:
        lines = set(layout.lines_of(array, np.arange(count)).tolist())
        assert not lines & seen
        seen |= lines


def test_element_out_of_range_rejected():
    layout = MemoryLayout.for_matrix(figure1_matrix(), 16)
    with pytest.raises(ValueError):
        layout.lines_of("x", np.array([4]))
    with pytest.raises(ValueError):
        layout.lines_of("x", np.array([-1]))


def test_array_of_line_inverts_lines_of():
    layout = MemoryLayout.for_matrix(figure1_matrix(), 16)
    assert layout.array_of_line(0) == "x"
    assert layout.array_of_line(4) == "values"
    assert layout.array_of_line(12) == "rowptr"
    with pytest.raises(ValueError):
        layout.array_of_line(13)


def test_a64fx_line_size():
    m = figure1_matrix()
    layout = MemoryLayout.for_matrix(m, 256)
    # everything tiny: one line per array
    assert layout.total_lines == 5


def test_bad_line_size_rejected():
    with pytest.raises(ValueError):
        MemoryLayout.for_matrix(figure1_matrix(), 0)
