"""Closed-form streaming-miss counts and method-B scale factors."""

import pytest

from repro.core import method_b_scale_factors, stream_misses
from repro.matrices import banded
from repro.spmv import CSRMatrix
import numpy as np


def test_stream_misses_match_paper_formulas():
    m = banded(1_000, 20, 10, seed=0)
    s = stream_misses(m, 256)
    K, M = m.nnz, m.num_rows
    assert s.values == -(-8 * K // 256)
    assert s.colidx == -(-4 * K // 256)
    assert s.rowptr == -(-8 * (M + 1) // 256)
    assert s.y == -(-8 * M // 256)
    assert s.matrix_data == s.values + s.colidx
    assert s.vectors == s.rowptr + s.y
    assert s.total == s.matrix_data + s.vectors


def test_stream_misses_ceiling_behaviour():
    # one nonzero still occupies one full line of each matrix array
    m = CSRMatrix.from_coo(1, 1, np.array([0]), np.array([0]))
    s = stream_misses(m, 256)
    assert s.values == 1 and s.colidx == 1 and s.rowptr == 1 and s.y == 1


def test_stream_misses_rejects_bad_line_size():
    m = banded(10, 2, 2, seed=0)
    with pytest.raises(ValueError):
        stream_misses(m, 0)


def test_scale_factors_formulas():
    m = banded(1_000, 20, 10, seed=0)
    s1, s2 = method_b_scale_factors(m)
    ratio = m.num_rows / m.nnz
    assert s1 == pytest.approx((16 * ratio + 8) / 8)
    assert s2 == pytest.approx((16 * ratio + 20) / 8)
    assert s2 > s1 > 1.0


def test_scale_factors_many_nonzeros_per_row_approach_limits():
    # K >> M: s1 -> 1 (x effectively alone in its partition), s2 -> 2.5
    m = banded(100, 90, 180, seed=0)
    s1, s2 = method_b_scale_factors(m)
    assert s1 == pytest.approx(1.0, abs=0.1)
    assert s2 == pytest.approx(2.5, abs=0.1)


def test_scale_factors_empty_matrix_rejected():
    m = CSRMatrix(2, 2, np.zeros(3, dtype=np.int64), np.empty(0), np.empty(0))
    with pytest.raises(ValueError):
        method_b_scale_factors(m)
