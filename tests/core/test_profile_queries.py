"""Profile-backed policy queries vs. the full-trace mask sweep.

The O(log n) query layer (per-array ReuseProfiles over the steady-state
window) must reproduce the original O(n) boolean-mask evaluation
bit-for-bit: same total misses, same per-array breakdown, for every
grouping (L2 shared, L2 partitioned, L1 private, L1 partitioned), policy
and way split.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheMissModel, MethodA
from repro.core.method_b import MethodB
from repro.machine import scaled_machine
from repro.matrices import banded, power_law, random_uniform
from repro.reuse import ReuseProfile, scale_distances
from repro.spmv import SectorPolicy, listing1_policy, no_sector_cache

MACHINE = scaled_machine(16)


def _policy(l2w: int, l1w: int) -> SectorPolicy:
    if l2w == 0 and l1w == 0:
        return no_sector_cache()
    return SectorPolicy(l2_sector1_ways=l2w, l1_sector1_ways=l1w)


def _matrix(family: int, n: int, npr: int, seed: int):
    if family == 0:
        return random_uniform(n, npr, seed=seed)
    if family == 1:
        return banded(n, max(2, n // 10), npr, seed=seed)
    return power_law(n, float(npr), 2.0, seed=seed)


@settings(max_examples=20, deadline=None)
@given(
    family=st.integers(0, 2),
    n=st.integers(50, 400),
    npr=st.integers(1, 10),
    seed=st.integers(0, 2**16),
    l2w=st.sampled_from([0, 2, 3, 4, 5, 6, 7]),
    l1w=st.sampled_from([0, 1, 2, 3]),
    threads=st.sampled_from([1, 4, 12]),
)
def test_predict_matches_full_mask(family, n, npr, seed, l2w, l1w, threads):
    matrix = _matrix(family, n, npr, seed)
    model = MethodA(matrix, MACHINE, num_threads=threads)
    policy = _policy(l2w, l1w)

    fast, slow = model.predict(policy), model._predict_masked(policy)
    assert fast.l2_misses == slow.l2_misses
    assert fast.per_array == slow.per_array

    fast, slow = model.predict_l1(policy), model._predict_l1_masked(policy)
    assert fast.l2_misses == slow.l2_misses
    assert fast.per_array == slow.per_array


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(100, 500),
    npr=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_cold_misses_match_full_mask(n, npr, seed):
    matrix = random_uniform(n, npr, seed=seed)
    model = MethodA(matrix, MACHINE, num_threads=1)
    assert model.cold_misses() == model._cold_misses_masked()


def test_way_sweep_matches_mask_for_all_splits():
    matrix = banded(2_000, 80, 12, seed=7)
    model = MethodA(matrix, MACHINE, num_threads=48)
    for l2w in (0, 2, 3, 4, 5, 6, 7):
        for l1w in (0, 1, 2, 3):
            policy = _policy(l2w, l1w)
            assert model.predict(policy).per_array == model._predict_masked(policy).per_array
            assert (
                model.predict_l1(policy).per_array
                == model._predict_l1_masked(policy).per_array
            )


def test_method_b_profile_cache_matches_direct_computation():
    matrix = random_uniform(3_000, 6, seed=11)
    model = MethodB(matrix, MACHINE, num_threads=8)
    for scale in (1.0, model.s1, model.s2):
        for capacity in (0, 16, 256, MACHINE.l2.capacity_lines):
            # periodic models use the whole period (window is None)
            windowed = (
                model._x_rd if model._window is None else model._x_rd[model._window]
            )
            direct = ReuseProfile.from_distances(
                scale_distances(windowed, scale)
            ).misses(capacity)
            assert model.x_misses(scale, capacity) == direct
    # repeated queries hit the materialized profile, not a fresh sort
    assert len(model._profile_cache) == 3


def test_facade_sweep_matches_individual_predictions():
    matrix = random_uniform(1_500, 5, seed=3)
    model = CacheMissModel(matrix, MACHINE, num_threads=8)
    policies = [_policy(l2w, 0) for l2w in (0, 2, 5, 7)]
    for method in ("A", "B"):
        swept = model.sweep(policies, method)
        single = [model.predict(p, method) for p in policies]
        assert [p.l2_misses for p in swept] == [p.l2_misses for p in single]
    swept_l1 = model.sweep_l1(policies, "A")
    assert [p.l2_misses for p in swept_l1] == [
        model.predict_l1(p, "A").l2_misses for p in policies
    ]


def test_profiles_cover_whole_window():
    # every steady-state reference lands in exactly one per-array bucket
    matrix = random_uniform(800, 4, seed=5)
    model = MethodA(matrix, MACHINE, num_threads=4)
    total = sum(p.num_accesses for p in model._profiles_shared)
    window_size = (
        len(model.trace)
        if model._window is None
        else int(np.count_nonzero(model._window))
    )
    assert total == window_size
