"""SpMV trace generation (paper Fig. 1b) and trace utilities."""

import numpy as np
import pytest

from repro.core import ARRAY_ID, MemoryLayout, repeat_trace, spmv_trace, x_only_trace
from repro.core.trace import spmv_thread_trace
from repro.spmv import CSRMatrix, listing1_policy, static_schedule


def figure1_matrix() -> CSRMatrix:
    rows = np.array([0, 0, 1, 2, 2, 3, 3])
    cols = np.array([1, 2, 0, 2, 3, 1, 3])
    return CSRMatrix.from_coo(4, 4, rows, cols)


def test_figure1_access_pattern():
    m = figure1_matrix()
    layout = MemoryLayout.for_matrix(m, 16)
    trace = spmv_trace(m, layout)[0]
    expected = [
        10, 4, 8, 0, 4, 8, 1, 2,  # row 0: rowptr, (a, col, x)*2, y
        10, 5, 8, 0, 2,           # row 1
        11, 5, 8, 1, 6, 9, 1, 3,  # row 2
        11, 6, 9, 0, 7, 9, 1, 3,  # row 3
        12,                       # final rowptr bound
    ]
    assert trace.lines.tolist() == expected


def test_trace_length_formula():
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    assert len(trace) == 2 * m.num_rows + 3 * m.nnz + 1


def test_trace_array_tags():
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    counts = {
        name: int(np.count_nonzero(trace.arrays == aid))
        for name, aid in ARRAY_ID.items()
    }
    assert counts == {
        "x": m.nnz,
        "values": m.nnz,
        "colidx": m.nnz,
        "y": m.num_rows,
        "rowptr": m.num_rows + 1,
    }


def test_threaded_traces_cover_all_rows():
    m = figure1_matrix()
    sched = static_schedule(m, 2)
    traces = spmv_trace(m, schedule=sched)
    assert all(np.all(t.threads == i) for i, t in enumerate(traces))
    total = sum(len(t) for t in traces)
    # each thread also reads its final row bound
    assert total == 2 * m.num_rows + 3 * m.nnz + 2


def test_empty_thread_range():
    m = figure1_matrix()
    layout = MemoryLayout.for_matrix(m, 16)
    trace = spmv_thread_trace(m, layout, 0, 2, 2)
    assert len(trace) == 0


def test_invalid_row_range_rejected():
    m = figure1_matrix()
    layout = MemoryLayout.for_matrix(m, 16)
    with pytest.raises(ValueError):
        spmv_thread_trace(m, layout, 0, 3, 2)
    with pytest.raises(ValueError):
        spmv_thread_trace(m, layout, 0, 0, 5)


def test_sectors_follow_policy():
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    sectors = trace.sectors(listing1_policy(2))
    matrix_refs = trace.array_mask("values", "colidx")
    assert np.all(sectors[matrix_refs] == 1)
    assert np.all(sectors[~matrix_refs] == 0)


def test_x_only_trace_matches_colidx_lines():
    m = figure1_matrix()
    layout = MemoryLayout.for_matrix(m, 16)
    xo = x_only_trace(m, layout)[0]
    assert len(xo) == m.nnz
    expected = layout.lines_of("x", m.colidx)
    np.testing.assert_array_equal(xo.lines, expected)


def test_repeat_trace_numbers_iterations():
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    doubled = repeat_trace(trace, 3)
    assert len(doubled) == 3 * len(trace)
    assert doubled.iteration.tolist() == [0] * len(trace) + [1] * len(trace) + [2] * len(trace)
    np.testing.assert_array_equal(doubled.lines[: len(trace)], trace.lines)
    with pytest.raises(ValueError):
        repeat_trace(trace, 0)


def test_repeat_trace_iteration_survives_many_iterations():
    # regression: iteration was int8 and silently overflowed past 127
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    many = repeat_trace(trace, 300)
    assert many.iteration.dtype == np.int32
    assert int(many.iteration.min()) == 0
    assert int(many.iteration.max()) == 299
    # the steady-state window selector stays well-defined
    assert int(np.count_nonzero(many.iteration == 299)) == len(trace)


def test_select_and_reorder_preserve_alignment():
    m = figure1_matrix()
    trace = spmv_trace(m)[0]
    mask = trace.array_mask("x")
    sub = trace.select(mask)
    assert np.all(sub.arrays == ARRAY_ID["x"])
    rev = trace.reorder(np.arange(len(trace))[::-1])
    assert rev.lines[0] == trace.lines[-1]
    assert rev.arrays[0] == trace.arrays[-1]
