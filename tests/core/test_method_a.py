"""Method A: full-trace model vs. brute-force LRU partition simulation."""

import numpy as np
import pytest

from repro.core import MethodA, repeat_trace, spmv_trace
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform
from repro.reuse import reuse_distances_naive
from repro.spmv import listing1_policy, no_sector_cache

MACHINE = scaled_machine(16)


def brute_force_misses(matrix, machine, sector1_ways, iterations=2):
    """Fully associative LRU partitions simulated with the naive stack."""
    trace = repeat_trace(spmv_trace(matrix, line_size=machine.line_size)[0], iterations)
    sectors = trace.sectors(listing1_policy(max(sector1_ways, 1)))
    n0, n1 = machine.l2.partition_lines(sector1_ways)
    if sector1_ways == 0:
        rd = reuse_distances_naive(trace.lines)
        capacity = np.full(len(trace), machine.l2.capacity_lines)
    else:
        rd = reuse_distances_naive(trace.lines, sectors.astype(np.int64))
        capacity = np.where(sectors == 1, n1, n0)
    window = trace.iteration == iterations - 1
    return int(np.count_nonzero((rd >= capacity) & window))


@pytest.mark.parametrize("ways", [0, 2, 5])
def test_method_a_matches_brute_force_sequential(ways):
    matrix = random_uniform(600, 6, seed=0)
    model = MethodA(matrix, MACHINE, num_threads=1)
    policy = no_sector_cache() if ways == 0 else listing1_policy(ways)
    assert model.predict(policy).l2_misses == brute_force_misses(matrix, MACHINE, ways)


def test_partitioning_cannot_increase_matrix_data_misses():
    # values/colidx stream regardless: their misses equal the stream count
    matrix = banded(3_000, 60, 40, seed=1)
    model = MethodA(matrix, MACHINE, num_threads=1)
    base = model.predict(no_sector_cache())
    part = model.predict(listing1_policy(5))
    assert part.per_array["values"] == base.per_array["values"]
    assert part.per_array["colidx"] == base.per_array["colidx"]


def test_class2_partitioning_removes_vector_misses():
    # matrix streams, vectors fit partition 0: the class-2 win of Section 3.1
    matrix = banded(3_000, 60, 40, seed=1)
    model = MethodA(matrix, MACHINE, num_threads=1)
    base = model.predict(no_sector_cache())
    part = model.predict(listing1_policy(5))
    assert part.l2_misses < base.l2_misses
    assert part.per_array.get("y", 0) == 0
    assert part.per_array.get("rowptr", 0) == 0
    assert part.per_array.get("x", 0) == 0


def test_parallel_model_covers_all_cmgs():
    matrix = random_uniform(24_000, 8, seed=2)
    model = MethodA(matrix, MACHINE, num_threads=48)
    assert model.num_cmgs_used == 4
    pred = model.predict(no_sector_cache())
    assert pred.l2_misses > 0


def test_policy_validation():
    matrix = banded(200, 5, 4, seed=0)
    model = MethodA(matrix, MACHINE, num_threads=1)
    with pytest.raises(ValueError):
        model.predict(listing1_policy(16))
    with pytest.raises(ValueError):
        MethodA(matrix, MACHINE, num_threads=1000)
    with pytest.raises(ValueError):
        MethodA(matrix, MACHINE, iterations=0)


def test_l1_prediction_is_larger_than_l2():
    matrix = random_uniform(2_000, 8, seed=3)
    model = MethodA(matrix, MACHINE, num_threads=4)
    l1 = model.predict_l1(no_sector_cache()).l2_misses
    l2 = model.predict(no_sector_cache()).l2_misses
    assert l1 >= l2  # the smaller cache can only miss more


def test_cold_misses_counts_distinct_lines():
    matrix = banded(500, 10, 8, seed=4)
    model = MethodA(matrix, MACHINE, num_threads=1)
    trace = spmv_trace(matrix, line_size=MACHINE.line_size)[0]
    assert model.cold_misses() == len(np.unique(trace.lines))


def test_x_traffic_fraction_bounds():
    matrix = random_uniform(3_000, 4, seed=5)
    model = MethodA(matrix, MACHINE, num_threads=1)
    frac = model.x_traffic_fraction(no_sector_cache())
    assert 0.0 <= frac <= 1.0
