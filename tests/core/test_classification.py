"""Matrix classification by working-set size (Section 3.1)."""

import numpy as np
import pytest

from repro.core import MatrixClass, classify, reusable_bytes, working_set_bytes
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform
from repro.spmv import CSRMatrix


MACHINE = scaled_machine(16)  # 512 KiB segments, 5-way partition0 = 352 KiB


def test_tiny_matrix_is_class1():
    m = banded(500, 10, 8, seed=0)
    assert classify(m, MACHINE, 5) is MatrixClass.CLASS1


def test_streaming_matrix_is_class2():
    # small vectors, lots of matrix data: doesn't fit, but x+y+rowptr do
    m = banded(2_000, 50, 60, seed=0)
    assert working_set_bytes(m) > MACHINE.l2.capacity_bytes
    assert classify(m, MACHINE, 5) is MatrixClass.CLASS2


def test_large_x_is_class3a():
    # reusable data exceeds partition 0, x alone fits
    n0_bytes = MACHINE.l2.partition_lines(5)[0] * MACHINE.line_size
    n = int(n0_bytes / 8 * 0.9)  # x at 90 % of partition 0
    m = random_uniform(n, 5, seed=1)
    assert reusable_bytes(m) > n0_bytes
    assert classify(m, MACHINE, 5) is MatrixClass.CLASS3A


def test_huge_x_is_class3b():
    n0_bytes = MACHINE.l2.partition_lines(5)[0] * MACHINE.line_size
    n = int(n0_bytes / 8 * 3)
    m = random_uniform(n, 4, seed=1)
    assert classify(m, MACHINE, 5) is MatrixClass.CLASS3B


def test_parallel_classification_divides_row_arrays():
    # y/rowptr split across CMGs can move a matrix from 3a back to 2
    n0_bytes = MACHINE.l2.partition_lines(5)[0] * MACHINE.line_size
    # sequential reusable = 24n (x+y+rowptr); parallel = 12n (x + rest/4)
    n = int(n0_bytes / 24 * 1.3)
    m = random_uniform(n, 10, seed=2)
    sequential = classify(m, MACHINE, 5, num_cmgs=1)
    parallel = classify(m, MACHINE, 5, num_cmgs=4)
    assert sequential is MatrixClass.CLASS3A
    assert parallel in (MatrixClass.CLASS1, MatrixClass.CLASS2)


def test_more_sector1_ways_shrink_partition0():
    # a matrix whose reusable data fits a 2-way-split partition but not a
    # 7-way split
    n0_2 = MACHINE.l2.partition_lines(2)[0] * MACHINE.line_size
    n0_7 = MACHINE.l2.partition_lines(7)[0] * MACHINE.line_size
    n = int((n0_2 + n0_7) / 2 / 24)
    m = random_uniform(n, 40, seed=3)
    assert classify(m, MACHINE, 2) is MatrixClass.CLASS2
    assert classify(m, MACHINE, 7) in (MatrixClass.CLASS3A, MatrixClass.CLASS3B)


def test_working_set_and_reusable_bytes_formulas():
    m = banded(1_000, 10, 10, seed=0)
    assert reusable_bytes(m, 1) == m.x_bytes + m.y_bytes + m.rowptr_bytes
    assert working_set_bytes(m, 1) == pytest.approx(m.total_bytes, abs=8)
    assert reusable_bytes(m, 4) < reusable_bytes(m, 1)


def test_invalid_cmg_count_rejected():
    m = banded(100, 5, 4, seed=0)
    with pytest.raises(ValueError):
        reusable_bytes(m, 0)


def test_class_enum_labels_match_paper():
    assert str(MatrixClass.CLASS3A) == "class (3a)"
    assert MatrixClass.CLASS2.value == "2"
