"""Sector-policy advisor behaviour by matrix class."""

import pytest

from repro.core import MatrixClass
from repro.core.advisor import Recommendation, SectorAdvisor
from repro.machine import scaled_machine
from repro.matrices import banded, diagonal_plus_random, random_uniform

MACHINE = scaled_machine(16)


@pytest.fixture(scope="module")
def advisor():
    return SectorAdvisor(MACHINE)


def test_class1_recommends_disabled(advisor):
    rec = advisor.recommend(banded(500, 5, 4, seed=0))
    assert rec.matrix_class is MatrixClass.CLASS1
    assert not rec.worthwhile
    assert not rec.best.policy.l2_enabled
    assert "disabled" in rec.summary()


def test_class2_recommends_listing1(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    assert rec.matrix_class is MatrixClass.CLASS2
    assert rec.worthwhile
    assert rec.best.policy.sector_of("values") == 1
    assert rec.best.policy.sector_of("x") == 0
    assert rec.predicted_speedup >= 1.0


def test_class3a_recommends_sector_cache(advisor):
    # x misses in L1 but still fits the L2 sector: protecting the matrix
    # data pays off, without needing the isolate-x fallback
    rec = advisor.recommend(diagonal_plus_random(38_000, 5, 2, bandwidth=500, seed=3))
    assert rec.matrix_class is MatrixClass.CLASS3A
    assert rec.worthwhile
    assert rec.best.policy.l2_enabled
    assert rec.best.policy.sector_of("x") == 0


def test_class3b_considers_isolate_x(advisor):
    rec = advisor.recommend(random_uniform(140_000, 3, seed=1))
    assert rec.matrix_class is MatrixClass.CLASS3B
    policies = {c.policy.describe() for c in rec.candidates}
    assert any("rowptr" in p for p in policies), "isolate-x variant missing"


@pytest.mark.parametrize("matrix_builder", [
    lambda: banded(500, 5, 4, seed=0),                                # class 1
    lambda: banded(26_000, 2_500, 11, seed=3),                        # class 2
    lambda: diagonal_plus_random(38_000, 5, 2, bandwidth=500, seed=3),  # class 3a
    lambda: random_uniform(140_000, 3, seed=1),                       # class 3b
])
def test_recommendation_round_trips_through_dict(advisor, matrix_builder):
    rec = advisor.recommend(matrix_builder())
    payload = rec.to_dict()
    rebuilt = Recommendation.from_dict(payload)
    assert rebuilt == rec
    assert payload["predicted_speedup"] == rec.predicted_speedup
    assert payload["worthwhile"] == rec.worthwhile
    assert payload["matrix_class"] == rec.matrix_class.value


def test_advisor_respects_minimum_way_floor(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    for choice in rec.candidates:
        if choice.policy.l2_enabled:
            assert choice.policy.l2_sector1_ways >= advisor.min_ways


def test_advisor_candidates_include_baseline(advisor):
    rec = advisor.recommend(banded(2_000, 100, 20, seed=1))
    assert rec.baseline in rec.candidates
    assert rec.baseline.policy.describe() == "sector cache disabled"


def test_min_ways_zero_allows_small_sectors():
    advisor = SectorAdvisor(MACHINE, min_sector1_ways_with_prefetch=2)
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    ways = {c.policy.l2_sector1_ways for c in rec.candidates if c.policy.l2_enabled}
    assert 2 in ways


def test_empty_way_options_rejected():
    with pytest.raises(ValueError):
        SectorAdvisor(MACHINE, way_options=())


def test_recommendation_is_the_fastest_candidate(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    assert rec.best.predicted_seconds == min(
        c.predicted_seconds for c in rec.candidates
    )
