"""Sector-policy advisor behaviour by matrix class."""

import pytest

from repro.core import MatrixClass
from repro.core.advisor import SectorAdvisor
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform

MACHINE = scaled_machine(16)


@pytest.fixture(scope="module")
def advisor():
    return SectorAdvisor(MACHINE)


def test_class1_recommends_disabled(advisor):
    rec = advisor.recommend(banded(500, 5, 4, seed=0))
    assert rec.matrix_class is MatrixClass.CLASS1
    assert not rec.worthwhile
    assert not rec.best.policy.l2_enabled
    assert "disabled" in rec.summary()


def test_class2_recommends_listing1(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    assert rec.matrix_class is MatrixClass.CLASS2
    assert rec.worthwhile
    assert rec.best.policy.sector_of("values") == 1
    assert rec.best.policy.sector_of("x") == 0
    assert rec.predicted_speedup >= 1.0


def test_class3_considers_isolate_x(advisor):
    rec = advisor.recommend(random_uniform(140_000, 3, seed=1))
    assert rec.matrix_class in (MatrixClass.CLASS3A, MatrixClass.CLASS3B)
    policies = {c.policy.describe() for c in rec.candidates}
    assert any("rowptr" in p for p in policies), "isolate-x variant missing"


def test_advisor_respects_minimum_way_floor(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    for choice in rec.candidates:
        if choice.policy.l2_enabled:
            assert choice.policy.l2_sector1_ways >= advisor.min_ways


def test_advisor_candidates_include_baseline(advisor):
    rec = advisor.recommend(banded(2_000, 100, 20, seed=1))
    assert rec.baseline in rec.candidates
    assert rec.baseline.policy.describe() == "sector cache disabled"


def test_min_ways_zero_allows_small_sectors():
    advisor = SectorAdvisor(MACHINE, min_sector1_ways_with_prefetch=2)
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    ways = {c.policy.l2_sector1_ways for c in rec.candidates if c.policy.l2_enabled}
    assert 2 in ways


def test_empty_way_options_rejected():
    with pytest.raises(ValueError):
        SectorAdvisor(MACHINE, way_options=())


def test_recommendation_is_the_fastest_candidate(advisor):
    rec = advisor.recommend(banded(26_000, 2_500, 11, seed=3))
    assert rec.best.predicted_seconds == min(
        c.predicted_seconds for c in rec.candidates
    )
