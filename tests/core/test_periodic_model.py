"""Periodic fast path of methods A and B vs. the doubled-trace oracle.

The ISSUE's acceptance criterion: the single-period steady-state engine must
be *byte-identical* to running the legacy ``repeat_trace`` pipeline — same
MissPredictions, same cold-miss counts — across matrices, schedules,
interleave policies, thread counts and sector configurations, at both cache
levels, partitioned and shared.
"""

import numpy as np
import pytest

from repro.core import CacheMissModel, MethodA, MethodB
from repro.machine.a64fx import scaled_machine
from repro.matrices import banded, power_law, random_uniform
from repro.spmv.csr import CSRMatrix
from repro.spmv.sector_policy import SectorPolicy, no_sector_cache

MACHINE = scaled_machine()


def empty_row_matrix():
    """A matrix whose middle rows carry no nonzeros at all."""
    dense = np.zeros((9, 7))
    dense[0, :3] = 1.0
    dense[7, 4:] = 1.0
    return CSRMatrix.from_dense(dense, name="empty_rows")


def single_row_matrix():
    return CSRMatrix.from_dense(np.ones((1, 11)), name="single_row")


MATRICES = [
    banded(60, 3, 4, seed=1),
    random_uniform(40, 5, seed=2),
    power_law(50, 4.0, seed=3),
    empty_row_matrix(),
    single_row_matrix(),
]

POLICIES = [no_sector_cache()] + [
    SectorPolicy(l2_sector1_ways=l2w, l1_sector1_ways=l1w)
    for l2w in (1, 2, 5, 7)
    for l1w in (0, 1, 2)
]


def _pairs(method_cls, matrix, num_threads, interleave_policy):
    kwargs = dict(
        num_threads=num_threads,
        interleave_policy=interleave_policy,
    )
    fast = method_cls(matrix, MACHINE, periodic=True, **kwargs)
    oracle = method_cls(matrix, MACHINE, periodic=False, **kwargs)
    assert fast.periodic and not oracle.periodic
    return fast, oracle


def assert_same_prediction(p, q):
    assert p.l2_misses == q.l2_misses
    assert p.misses == q.misses  # the level-agnostic alias agrees too
    assert p.per_array == q.per_array
    assert p.method == q.method


@pytest.mark.parametrize("matrix", MATRICES, ids=lambda m: m.name)
@pytest.mark.parametrize(
    "num_threads,interleave_policy",
    [(1, "mcs"), (3, "mcs"), (4, "block"), (2, "sequential")],
)
def test_method_a_periodic_is_byte_identical(matrix, num_threads, interleave_policy):
    fast, oracle = _pairs(MethodA, matrix, num_threads, interleave_policy)
    for policy in POLICIES:
        assert_same_prediction(fast.predict(policy), oracle.predict(policy))
        assert_same_prediction(fast.predict_l1(policy), oracle.predict_l1(policy))
    assert fast.cold_misses() == oracle.cold_misses()
    assert fast.x_traffic_fraction(POLICIES[0]) == oracle.x_traffic_fraction(
        POLICIES[0]
    )


@pytest.mark.parametrize("matrix", MATRICES, ids=lambda m: m.name)
@pytest.mark.parametrize(
    "num_threads,interleave_policy",
    [(1, "mcs"), (3, "mcs"), (4, "block"), (2, "sequential")],
)
def test_method_b_periodic_is_byte_identical(matrix, num_threads, interleave_policy):
    fast, oracle = _pairs(MethodB, matrix, num_threads, interleave_policy)
    for policy in POLICIES:
        assert_same_prediction(fast.predict(policy), oracle.predict(policy))
        assert_same_prediction(fast.predict_l1(policy), oracle.predict_l1(policy))


def test_method_a_periodic_with_random_interleave():
    # the random policy needs an explicit seed through the constructor path;
    # without one the two instances would draw different interleavings, so
    # compare a fixed-seed interleave at trace level via identical instances
    matrix = banded(40, 2, 3, seed=5)
    fast, oracle = _pairs(MethodA, matrix, 1, "mcs")
    # single thread: every interleave policy degenerates to the same order
    for policy in (no_sector_cache(), SectorPolicy(l2_sector1_ways=5)):
        assert_same_prediction(fast.predict(policy), oracle.predict(policy))


@pytest.mark.parametrize("iterations", [3, 4])
def test_more_iterations_still_match(iterations):
    # pure-periodic steady state is stationary, so the engine covers any
    # iterations >= 2 for methods A and B
    matrix = random_uniform(30, 4, seed=7)
    for cls in (MethodA, MethodB):
        fast = cls(matrix, MACHINE, num_threads=2, iterations=iterations)
        oracle = cls(
            matrix, MACHINE, num_threads=2, iterations=iterations, periodic=False
        )
        assert fast.periodic
        for policy in (no_sector_cache(), SectorPolicy(l2_sector1_ways=4)):
            assert_same_prediction(fast.predict(policy), oracle.predict(policy))


def test_single_iteration_disables_the_fast_path():
    matrix = banded(20, 1, 2, seed=9)
    model = MethodA(matrix, MACHINE, iterations=1)
    assert not model.periodic  # one cold pass has no steady state


def test_cache_miss_model_threads_periodic_flag():
    matrix = banded(30, 2, 3, seed=11)
    fast = CacheMissModel(matrix, MACHINE, num_threads=2)
    oracle = CacheMissModel(matrix, MACHINE, num_threads=2, periodic=False)
    for method in ("A", "B"):
        for policy in (no_sector_cache(), SectorPolicy(l2_sector1_ways=3)):
            assert_same_prediction(
                fast.predict(policy, method), oracle.predict(policy, method)
            )
            assert_same_prediction(
                fast.predict_l1(policy, method), oracle.predict_l1(policy, method)
            )


def test_misses_alias_equals_l2_misses_field():
    matrix = banded(25, 2, 2, seed=13)
    model = MethodA(matrix, MACHINE)
    pred = model.predict_l1(no_sector_cache())
    assert pred.misses == pred.l2_misses
