"""Eq. 2 partitioned-cache accounting."""

import numpy as np
import pytest

from repro.core import PartitionSpec, eq2_misses, unpartitioned_misses
from repro.machine import scaled_machine
from repro.reuse import COLD, reuse_distances


def test_partition_spec_from_ways():
    machine = scaled_machine(16)
    spec = PartitionSpec.from_ways(machine.l2, 5)
    assert spec.n1 == 5 * machine.l2.num_sets
    assert spec.total == machine.l2.capacity_lines
    with pytest.raises(ValueError):
        PartitionSpec(-1, 4)


def test_eq2_counts_per_sector_capacity():
    rd = np.array([0, 10, 0, 10])
    sectors = np.array([0, 0, 1, 1])
    spec = PartitionSpec(n0=20, n1=5)
    # sector 0: rd 0 and 10 both < 20 -> hits; sector 1: rd 10 >= 5 -> miss
    assert eq2_misses(rd, sectors, spec) == 1


def test_eq2_window_restricts_counting():
    rd = np.array([COLD, COLD])
    sectors = np.array([0, 1])
    spec = PartitionSpec(4, 4)
    window = np.array([True, False])
    assert eq2_misses(rd, sectors, spec, window) == 1


def test_eq2_alignment_validation():
    with pytest.raises(ValueError):
        eq2_misses(np.array([1, 2]), np.array([0]), PartitionSpec(1, 1))


def test_disabling_partitioning_is_the_special_case():
    # Eq. 2 with everything in one partition == unpartitioned counting
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 30, 500)
    rd = reuse_distances(trace)
    sectors = np.zeros(500, dtype=np.int8)
    spec = PartitionSpec(n0=16, n1=0)
    assert eq2_misses(rd, sectors, spec) == unpartitioned_misses(rd, 16)


def test_sum_property_partitions_cover_trace():
    # every reference is counted against exactly one partition
    rng = np.random.default_rng(1)
    trace = rng.integers(0, 50, 800)
    sectors = rng.integers(0, 2, 800).astype(np.int8)
    rd = reuse_distances(trace, sectors.astype(np.int64))
    spec = PartitionSpec(n0=10, n1=10)
    total = eq2_misses(rd, sectors, spec)
    miss0 = unpartitioned_misses(rd[sectors == 0], 10)
    miss1 = unpartitioned_misses(rd[sectors == 1], 10)
    assert total == miss0 + miss1
