"""CacheMissModel facade and ModelComparison."""

import pytest

from repro.cachesim import CacheEvents
from repro.core import CacheMissModel, MatrixClass
from repro.core.model import ModelComparison
from repro.machine import scaled_machine
from repro.matrices import banded
from repro.spmv import listing1_policy, no_sector_cache

MACHINE = scaled_machine(16)


@pytest.fixture(scope="module")
def model():
    return CacheMissModel(banded(3_000, 60, 40, seed=1), MACHINE, num_threads=1)


def test_methods_built_lazily(model):
    fresh = CacheMissModel(banded(300, 10, 8, seed=0), MACHINE)
    assert fresh._method_a is None and fresh._method_b is None
    fresh.predict(no_sector_cache(), "A")
    assert fresh._method_a is not None and fresh._method_b is None


def test_predict_dispatches_methods(model):
    policy = listing1_policy(5)
    a = model.predict(policy, "A")
    b = model.predict(policy, "B")
    assert a.method == "A" and b.method == "B"
    with pytest.raises(ValueError):
        model.predict(policy, "C")
    with pytest.raises(ValueError):
        model.predict_l1(policy, "X")


def test_compare_reports_ape(model):
    policy = listing1_policy(5)
    predicted = model.predict(policy, "A").l2_misses
    events = CacheEvents(l2_refill=predicted)
    cmp = model.compare(policy, events, "A")
    assert cmp.absolute_percentage_error == 0.0
    off = model.compare(policy, CacheEvents(l2_refill=2 * predicted), "A")
    assert off.absolute_percentage_error == pytest.approx(50.0)


def test_comparison_zero_measured_edge_cases():
    assert ModelComparison(0, 0).absolute_percentage_error == 0.0
    assert ModelComparison(5, 0).absolute_percentage_error == float("inf")


def test_matrix_class_uses_thread_count():
    matrix = banded(26_000, 600, 12, seed=7)
    seq = CacheMissModel(matrix, MACHINE, num_threads=1).matrix_class(5)
    par = CacheMissModel(matrix, MACHINE, num_threads=48).matrix_class(5)
    # parallel splits y/rowptr over CMGs: never a worse class than sequential
    order = ["1", "2", "3a", "3b"]
    assert order.index(par.value) <= order.index(seq.value)


def test_prediction_l1_exceeds_l2(model):
    policy = no_sector_cache()
    assert model.predict_l1(policy, "A").l2_misses >= model.predict(policy, "A").l2_misses
