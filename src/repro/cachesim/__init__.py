"""Simulated A64FX memory hierarchy: the reproduction's measurement testbed."""

from .events import CacheEvents, combine, per_array_counts
from .hierarchy import SimConfig, SpMVCacheSim
from .plru import PLRUCache, TreePLRU, events_from_hits, simulate_plru
from .prefetch import STREAMED_ARRAYS, inject_prefetches
from .setassoc import SetAssocRD, set_index, simulate
from .software_prefetch import inject_x_software_prefetch

__all__ = [
    "CacheEvents",
    "PLRUCache",
    "STREAMED_ARRAYS",
    "SetAssocRD",
    "SimConfig",
    "SpMVCacheSim",
    "TreePLRU",
    "combine",
    "events_from_hits",
    "inject_prefetches",
    "per_array_counts",
    "set_index",
    "simulate",
    "simulate_plru",
    "inject_x_software_prefetch",
]
