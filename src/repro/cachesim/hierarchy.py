"""Two-level simulated memory hierarchy for SpMV on the (scaled) A64FX.

This is the reproduction's measurement testbed: it plays the role of the
real A64FX + PMU in the paper's evaluation.  Pipeline per configuration:

1. build per-thread SpMV traces from the sparsity pattern, repeated for
   ``iterations`` SpMV sweeps (steady-state events come from the last one);
2. interleave them (MCS-fair round-robin by default);
3. inject L1 stream prefetches; simulate all 48 private L1Ds in one
   vectorized reuse-distance pass (composite group keys);
4. the L2 reference stream is the L1 *misses* (demand refs that hit L1
   never reach L2) plus injected L2 stream prefetches; simulate the four
   CMG-shared L2 segments in one pass, threads mapped to CMGs by compact
   binding;
5. aggregate PMU-style events, restricted to the final iteration.

In-set reuse distances are computed once per {partitioned, shared}
grouping and reused for *every* way split, so sweeping the paper's sector
configurations (Figs. 2-3) costs one thresholding per configuration, not
one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import MemoryTrace, concat_traces, repeat_trace, spmv_trace
from ..machine.a64fx import A64FX
from ..obs.tracer import count as obs_count
from ..obs.tracer import span as obs_span
from ..parallel.interleave import interleave
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import SectorPolicy, listing1_policy, no_sector_cache
from .events import CacheEvents, per_array_counts
from .prefetch import inject_prefetches
from .setassoc import SetAssocRD, simulate


@dataclass(frozen=True)
class SimConfig:
    """Simulator knobs shared across sector-cache configurations."""

    num_threads: int = 1
    iterations: int = 2
    l1_prefetch_distance: int = 2
    l2_prefetch_distance: int = 4
    interleave_policy: str = "mcs"
    #: arrays assigned to sector 1 (Listing 1: the non-temporal matrix data)
    sector1_arrays: tuple[str, ...] = ("values", "colidx")
    #: use the single-period steady-state reuse engine instead of physically
    #: doubling the trace (only takes effect for ``iterations == 2``; results
    #: are byte-identical either way)
    periodic: bool = True


class SpMVCacheSim:
    """Cache simulation of iterative CSR SpMV on a (scaled) A64FX.

    Construction performs the trace building and the L1-level reuse
    analysis; :meth:`events` then evaluates any sector configuration
    cheaply.  The L2 stream depends on the L1 way split (L1 hits are
    filtered out), so L2 reuse analyses are cached per L1 configuration.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        config: SimConfig | None = None,
        schedule: RowSchedule | None = None,
    ) -> None:
        self.matrix = matrix
        self.machine = machine
        self.config = config or SimConfig()
        if self.config.num_threads > machine.num_cores:
            raise ValueError(
                f"{self.config.num_threads} threads exceed {machine.num_cores} cores"
            )
        if schedule is None:
            schedule = static_schedule(matrix, self.config.num_threads)
        elif schedule.num_threads != self.config.num_threads:
            raise ValueError("schedule thread count differs from config")
        self.schedule = schedule
        # reference sector policy: way counts irrelevant here, only the
        # data-to-sector assignment matters for grouping
        self._assignment = listing1_policy(1)
        if set(self.config.sector1_arrays) != set(self._assignment.sector1_arrays):
            self._assignment = SectorPolicy(
                sector1_arrays=frozenset(self.config.sector1_arrays),
                l2_sector1_ways=1,
            )

        with obs_span("sim.trace_build", matrix=matrix.name,
                      threads=self.config.num_threads):
            per_thread = spmv_trace(matrix, None, schedule, line_size=machine.line_size)
            merged = interleave(per_thread, self.config.interleave_policy)
        # iteration 0 (prefetcher ramp-up) differs from the steady period, so
        # the single-period engine only covers the default two-iteration runs
        self.periodic = self.config.periodic and self.config.iterations == 2
        if self.periodic:
            self._demand = merged
            # warm-up period: iteration 0, with start-of-stream prefetch ramp
            warm = inject_prefetches(merged, self.config.l1_prefetch_distance)
            # steady period: iteration 1, wrap-aware injection, no ramp
            l1_stream = inject_prefetches(
                merged.with_iteration(1),
                self.config.l1_prefetch_distance,
                periodic=True,
            )
            self._l1_warm = warm
            self._l1_warm_rd = simulate(
                warm,
                machine.l1,
                self._assignment,
                level="l1",
                cache_ids=warm.threads.astype(np.int64),
            )
            self._l1_stream = l1_stream
            self._l1_rd = simulate(
                l1_stream,
                machine.l1,
                self._assignment,
                level="l1",
                cache_ids=l1_stream.threads.astype(np.int64),
                first_trace=warm,
                first_cache_ids=warm.threads.astype(np.int64),
            )
        else:
            merged = repeat_trace(merged, self.config.iterations)
            self._demand = merged

            # L1 stream: demand refs + L1 prefetches; private cache per thread
            l1_stream = inject_prefetches(merged, self.config.l1_prefetch_distance)
            self._l1_stream = l1_stream
            self._l1_rd = simulate(
                l1_stream,
                machine.l1,
                self._assignment,
                level="l1",
                cache_ids=l1_stream.threads.astype(np.int64),
            )
        self._l2_rd_cache: dict[int, tuple[MemoryTrace, SetAssocRD]] = {}

    # ------------------------------------------------------------------
    @property
    def demand_trace(self) -> MemoryTrace:
        """The interleaved demand trace (no prefetches).

        One SpMV period in periodic mode; all ``iterations`` repetitions in
        the doubled-trace (oracle) mode.
        """
        return self._demand

    def _final_iteration(self, trace: MemoryTrace) -> np.ndarray:
        return trace.iteration == self.config.iterations - 1

    def _l2_level(self, l1_sector1_ways: int) -> tuple[MemoryTrace, SetAssocRD]:
        """L2 stream + reuse analysis for a given L1 way split (cached)."""
        cached = self._l2_rd_cache.get(l1_sector1_ways)
        if cached is not None:
            return cached
        with obs_span("sim.l2_stream", l1_ways=l1_sector1_ways,
                      periodic=self.periodic):
            if self.periodic:
                # the L2 input is warm-period L1 misses followed by steady-period
                # L1 misses; injecting L2 prefetches over the concatenation keeps
                # the oracle's stream-boundary semantics, and injections inherit
                # their trigger's iteration tag, so the warm/steady split of the
                # injected stream is the contiguous iteration==0 prefix
                warm_miss = self._l1_warm_rd.miss_mask(l1_sector1_ways)
                steady_miss = self._l1_rd.miss_mask(l1_sector1_ways)
                l2_input = concat_traces(
                    [self._l1_warm.select(warm_miss), self._l1_stream.select(steady_miss)]
                )
                injected = inject_prefetches(l2_input, self.config.l2_prefetch_distance)
                steady_w = injected.iteration == 1
                warm_part = injected.select(~steady_w)
                l2_stream = injected.select(steady_w)
                cmgs = (l2_stream.threads // self.machine.cores_per_cmg).astype(np.int64)
                rd = simulate(
                    l2_stream,
                    self.machine.l2,
                    self._assignment,
                    level="l2",
                    cache_ids=cmgs,
                    first_trace=warm_part,
                    first_cache_ids=(
                        warm_part.threads // self.machine.cores_per_cmg
                    ).astype(np.int64),
                )
            else:
                l1_miss = self._l1_rd.miss_mask(l1_sector1_ways)
                l2_input = self._l1_stream.select(l1_miss)
                l2_stream = inject_prefetches(l2_input, self.config.l2_prefetch_distance)
                cmgs = (l2_stream.threads // self.machine.cores_per_cmg).astype(np.int64)
                rd = simulate(
                    l2_stream, self.machine.l2, self._assignment, level="l2", cache_ids=cmgs
                )
        self._l2_rd_cache[l1_sector1_ways] = (l2_stream, rd)
        return l2_stream, rd

    # ------------------------------------------------------------------
    def events(self, policy: SectorPolicy) -> CacheEvents:
        """PMU-style events of the final SpMV iteration under a policy."""
        obs_count("sim.events_queries")
        policy.validate(self.machine)
        if policy.l2_enabled or policy.l1_enabled:
            if set(policy.sector1_arrays) != set(self.config.sector1_arrays):
                raise ValueError(
                    "policy sector assignment differs from the simulated one; "
                    "build a new SpMVCacheSim for a different assignment"
                )
        l1_ways = policy.l1_sector1_ways
        l2_ways = policy.l2_sector1_ways

        l1_miss = self._l1_rd.miss_mask(l1_ways)
        l1_window = self._final_iteration(self._l1_stream)
        l1_refill = int(np.count_nonzero(l1_miss & l1_window))

        l2_stream, l2_rd = self._l2_level(l1_ways)
        l2_miss = l2_rd.miss_mask(l2_ways)
        window = self._final_iteration(l2_stream)
        miss_w = l2_miss & window
        demand_w = miss_w & ~l2_stream.is_prefetch
        prefetch_w = miss_w & l2_stream.is_prefetch
        dirty_w = miss_w & l2_stream.array_mask("y")
        return CacheEvents(
            l1_refill=l1_refill,
            l2_refill=int(miss_w.sum()),
            l2_refill_demand=int(demand_w.sum()),
            l2_refill_prefetch=int(prefetch_w.sum()),
            l2_writeback=int(dirty_w.sum()),
            per_array_l2_misses=per_array_counts(l2_stream.arrays, miss_w),
        )

    def baseline_events(self) -> CacheEvents:
        """Events with the sector cache disabled at both levels."""
        return self.events(no_sector_cache())

    def sweep(
        self, l2_way_options: tuple[int, ...], l1_way_options: tuple[int, ...] = (0,)
    ) -> dict[tuple[int, int], CacheEvents]:
        """Events for a grid of sector configurations (keyed (l2, l1) ways)."""
        out = {}
        for l1w in l1_way_options:
            for l2w in l2_way_options:
                out[(l2w, l1w)] = self.events(
                    SectorPolicy(
                        sector1_arrays=frozenset(self.config.sector1_arrays),
                        l2_sector1_ways=l2w,
                        l1_sector1_ways=l1w,
                    )
                )
        return out
