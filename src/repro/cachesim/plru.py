"""Sequential set-associative cache with tree-PLRU replacement.

The A64FX's replacement policy is undisclosed; the paper assumes a
pseudo-LRU.  This reference simulator implements classic tree-PLRU (a
binary decision tree per set pointing away from recently used ways) with
way-based sector partitioning: each sector owns a contiguous way range and
its own decision bits, so victims are always chosen inside the sector of
the incoming line — the semantics of the A64FX sector cache.

It is O(1) per access but runs a Python loop per reference, so it serves as
ground truth for the vectorized LRU simulator on small traces (tests and
the replacement-policy ablation), not for full sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import MemoryTrace
from ..machine.a64fx import CacheGeometry
from .events import CacheEvents, per_array_counts


class TreePLRU:
    """PLRU decision bits over ``ways`` ways (power of two)."""

    def __init__(self, ways: int) -> None:
        if ways <= 0 or ways & (ways - 1):
            raise ValueError(f"tree-PLRU needs a power-of-two way count, got {ways}")
        self.ways = ways
        self.bits = [0] * (ways - 1)  # heap-ordered internal nodes

    def victim(self, limit: int | None = None) -> int:
        """Way the decision bits point at, restricted to ways ``< limit``.

        Sector partitions need not be powers of two; the tree is sized to
        the next power of two and leaves beyond ``limit`` are treated as
        permanently absent (the descent is forced away from them).
        """
        limit = self.ways if limit is None else limit
        if not 0 < limit <= self.ways:
            raise ValueError(f"limit must be in [1, {self.ways}], got {limit}")
        node, lo, hi = 0, 0, self.ways
        while node < self.ways - 1:
            mid = (lo + hi) // 2
            go_right = self.bits[node] == 1
            if go_right and mid >= limit:
                go_right = False  # right subtree holds no valid way
            if go_right:
                node, lo = 2 * node + 2, mid
            else:
                node, hi = 2 * node + 1, mid
        return node - (self.ways - 1)

    def touch(self, way: int) -> None:
        """Flip the path bits to point away from ``way``."""
        if not 0 <= way < self.ways:
            raise ValueError(f"way {way} out of range")
        node = way + self.ways - 1
        while node:
            parent = (node - 1) // 2
            self.bits[parent] = 0 if node == 2 * parent + 2 else 1
            node = parent


@dataclass
class _SectorState:
    """Tags and PLRU bits of one sector's way range within one set."""

    tags: list
    plru: TreePLRU


class PLRUCache:
    """One sector-partitioned, set-associative cache with tree-PLRU."""

    def __init__(self, geometry: CacheGeometry, sector1_ways: int = 0) -> None:
        if not 0 <= sector1_ways < geometry.ways:
            raise ValueError(
                f"sector1_ways must be in [0, {geometry.ways}), got {sector1_ways}"
            )
        self.geometry = geometry
        self.sector1_ways = sector1_ways
        splits = (
            (geometry.ways,) if sector1_ways == 0 else (geometry.ways - sector1_ways, sector1_ways)
        )
        self._sets: list[list[_SectorState]] = [
            [_SectorState([None] * w, TreePLRU(_pow2_ceil(w))) for w in splits]
            for _ in range(geometry.num_sets)
        ]

    def access(self, line: int, sector: int = 0) -> bool:
        """Access a line; returns True on hit.  Misses fill the line."""
        sets = self.geometry.num_sets
        index = (line ^ (line // sets) ^ (line // (sets * sets))) % sets
        state = self._sets[index][sector if self.sector1_ways else 0]
        tag = line  # full line id as tag: unique within and across sets
        try:
            way = state.tags.index(tag)
        except ValueError:
            way = self._choose_victim(state)
            state.tags[way] = tag
            state.plru.touch(way)
            return False
        state.plru.touch(way)
        return True

    @staticmethod
    def _choose_victim(state: _SectorState) -> int:
        # prefer an invalid way; otherwise follow the PLRU bits restricted
        # to the sector's real way count
        for way, tag in enumerate(state.tags):
            if tag is None:
                return way
        return state.plru.victim(limit=len(state.tags))


def _pow2_ceil(n: int) -> int:
    return 1 << (n - 1).bit_length() if n > 1 else 1


def simulate_plru(
    trace: MemoryTrace,
    geometry: CacheGeometry,
    sectors: np.ndarray,
    sector1_ways: int,
    cache_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Per-reference hit mask under tree-PLRU (sequential reference path)."""
    n = len(trace)
    sectors = np.asarray(sectors, dtype=np.int8)
    if cache_ids is None:
        cache_ids = np.zeros(n, dtype=np.int64)
    caches: dict[int, PLRUCache] = {}
    hits = np.zeros(n, dtype=bool)
    for i in range(n):
        cid = int(cache_ids[i])
        cache = caches.get(cid)
        if cache is None:
            cache = PLRUCache(geometry, sector1_ways)
            caches[cid] = cache
        hits[i] = cache.access(int(trace.lines[i]), int(sectors[i]))
    return hits


def events_from_hits(
    trace: MemoryTrace, hits: np.ndarray, level: str = "l2"
) -> CacheEvents:
    """Aggregate a hit mask into PMU-style events (single-level view)."""
    miss = ~hits
    demand_miss = miss & ~trace.is_prefetch
    prefetch_fill = miss & trace.is_prefetch
    dirty_miss = miss & trace.array_mask("y")
    if level == "l1":
        return CacheEvents(l1_refill=int(miss.sum()))
    return CacheEvents(
        l2_refill=int(miss.sum()),
        l2_refill_demand=int(demand_miss.sum()),
        l2_refill_prefetch=int(prefetch_fill.sum()),
        l2_writeback=int(dirty_miss.sum()),
        per_array_l2_misses=per_array_counts(trace.arrays, miss),
    )
