"""Software prefetching of the x vector (the paper's future work).

Hardware stream prefetchers cannot cover the indirect ``x[colidx[i]]``
accesses — but software can: ``colidx`` is available arbitrarily far
ahead, so the kernel may issue ``prefetch(x + colidx[i + d])`` alongside
iteration ``i``.  The paper names "software prefetching in conjunction
with the sector cache" as future work; this module makes the experiment
runnable by injecting the corresponding references into the trace.

A software prefetch with lookahead ``d`` turns an x demand miss into a
prefetch fill whenever the prefetched line survives in x's partition for
``d`` nonzeros — so its interaction with the sector configuration is
exactly the premature-eviction arithmetic the simulator already models.
"""

from __future__ import annotations

import numpy as np

from ..core.layout import ARRAY_ID
from ..core.trace import MemoryTrace

_X = ARRAY_ID["x"]


def inject_x_software_prefetch(trace: MemoryTrace, lookahead: int) -> MemoryTrace:
    """Inject software prefetches for x, ``lookahead`` x-references ahead.

    For each thread, the k-th x reference triggers a prefetch of the line
    of its (k + lookahead)-th x reference; the first ``lookahead``
    references of a thread are additionally prefetched at the thread's
    first x reference (the loop preamble).  ``lookahead = 0`` disables.
    """
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    if lookahead == 0 or len(trace) == 0:
        return trace
    sel = np.flatnonzero(trace.arrays == _X)
    if sel.size == 0:
        return trace
    threads = trace.threads[sel].astype(np.int64)
    lines = trace.lines[sel]

    order = np.lexsort((sel, threads))
    sorted_sel = sel[order]
    sorted_lines = lines[order]
    sorted_threads = threads[order]
    # position of each x ref within its thread's x stream
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_threads[1:] != sorted_threads[:-1]))
    )
    starts = np.repeat(boundaries, np.diff(np.append(boundaries, sorted_sel.size)))
    within = np.arange(sorted_sel.size) - starts

    # steady state: trigger k prefetches the line of x ref k + lookahead
    target_idx = np.arange(sorted_sel.size) + lookahead
    same_thread = np.zeros(sorted_sel.size, dtype=bool)
    valid = target_idx < sorted_sel.size
    same_thread[valid] = sorted_threads[target_idx[valid]] == sorted_threads[valid]
    ok = valid & same_thread
    inject_after = [sorted_sel[ok]]
    inject_lines = [sorted_lines[target_idx[ok]]]
    inject_threads = [sorted_threads[ok]]
    inject_rank = [np.full(int(ok.sum()), lookahead, dtype=np.int64)]

    # preamble: the thread's first x ref prefetches refs 1..lookahead-1
    first = within == 0
    for d in range(1, lookahead):
        tgt = np.arange(sorted_sel.size) + d
        okp = first & (tgt < sorted_sel.size)
        okp[okp] &= sorted_threads[tgt[okp]] == sorted_threads[okp]
        inject_after.append(sorted_sel[okp])
        inject_lines.append(sorted_lines[tgt[okp]])
        inject_threads.append(sorted_threads[okp])
        inject_rank.append(np.full(int(okp.sum()), d, dtype=np.int64))

    n = len(trace)
    after = np.concatenate(inject_after)
    all_lines = np.concatenate([trace.lines] + inject_lines)
    all_arrays = np.concatenate(
        [trace.arrays, np.full(after.shape[0], _X, dtype=np.int8)]
    )
    all_threads = np.concatenate([trace.threads.astype(np.int64)] + inject_threads)
    all_prefetch = np.concatenate(
        [trace.is_prefetch, np.ones(after.shape[0], dtype=bool)]
    )
    all_iteration = np.concatenate([trace.iteration, trace.iteration[after]])
    anchor = np.concatenate([np.arange(n, dtype=np.int64), after])
    rank = np.concatenate([np.zeros(n, dtype=np.int64)] + inject_rank)
    order = np.lexsort((rank, anchor))
    return MemoryTrace(
        all_lines[order],
        all_arrays[order],
        all_threads[order],
        trace.layout,
        all_prefetch[order],
        all_iteration[order],
    )
