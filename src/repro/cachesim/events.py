"""PMU-style event counters for the simulated memory hierarchy.

The paper measures cache behaviour through A64FX performance events; the
simulator exposes the same vocabulary so the experiment drivers read like
the paper's methodology:

* ``L1D_CACHE_REFILL``      — L1 fills (demand + prefetch misses at L1),
* ``L2D_CACHE_REFILL``      — L2 fills from memory (demand + prefetch),
* ``L2D_CACHE_REFILL_DM``   — demand references missing in L2,
* ``L2D_CACHE_MIBMCH_PRF``  — fills triggered by the L2 prefetcher,
* ``L2D_CACHE_WB``          — dirty-line writebacks to memory.

The paper's derived "L2 cache misses" metric (Section 4.3) counts lines
transferred from memory regardless of whether a demand access or a prefetch
triggered the transfer; with the simulator's clean bookkeeping that is
simply ``L2D_CACHE_REFILL`` (the swap/MIB-match subtractions of the real
PMU formula correct double counting that the simulator never introduces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..spmv.sector_policy import ARRAYS


@dataclass(frozen=True)
class CacheEvents:
    """Event counts of one simulated SpMV iteration.

    ``per_array_l2_misses`` breaks ``l2_refill`` down by the array whose
    reference (demand or prefetch) triggered the fill.
    """

    l1_refill: int = 0
    l2_refill: int = 0
    l2_refill_demand: int = 0
    l2_refill_prefetch: int = 0
    l2_writeback: int = 0
    per_array_l2_misses: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.per_array_l2_misses:
            if name not in ARRAYS:
                raise ValueError(f"unknown array {name!r} in per-array counts")

    @property
    def l2_misses(self) -> int:
        """The paper's derived L2 miss count: lines transferred from memory."""
        return self.l2_refill

    @property
    def l2_demand_misses(self) -> int:
        """Misses not covered by prefetching (L2D_CACHE_REFILL_DM)."""
        return self.l2_refill_demand

    def traffic_bytes(self, line_size: int) -> int:
        """Memory traffic in bytes: refills plus writebacks."""
        return (self.l2_refill + self.l2_writeback) * line_size

    def bandwidth(self, line_size: int, seconds: float) -> float:
        """Sustained bandwidth implied by the traffic and a runtime.

        Implements the paper's Section 4.4 formula
        ``(REFILL + WB - SWAP - MIBMCH_PRF) * 256 / time`` (the simulator's
        refill count already excludes double-counted fills).
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.traffic_bytes(line_size) / seconds


def combine(events: list[CacheEvents]) -> CacheEvents:
    """Sum event counts (e.g. over CMGs or threads)."""
    per_array: dict[str, int] = {}
    for e in events:
        for k, v in e.per_array_l2_misses.items():
            per_array[k] = per_array.get(k, 0) + v
    return CacheEvents(
        l1_refill=sum(e.l1_refill for e in events),
        l2_refill=sum(e.l2_refill for e in events),
        l2_refill_demand=sum(e.l2_refill_demand for e in events),
        l2_refill_prefetch=sum(e.l2_refill_prefetch for e in events),
        l2_writeback=sum(e.l2_writeback for e in events),
        per_array_l2_misses=per_array,
    )


def per_array_counts(arrays: np.ndarray, miss_mask: np.ndarray) -> dict[str, int]:
    """Break a miss mask down by the array id of each reference."""
    out: dict[str, int] = {}
    for aid, name in enumerate(ARRAYS):
        count = int(np.count_nonzero(miss_mask & (arrays == aid)))
        if count:
            out[name] = count
    return out
