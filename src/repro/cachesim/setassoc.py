"""Vectorized set-associative LRU cache simulation.

Simulation is reduced to segmented reuse distance: stable-sorting a trace by
(cache id, set index, sector) makes each set's accesses contiguous, and a
reference hits iff its in-set stack distance is below the number of ways its
sector owns.  One reuse-distance pass therefore evaluates *every* way split
of the sector cache at once, and any number of private caches or CMG
segments simulate together through composite group keys.

True LRU stands in for the A64FX's undisclosed (pseudo-)LRU policy — the
same approximation the paper makes for its model (Section 2.2); the
sequential tree-PLRU simulator in :mod:`repro.cachesim.plru` quantifies the
difference on small traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import MemoryTrace
from ..machine.a64fx import CacheGeometry
from ..obs.tracer import span as obs_span
from ..reuse.cdq import reuse_distances
from ..reuse.periodic import steady_state_reuse_distances
from ..spmv.sector_policy import SectorPolicy


def set_index(lines: np.ndarray, num_sets: int) -> np.ndarray:
    """Hashed set index: fold the upper address bits into the set bits.

    Plain ``line % num_sets`` makes concurrent unit-stride streams whose
    start offsets happen to coincide modulo ``num_sets`` collide in the
    same sets forever — a power-of-two-stride pathology that scaling the
    set count down by 16 makes far more likely than on the real machine.
    XOR-folding the tag bits into the index (a standard hardware technique)
    decorrelates stream phases while keeping the mapping deterministic.
    """
    lines = np.asarray(lines, dtype=np.int64)
    return (lines ^ (lines // num_sets) ^ (lines // (num_sets * num_sets))) % num_sets


@dataclass(frozen=True)
class SetAssocRD:
    """Precomputed in-set reuse distances of a trace against one cache level.

    ``rd_split`` treats the two sectors as separate caches (partitioned
    mode); ``rd_shared`` lets all data compete for every way (sector cache
    disabled).  Both are computed on demand and cached.

    When a ``first_trace`` (with matching ``first_sectors``/
    ``first_cache_ids``) is given, ``trace`` is interpreted as the steady
    period of the reference stream ``[first_trace, trace, trace, ...]`` and
    in-set distances come from the single-period steady-state engine
    (wrap-around reuse against the warm-up period) instead of a doubled
    trace.
    """

    trace: MemoryTrace
    geometry: CacheGeometry
    sectors: np.ndarray
    cache_ids: np.ndarray
    first_trace: MemoryTrace | None = None
    first_sectors: np.ndarray | None = None
    first_cache_ids: np.ndarray | None = None
    _cache: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(self.trace)
        object.__setattr__(self, "sectors", np.ascontiguousarray(self.sectors, dtype=np.int8))
        object.__setattr__(
            self, "cache_ids", np.ascontiguousarray(self.cache_ids, dtype=np.int64)
        )
        if self.sectors.shape != (n,) or self.cache_ids.shape != (n,):
            raise ValueError("sectors and cache_ids must match the trace length")
        if self.first_trace is not None:
            m = len(self.first_trace)
            object.__setattr__(
                self,
                "first_sectors",
                np.ascontiguousarray(self.first_sectors, dtype=np.int8),
            )
            object.__setattr__(
                self,
                "first_cache_ids",
                np.ascontiguousarray(self.first_cache_ids, dtype=np.int64),
            )
            if self.first_sectors.shape != (m,) or self.first_cache_ids.shape != (m,):
                raise ValueError(
                    "first_sectors and first_cache_ids must match first_trace"
                )
        object.__setattr__(self, "_cache", {})

    @property
    def set_index(self) -> np.ndarray:
        """Hashed set index of each reference."""
        return set_index(self.trace.lines, self.geometry.num_sets)

    def _groups(
        self,
        lines: np.ndarray,
        cache_ids: np.ndarray,
        sectors: np.ndarray,
        partitioned: bool,
    ) -> np.ndarray:
        groups = cache_ids * self.geometry.num_sets + set_index(
            lines, self.geometry.num_sets
        )
        if partitioned:
            groups = groups * 2 + sectors
        return groups

    def _rd(self, partitioned: bool) -> np.ndarray:
        key = "split" if partitioned else "shared"
        if key not in self._cache:
            with obs_span("sim.setassoc_pass", grouping=key,
                          references=len(self.trace)):
                groups = self._groups(
                    self.trace.lines, self.cache_ids, self.sectors, partitioned
                )
                if self.first_trace is None:
                    self._cache[key] = reuse_distances(self.trace.lines, groups)
                else:
                    self._cache[key] = steady_state_reuse_distances(
                        self.trace.lines,
                        groups,
                        first_lines=self.first_trace.lines,
                        first_groups=self._groups(
                            self.first_trace.lines,
                            self.first_cache_ids,
                            self.first_sectors,
                            partitioned,
                        ),
                    )
        return self._cache[key]

    def hit_mask(self, sector1_ways: int) -> np.ndarray:
        """Per-reference hit mask for a given way split.

        ``sector1_ways == 0`` disables partitioning (all ways shared);
        otherwise sector 1 owns ``sector1_ways`` ways and sector 0 the rest.
        A reference hits iff fewer distinct lines mapped to its set *and
        sector* since its previous access than its sector owns ways.
        """
        ways = self.geometry.ways
        if not 0 <= sector1_ways < ways:
            raise ValueError(f"sector1_ways must be in [0, {ways}), got {sector1_ways}")
        if sector1_ways == 0:
            return self._rd(partitioned=False) < ways
        rd = self._rd(partitioned=True)
        capacity = np.where(self.sectors == 1, sector1_ways, ways - sector1_ways)
        return rd < capacity

    def miss_mask(self, sector1_ways: int) -> np.ndarray:
        return ~self.hit_mask(sector1_ways)


def simulate(
    trace: MemoryTrace,
    geometry: CacheGeometry,
    policy: SectorPolicy,
    level: str = "l2",
    cache_ids: np.ndarray | None = None,
    first_trace: MemoryTrace | None = None,
    first_cache_ids: np.ndarray | None = None,
) -> SetAssocRD:
    """Prepare a trace for set-associative simulation against a cache level.

    ``cache_ids`` distinguishes physically distinct caches fed by the same
    trace array (private L1s keyed by thread, L2 segments keyed by CMG);
    defaults to a single cache.  ``first_trace`` (with its own cache ids)
    designates a warm-up period preceding infinitely many repetitions of
    ``trace``; the returned distances are then steady state.
    """
    if cache_ids is None:
        cache_ids = np.zeros(len(trace), dtype=np.int64)
    if level not in ("l1", "l2"):
        raise ValueError(f"level must be 'l1' or 'l2', got {level!r}")
    first_sectors = None
    if first_trace is not None:
        if first_cache_ids is None:
            first_cache_ids = np.zeros(len(first_trace), dtype=np.int64)
        first_sectors = first_trace.sectors(policy)
    return SetAssocRD(
        trace,
        geometry,
        trace.sectors(policy),
        cache_ids,
        first_trace,
        first_sectors,
        first_cache_ids,
    )
