"""Hardware stream-prefetcher model (trace augmentation).

The A64FX hardware prefetcher detects sequential streams and fetches lines
ahead of the demand stream; its prefetch *distance* is software-adjustable
through the hardware prefetch assistance (paper Section 4.3).  Prefetched
lines occupy cache space in their data's sector, which is exactly the
mechanism behind the paper's observation that a 2-way sector 1 performs
worse than 4-5 ways: aggressively prefetched matrix data evicts already
prefetched lines before their first use.

The model injects, for each thread and each sequentially streamed array,
a prefetch reference to the line ``distance`` ahead whenever the demand
stream first touches a new line (plus an initial ramp covering the first
``distance`` lines).  Injected references update recency and occupancy like
normal accesses but are tagged ``is_prefetch``; premature eviction then
emerges from the ordinary replacement arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..core.trace import MemoryTrace
from ..core.layout import ARRAY_ID

#: Arrays streamed sequentially by the CSR SpMV kernel (x is irregular).
STREAMED_ARRAYS = ("values", "colidx", "rowptr", "y")


def inject_prefetches(
    trace: MemoryTrace,
    distance: int = 4,
    streams: tuple[str, ...] = STREAMED_ARRAYS,
    periodic: bool = False,
) -> MemoryTrace:
    """Return the trace with stream-prefetch references injected.

    ``distance = 0`` disables the prefetcher (returns the trace unchanged).
    Injection is per (thread, array): the k-th new line of a thread's
    stream triggers a prefetch of line ``k + distance`` of that stream's
    thread-local extent; the first touch additionally ramps lines
    ``1..distance``.  Prefetches never cross the end of the array.

    ``periodic = True`` treats the trace as one period of an infinitely
    repeated stream in steady state: the first reference of each thread's
    stream is compared against the stream's *last* line (its predecessor in
    the previous period) for new-line detection, and no start-up ramp is
    injected — producing exactly the injections of iteration ``k >= 1`` of a
    :func:`repro.core.trace.repeat_trace`-doubled trace.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if distance == 0 or len(trace) == 0:
        return trace
    stream_ids = np.array([ARRAY_ID[a] for a in streams], dtype=np.int8)

    inject_lines: list[np.ndarray] = []
    inject_arrays: list[np.ndarray] = []
    inject_threads: list[np.ndarray] = []
    inject_after: list[np.ndarray] = []  # index of the triggering reference
    inject_rank: list[np.ndarray] = []  # ordering among injections at one trigger

    threads = trace.threads.astype(np.int64)
    for aid in stream_ids:
        base = trace.layout.base[aid]
        extent = trace.layout.num_lines[aid]
        sel = np.flatnonzero(trace.arrays == aid)
        if sel.size == 0:
            continue
        lines = trace.lines[sel]
        tids = threads[sel]
        # "new line" = line differs from this thread's previous ref to the
        # stream.  Streams are monotone per thread in SpMV, so comparing
        # with the previous reference of the same thread suffices.
        order = np.lexsort((sel, tids))
        sorted_lines = lines[order]
        sorted_tids = tids[order]
        new = np.ones(sel.size, dtype=bool)
        new[1:] = (sorted_lines[1:] != sorted_lines[:-1]) | (
            sorted_tids[1:] != sorted_tids[:-1]
        )
        first_of_thread = np.ones(sel.size, dtype=bool)
        first_of_thread[1:] = sorted_tids[1:] != sorted_tids[:-1]
        if periodic:
            # steady state: the predecessor of a stream's first reference is
            # the stream's final line of the previous period
            firsts = np.flatnonzero(first_of_thread)
            lasts = np.append(firsts[1:] - 1, sel.size - 1)
            new[firsts] = sorted_lines[firsts] != sorted_lines[lasts]

        trigger_idx = order[new]
        trigger_pos = sel[trigger_idx]
        trigger_line = lines[trigger_idx]
        trigger_thread = tids[trigger_idx]

        # steady-state prefetch: one line `distance` ahead per new line
        target = trigger_line + distance
        ok = target < base + extent
        inject_lines.append(target[ok])
        inject_arrays.append(np.full(int(ok.sum()), aid, dtype=np.int8))
        inject_threads.append(trigger_thread[ok])
        inject_after.append(trigger_pos[ok])
        inject_rank.append(np.full(int(ok.sum()), distance, dtype=np.int64))

        # ramp at the start of each thread's stream: lines +1 .. +distance-1
        # (absent in steady state: the ramp ran in the first period)
        if periodic:
            continue
        ramp_idx = order[new & first_of_thread]
        ramp_pos = sel[ramp_idx]
        ramp_line = lines[ramp_idx]
        ramp_thread = tids[ramp_idx]
        for d in range(1, distance):
            target = ramp_line + d
            ok = target < base + extent
            inject_lines.append(target[ok])
            inject_arrays.append(np.full(int(ok.sum()), aid, dtype=np.int8))
            inject_threads.append(ramp_thread[ok])
            inject_after.append(ramp_pos[ok])
            inject_rank.append(np.full(int(ok.sum()), d, dtype=np.int64))

    if not inject_lines:
        return trace

    n = len(trace)
    after = np.concatenate(inject_after)
    all_lines = np.concatenate([trace.lines] + inject_lines)
    all_arrays = np.concatenate([trace.arrays] + inject_arrays)
    all_threads = np.concatenate([trace.threads.astype(np.int64)] + inject_threads)
    all_prefetch = np.concatenate(
        [trace.is_prefetch, np.ones(all_lines.shape[0] - n, dtype=bool)]
    )
    all_iteration = np.concatenate([trace.iteration, trace.iteration[after]])
    # demand ref i keeps key (i, 0); an injection after trigger i gets
    # (i, rank) so ramps stay ordered and injections follow their trigger
    anchor = np.concatenate([np.arange(n, dtype=np.int64), after])
    rank = np.concatenate([np.zeros(n, dtype=np.int64)] + inject_rank)
    order = np.lexsort((rank, anchor))
    return MemoryTrace(
        all_lines[order],
        all_arrays[order],
        all_threads[order],
        trace.layout,
        all_prefetch[order],
        all_iteration[order],
    )
