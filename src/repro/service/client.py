"""Synchronous client for the advisor daemon (stdlib ``http.client``).

>>> client = ServiceClient("127.0.0.1", 8787)
>>> envelope = client.advise(matrix=my_csr_matrix, num_threads=48)
>>> rec = Recommendation.from_dict(envelope["result"])

Every model call returns the response *envelope*::

    {"ok": true, "endpoint": "advise", "key": "...",
     "cached": null | "memory" | "disk" | "coalesced", "result": {...}}

so callers can see which tier served them (degraded answers additionally
carry ``"degraded": true``).  Failures raise :class:`ServiceError` with
the HTTP status and the server's structured error object — including a
response body that is not JSON at all (a proxy error page, a torn
response from a dying daemon), which becomes a ``BadResponseBody`` error
with the raw body attached rather than a bare ``JSONDecodeError``.

The client can self-heal: construct it with ``retries=N`` and transient
failures (connection errors, timeouts, 5xx responses, bad bodies) are
retried under a capped exponential backoff with full jitter
(:class:`repro.resilience.BackoffPolicy`), bounded by an optional
``deadline_seconds`` budget.  Clock, sleep and rng are injectable, so the
retry schedule is deterministic under test.  The default stays
``retries=0`` — wire behaviour is unchanged unless asked for.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import socket
import threading
import time

from ..obs.context import TRACE_HEADER, TraceContext
from ..resilience.retry import BackoffPolicy, call_with_retries
from ..spmv.csr import CSRMatrix


class ServiceError(Exception):
    """A non-2xx response from the daemon (or an unparseable response).

    ``error`` is the server's structured error object; for a response
    body that was not valid JSON it is synthesized client-side with
    ``type="BadResponseBody"`` and the raw body under ``"body"``.
    """

    def __init__(self, status: int, error: dict) -> None:
        super().__init__(f"[{status}] {error.get('type')}: {error.get('message')}")
        self.status = status
        self.error = error


#: Bytes of a non-JSON response body preserved on a BadResponseBody error.
_BODY_SNIPPET_BYTES = 2048


def _retryable(exc: BaseException) -> bool:
    """Transient failures worth another attempt.

    Connection-level trouble (``OSError`` covers refused/reset/timeout),
    HTTP-protocol trouble, 5xx responses, and unparseable bodies; a 4xx
    means the request itself is wrong and retrying cannot help.  Model
    requests are safe to retry: the daemon coalesces and caches by
    canonical key, so a duplicate costs at most one cache lookup.
    """
    if isinstance(exc, (OSError, http.client.HTTPException)):
        return True
    if isinstance(exc, ServiceError):
        return exc.status >= 500 or exc.error.get("type") == "BadResponseBody"
    return False


def matrix_payload(matrix: CSRMatrix) -> dict:
    """The inline-CSR request form of a :class:`CSRMatrix`."""
    return {
        "csr": {
            "num_rows": matrix.num_rows,
            "num_cols": matrix.num_cols,
            "rowptr": matrix.rowptr.tolist(),
            "colidx": matrix.colidx.tolist(),
            "values": matrix.values.tolist(),
        }
    }


def _matrix_field(
    matrix: CSRMatrix | dict | None, name: str | None, collection: str | None
) -> dict:
    if matrix is not None and name is not None:
        raise ValueError("pass either matrix= or name=, not both")
    if isinstance(matrix, CSRMatrix):
        return matrix_payload(matrix)
    if isinstance(matrix, dict):
        return matrix
    if name is not None:
        field = {"name": name}
        if collection is not None:
            field["collection"] = collection
        return field
    raise ValueError("a matrix= (CSRMatrix or payload dict) or name= is required")


class ServiceClient:
    """One daemon (or gateway) address with a persistent connection.

    The client keeps **one keep-alive connection per thread** (the
    daemon's warm path is a dictionary lookup, so TCP setup would
    dominate it) and transparently reconnects once when a pooled socket
    has gone stale — an idle keep-alive connection the server dropped
    looks exactly like a reset on the next call.  A fresh-connection
    failure still raises: the server really is unreachable.  Sharing one
    client across threads is safe; ``close()`` (or using the client as a
    context manager) drops every pooled connection.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0, *,
                 retries: int = 0,
                 backoff: BackoffPolicy | None = None,
                 deadline_seconds: float | None = None,
                 trace_context: TraceContext | None = None,
                 clock=time.monotonic,
                 sleep=time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.deadline_seconds = deadline_seconds
        #: when set, every request carries this hop as an X-Repro-Trace
        #: header — a JSON body with an explicit trace_context still wins
        self.trace_context = trace_context
        self._clock = clock
        self._sleep = sleep
        self._local = threading.local()
        self._pooled: list[http.client.HTTPConnection] = []
        self._pooled_lock = threading.Lock()

    # -- connection pool (one keep-alive connection per thread) --------
    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection; ``(conn, reused)``."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        self._local.conn = conn
        with self._pooled_lock:
            self._pooled.append(conn)
        return conn, False

    def _discard_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._pooled_lock:
            with contextlib.suppress(ValueError):
                self._pooled.remove(conn)
        with contextlib.suppress(Exception):
            conn.close()

    def close(self) -> None:
        """Drop every pooled connection (all threads)."""
        with self._pooled_lock:
            pooled, self._pooled = self._pooled, []
        for conn in pooled:
            with contextlib.suppress(Exception):
                conn.close()
        self._local = threading.local()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One request, retried per the client's policy.

        With ``retries=0`` (the default) this is a single attempt.
        Otherwise transient failures (see :func:`_retryable`) are retried
        under the backoff policy; when a ``deadline_seconds`` budget is
        set, a retry whose sleep would overrun it raises
        :class:`repro.resilience.DeadlineExceeded` instead of waiting.
        """
        if self.retries <= 0:
            return self._request_once(method, path, payload)
        return call_with_retries(
            lambda: self._request_once(method, path, payload),
            retries=self.retries,
            backoff=self.backoff,
            retryable=_retryable,
            deadline_seconds=self.deadline_seconds,
            clock=self._clock,
            sleep=self._sleep,
        )

    def _request_once(self, method: str, path: str, payload: dict | None) -> dict:
        body = None if payload is None else json.dumps(payload)
        raw, status = self._exchange(method, path, body)
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(status, {
                "type": "BadResponseBody",
                "message": f"response body is not JSON: {exc}",
                "body": raw[:_BODY_SNIPPET_BYTES],
            }) from None
        if status >= 400:
            raise ServiceError(status, envelope.get("error", {}))
        return envelope

    def _exchange(self, method: str, path: str,
                  body: str | None) -> tuple[str, int]:
        """One request/response on the pooled connection.

        A connection-level failure on a *reused* socket is retried once
        on a fresh connection — the server may simply have dropped the
        idle keep-alive between calls.  ``http.client`` auto-reopens a
        connection the server closed cleanly (``Connection: close``), so
        only abrupt resets reach the retry.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        if self.trace_context is not None:
            headers[TRACE_HEADER] = self.trace_context.to_header()
        while True:
            conn, reused = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                return response.read().decode(errors="replace"), response.status
            except (OSError, http.client.HTTPException):
                self._discard_connection()
                if not reused:
                    raise

    def _model(self, endpoint: str, matrix, name, collection, setup: dict,
               extra: dict) -> dict:
        payload: dict = {"matrix": _matrix_field(matrix, name, collection)}
        if setup:
            payload["setup"] = setup
        payload.update({k: v for k, v in extra.items() if v is not None})
        return self.request("POST", f"/{endpoint}", payload)

    # -- endpoints -----------------------------------------------------
    # `faults` ships a repro.resilience.plan/v1 object with the request
    # (chaos testing; the daemon refuses it without --allow-fault-injection)
    # `accuracy` is a fidelity-ladder error-bound SLO and `max_tier` caps
    # escalation (0..3); responses then carry a "fidelity" object
    def classify(self, matrix=None, *, name=None, collection=None,
                 way_options=None, timeout=None, trace=None, faults=None,
                 accuracy=None, max_tier=None, **setup) -> dict:
        return self._model("classify", matrix, name, collection, setup,
                           {"way_options": way_options, "timeout": timeout,
                            "trace": trace, "faults": faults,
                            "accuracy": accuracy, "max_tier": max_tier})

    def predict(self, matrix=None, *, name=None, collection=None,
                policies=None, timeout=None, trace=None, faults=None,
                accuracy=None, max_tier=None, **setup) -> dict:
        return self._model("predict", matrix, name, collection, setup,
                           {"policies": policies, "timeout": timeout,
                            "trace": trace, "faults": faults,
                            "accuracy": accuracy, "max_tier": max_tier})

    def advise(self, matrix=None, *, name=None, collection=None,
               way_options=None, consider_isolate_x=None,
               min_sector1_ways_with_prefetch=None, timeout=None,
               trace=None, faults=None, accuracy=None, max_tier=None,
               **setup) -> dict:
        return self._model("advise", matrix, name, collection, setup, {
            "way_options": way_options,
            "consider_isolate_x": consider_isolate_x,
            "min_sector1_ways_with_prefetch": min_sector1_ways_with_prefetch,
            "timeout": timeout,
            "trace": trace,
            "faults": faults,
            "accuracy": accuracy,
            "max_tier": max_tier,
        })

    def delta(self, base: str, *, inserts=None, deletes=None,
              accuracy=None, max_tier=None, timeout=None,
              trace=None) -> dict:
        """``POST /delta`` — patch a stored request with one edit batch.

        ``base`` is the ``"key"`` of a previous classify/predict/advise
        envelope (or of a previous delta response — edits chain);
        ``inserts`` is ``[[row, col, value?], ...]`` and ``deletes``
        ``[[row, col], ...]``.  The response envelope carries the derived
        ``"key"`` (the next base), the inner endpoint's result —
        byte-identical to re-submitting the edited matrix in full — and a
        ``"delta"`` object saying how it was priced.
        """
        payload: dict = {
            "base": base,
            "delta": {"inserts": inserts or [], "deletes": deletes or []},
        }
        payload.update({k: v for k, v in {
            "accuracy": accuracy, "max_tier": max_tier,
            "timeout": timeout, "trace": trace,
        }.items() if v is not None})
        return self.request("POST", "/delta", payload)

    def sweep(self, matrix=None, *, name=None, collection=None,
              timeout=None, trace=None, faults=None, **setup) -> dict:
        return self._model("sweep", matrix, name, collection, setup,
                           {"timeout": timeout, "trace": trace,
                            "faults": faults})

    def optimize(self, matrix=None, *, name=None, collection=None,
                 strategies=None, budget_seconds=None, seed=None,
                 accuracy=None, timeout=None, trace=None, faults=None,
                 **setup) -> dict:
        """Run the reordering search; the result carries the winning
        permutation pair plus tier-2-confirmed before/after predictions.

        ``accuracy`` here is the *confirmation* SLO (the search always
        screens at tiers 0/1); ``max_tier`` is not accepted.
        """
        return self._model("optimize", matrix, name, collection, setup,
                           {"strategies": strategies,
                            "budget_seconds": budget_seconds,
                            "seed": seed, "accuracy": accuracy,
                            "timeout": timeout, "trace": trace,
                            "faults": faults})

    # -- operations ----------------------------------------------------
    def metrics(self, format: str | None = None) -> dict | str:
        """The ``/metrics`` snapshot; text exposition for ``format="prometheus"``."""
        if format in (None, "json"):
            return self.request("GET", "/metrics")
        raw, status = self._exchange("GET", f"/metrics?format={format}", None)
        if status >= 400:
            raise ServiceError(status, json.loads(raw).get("error", {}))
        return raw

    def cache_peek(self, task: dict) -> dict:
        """``POST /cache/peek`` — does this daemon hold the task's key in
        a cache tier?  (Replicas use this between themselves for peer
        warm-cache fill; exposed here for tests and operators.)"""
        return self.request("POST", "/cache/peek", {"task": task})

    def batch(self, endpoint: str, items: list, *, window: int | None = None,
              timeout: float | None = None, **shared):
        """Stream a batch through the gateway's ``POST /batch``.

        ``items`` is a list of matrix fields (``{"name": ...}`` or
        ``{"csr": {...}}``); ``shared`` carries ``setup`` plus endpoint
        knobs applied to every item.  Yields one dict per NDJSON line as
        the gateway emits them — per-item results in completion order
        (each with its ``index``), then the closing ``{"batch": ...}``
        summary.  Streams use a dedicated connection (a half-read chunked
        response cannot be reused), opened lazily at first iteration.
        """
        payload: dict = {"endpoint": endpoint, "items": list(items)}
        if window is not None:
            payload["window"] = window
        payload.update({k: v for k, v in shared.items() if v is not None})
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("POST", "/batch", body=json.dumps(payload),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read().decode(errors="replace")
                try:
                    error = json.loads(raw).get("error", {})
                except json.JSONDecodeError as exc:
                    error = {"type": "BadResponseBody",
                             "message": f"response body is not JSON: {exc}",
                             "body": raw[:_BODY_SNIPPET_BYTES]}
                raise ServiceError(response.status, error)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    def wait_ready(self, deadline_seconds: float = 30.0,
                   poll_seconds: float = 0.1) -> None:
        """Block until ``/healthz`` answers (daemon start-up races)."""
        deadline = time.monotonic() + deadline_seconds
        while True:
            try:
                self.health()
                return
            except (OSError, socket.timeout, http.client.HTTPException):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_seconds)
