"""Synchronous client for the advisor daemon (stdlib ``http.client``).

>>> client = ServiceClient("127.0.0.1", 8787)
>>> envelope = client.advise(matrix=my_csr_matrix, num_threads=48)
>>> rec = Recommendation.from_dict(envelope["result"])

Every model call returns the response *envelope*::

    {"ok": true, "endpoint": "advise", "key": "...",
     "cached": null | "memory" | "disk" | "coalesced", "result": {...}}

so callers can see which tier served them.  Failures raise
:class:`ServiceError` with the HTTP status and the server's structured
error object.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from ..spmv.csr import CSRMatrix


class ServiceError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, error: dict) -> None:
        super().__init__(f"[{status}] {error.get('type')}: {error.get('message')}")
        self.status = status
        self.error = error


def matrix_payload(matrix: CSRMatrix) -> dict:
    """The inline-CSR request form of a :class:`CSRMatrix`."""
    return {
        "csr": {
            "num_rows": matrix.num_rows,
            "num_cols": matrix.num_cols,
            "rowptr": matrix.rowptr.tolist(),
            "colidx": matrix.colidx.tolist(),
            "values": matrix.values.tolist(),
        }
    }


def _matrix_field(
    matrix: CSRMatrix | dict | None, name: str | None, collection: str | None
) -> dict:
    if matrix is not None and name is not None:
        raise ValueError("pass either matrix= or name=, not both")
    if isinstance(matrix, CSRMatrix):
        return matrix_payload(matrix)
    if isinstance(matrix, dict):
        return matrix
    if name is not None:
        field = {"name": name}
        if collection is not None:
            field["collection"] = collection
        return field
    raise ValueError("a matrix= (CSRMatrix or payload dict) or name= is required")


class ServiceClient:
    """One daemon address; one HTTP request per call (Connection: close)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            envelope = json.loads(response.read().decode())
            if response.status >= 400:
                raise ServiceError(response.status, envelope.get("error", {}))
            return envelope
        finally:
            conn.close()

    def _model(self, endpoint: str, matrix, name, collection, setup: dict,
               extra: dict) -> dict:
        payload: dict = {"matrix": _matrix_field(matrix, name, collection)}
        if setup:
            payload["setup"] = setup
        payload.update({k: v for k, v in extra.items() if v is not None})
        return self.request("POST", f"/{endpoint}", payload)

    # -- endpoints -----------------------------------------------------
    def classify(self, matrix=None, *, name=None, collection=None,
                 way_options=None, timeout=None, trace=None, **setup) -> dict:
        return self._model("classify", matrix, name, collection, setup,
                           {"way_options": way_options, "timeout": timeout,
                            "trace": trace})

    def predict(self, matrix=None, *, name=None, collection=None,
                policies=None, timeout=None, trace=None, **setup) -> dict:
        return self._model("predict", matrix, name, collection, setup,
                           {"policies": policies, "timeout": timeout,
                            "trace": trace})

    def advise(self, matrix=None, *, name=None, collection=None,
               way_options=None, consider_isolate_x=None,
               min_sector1_ways_with_prefetch=None, timeout=None,
               trace=None, **setup) -> dict:
        return self._model("advise", matrix, name, collection, setup, {
            "way_options": way_options,
            "consider_isolate_x": consider_isolate_x,
            "min_sector1_ways_with_prefetch": min_sector1_ways_with_prefetch,
            "timeout": timeout,
            "trace": trace,
        })

    def sweep(self, matrix=None, *, name=None, collection=None,
              timeout=None, trace=None, **setup) -> dict:
        return self._model("sweep", matrix, name, collection, setup,
                           {"timeout": timeout, "trace": trace})

    # -- operations ----------------------------------------------------
    def metrics(self, format: str | None = None) -> dict | str:
        """The ``/metrics`` snapshot; text exposition for ``format="prometheus"``."""
        if format in (None, "json"):
            return self.request("GET", "/metrics")
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/metrics?format={format}")
            response = conn.getresponse()
            text = response.read().decode()
            if response.status >= 400:
                raise ServiceError(response.status,
                                   json.loads(text).get("error", {}))
            return text
        finally:
            conn.close()

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def shutdown(self) -> dict:
        return self.request("POST", "/shutdown")

    def wait_ready(self, deadline_seconds: float = 30.0,
                   poll_seconds: float = 0.1) -> None:
        """Block until ``/healthz`` answers (daemon start-up races)."""
        deadline = time.monotonic() + deadline_seconds
        while True:
            try:
                self.health()
                return
            except (OSError, socket.timeout, http.client.HTTPException):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_seconds)
