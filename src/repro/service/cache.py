"""Two-tier result cache of the advisor service.

Tier 1 is an in-memory LRU holding canonical-JSON result payloads under a
TTL and a byte budget.  Tier 2 is the on-disk cache directory the sweep
engine already uses (``.repro_cache``): ``sweep`` results are stored in
the exact record format of
:func:`repro.experiments.common.store_record` — keyed by the PR-1
``ExperimentSetup.cache_key`` — so daemon and batch sweeps share work,
while the cheaper endpoints persist their canonical payloads as
``<request_key>.<endpoint>.json`` next to them.

A disk hit is promoted into the memory tier, so a warm key costs one
dictionary lookup.  All counters needed by ``/metrics`` (hits and misses
per tier, evictions, expirations, resident bytes) are kept here.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable


@dataclass
class _Entry:
    payload: bytes
    expires_at: float


class MemoryLRU:
    """Byte-budgeted LRU over canonical JSON payloads with per-entry TTL."""

    def __init__(
        self,
        max_bytes: int = 64 * 2**20,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self._clock() >= entry.expires_at:
            self._drop(key)
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.payload

    def put(self, key: str, payload: bytes) -> None:
        if key in self._entries:
            self._drop(key)
        if len(payload) > self.max_bytes:
            return  # a single oversized result would evict everything else
        self._entries[key] = _Entry(payload, self._clock() + self.ttl_seconds)
        self.current_bytes += len(payload)
        while self.current_bytes > self.max_bytes and self._entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key)
        self.current_bytes -= len(entry.payload)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
        }


class TieredResultCache:
    """Memory LRU layered over the sweep engine's disk records."""

    def __init__(
        self,
        cache_dir: str | Path | None,
        max_bytes: int = 64 * 2**20,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.memory = MemoryLRU(max_bytes=max_bytes, ttl_seconds=ttl_seconds, clock=clock)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_corrupt = 0

    def get(
        self, key: str, disk_path: Path | None, corrupt_read: bool = False
    ) -> tuple[dict | None, str | None]:
        """Look a key up; returns ``(result, tier)`` with tier in
        {"memory", "disk", None}.

        A disk entry that does not parse (mid-write crash, bit rot, or an
        injected ``cache.disk_read`` corruption when ``corrupt_read``) is
        *quarantined* — renamed to ``<entry>.corrupt`` and counted — and
        reported as a miss, so the caller re-evaluates and the next
        ``put`` rewrites a healthy entry.  Corruption therefore costs one
        evaluation, never a failed request.
        """
        payload = self.memory.get(key)
        if payload is not None:
            return json.loads(payload), "memory"
        if disk_path is None or self.cache_dir is None:
            return None, None
        if not disk_path.exists():
            self.disk_misses += 1
            return None, None
        text = disk_path.read_text()
        if corrupt_read:
            # simulate a torn write: the tail of the entry never made it
            text = text[: max(0, len(text) // 2)]
        try:
            result = json.loads(text)
        except json.JSONDecodeError:
            self.disk_corrupt += 1
            disk_path.replace(disk_path.with_name(disk_path.name + ".corrupt"))
            return None, None
        self.disk_hits += 1
        return result, "disk"

    def put(
        self,
        key: str,
        canonical_payload: bytes,
        disk_path: Path | None,
        disk_text: str | None = None,
    ) -> None:
        """Store a result in both tiers.

        ``disk_text`` overrides the bytes written to disk — the daemon
        passes the sweep-record serialization there so the file stays
        byte-compatible with :func:`~repro.experiments.common.store_record`.
        """
        self.memory.put(key, canonical_payload)
        if disk_path is not None and self.cache_dir is not None:
            disk_path.write_text(
                disk_text if disk_text is not None
                else canonical_payload.decode()
            )

    def promote(self, key: str, canonical_payload: bytes) -> None:
        """Copy a disk hit into the memory tier."""
        self.memory.put(key, canonical_payload)

    def stats(self) -> dict:
        return {
            "memory": self.memory.stats(),
            "disk": {
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "corrupt": self.disk_corrupt,
                "enabled": self.cache_dir is not None,
            },
        }
