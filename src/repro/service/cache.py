"""Two-tier result cache of the advisor service.

Tier 1 is an in-memory LRU holding canonical-JSON result payloads under a
TTL and a byte budget.  Tier 2 is the on-disk cache directory the sweep
engine already uses (``.repro_cache``): ``sweep`` results are stored in
the exact record format of
:func:`repro.experiments.common.store_record` — keyed by the PR-1
``ExperimentSetup.cache_key`` — so daemon and batch sweeps share work,
while the cheaper endpoints persist their canonical payloads as
``<request_key>.<endpoint>.json`` next to them.

A disk hit is promoted into the memory tier, so a warm key costs one
dictionary lookup.  All counters needed by ``/metrics`` (hits and misses
per tier, evictions, expirations, resident bytes) are kept here.

Long-lived replicas grow the disk tier without bound — every distinct
request key leaves a file behind.  :func:`gc_sweep` reclaims it under a
TTL and/or a byte budget (oldest first), **never** touching the
``*.failure.json`` / ``*.corrupt`` quarantine records that document
failed or corrupted evaluations.  Run it by hand::

    python -m repro.service.cache --gc --dir .repro_cache \
        --max-age 604800 --max-bytes 1073741824

or let the daemon run it periodically (``--gc-interval`` plus
``--gc-max-age``/``--gc-max-bytes`` on ``python -m repro.service``).
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

#: Suffixes the GC must never delete: failure records steer sweep
#: skip-and-replay, ``.corrupt`` files are quarantined evidence.
QUARANTINE_SUFFIXES = (".failure.json", ".corrupt")


@dataclass
class _Entry:
    payload: bytes
    expires_at: float


class MemoryLRU:
    """Byte-budgeted LRU over canonical JSON payloads with per-entry TTL."""

    def __init__(
        self,
        max_bytes: int = 64 * 2**20,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self._clock() >= entry.expires_at:
            self._drop(key)
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.payload

    def put(self, key: str, payload: bytes) -> None:
        if key in self._entries:
            self._drop(key)
        if len(payload) > self.max_bytes:
            return  # a single oversized result would evict everything else
        self._entries[key] = _Entry(payload, self._clock() + self.ttl_seconds)
        self.current_bytes += len(payload)
        while self.current_bytes > self.max_bytes and self._entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key)
        self.current_bytes -= len(entry.payload)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
        }


class TieredResultCache:
    """Memory LRU layered over the sweep engine's disk records."""

    def __init__(
        self,
        cache_dir: str | Path | None,
        max_bytes: int = 64 * 2**20,
        ttl_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.memory = MemoryLRU(max_bytes=max_bytes, ttl_seconds=ttl_seconds, clock=clock)
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_corrupt = 0

    def get(
        self, key: str, disk_path: Path | None, corrupt_read: bool = False
    ) -> tuple[dict | None, str | None]:
        """Look a key up; returns ``(result, tier)`` with tier in
        {"memory", "disk", None}.

        A disk entry that does not parse (mid-write crash, bit rot, or an
        injected ``cache.disk_read`` corruption when ``corrupt_read``) is
        *quarantined* — renamed to ``<entry>.corrupt`` and counted — and
        reported as a miss, so the caller re-evaluates and the next
        ``put`` rewrites a healthy entry.  Corruption therefore costs one
        evaluation, never a failed request.
        """
        payload = self.memory.get(key)
        if payload is not None:
            return json.loads(payload), "memory"
        if disk_path is None or self.cache_dir is None:
            return None, None
        if not disk_path.exists():
            self.disk_misses += 1
            return None, None
        text = disk_path.read_text()
        if corrupt_read:
            # simulate a torn write: the tail of the entry never made it
            text = text[: max(0, len(text) // 2)]
        try:
            result = json.loads(text)
        except json.JSONDecodeError:
            self.disk_corrupt += 1
            disk_path.replace(disk_path.with_name(disk_path.name + ".corrupt"))
            return None, None
        self.disk_hits += 1
        return result, "disk"

    def put(
        self,
        key: str,
        canonical_payload: bytes,
        disk_path: Path | None,
        disk_text: str | None = None,
    ) -> None:
        """Store a result in both tiers.

        ``disk_text`` overrides the bytes written to disk — the daemon
        passes the sweep-record serialization there so the file stays
        byte-compatible with :func:`~repro.experiments.common.store_record`.
        """
        self.memory.put(key, canonical_payload)
        if disk_path is not None and self.cache_dir is not None:
            disk_path.write_text(
                disk_text if disk_text is not None
                else canonical_payload.decode()
            )

    def promote(self, key: str, canonical_payload: bytes) -> None:
        """Copy a disk hit into the memory tier."""
        self.memory.put(key, canonical_payload)

    def stats(self) -> dict:
        return {
            "memory": self.memory.stats(),
            "disk": {
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "corrupt": self.disk_corrupt,
                "enabled": self.cache_dir is not None,
            },
        }


def gc_sweep(
    cache_dir: str | Path,
    max_age_seconds: float | None = None,
    max_bytes: int | None = None,
    clock: Callable[[], float] = time.time,
) -> dict:
    """Reclaim disk-cache space under a TTL and/or a byte budget.

    Two passes over the regular files directly in ``cache_dir``:

    1. every entry older than ``max_age_seconds`` (by mtime) is deleted;
    2. if the survivors still exceed ``max_bytes``, the oldest entries
       are deleted until the total fits.

    Quarantine files (``*.failure.json``, ``*.corrupt``) are never
    deleted and never counted against the budget — they are evidence,
    not cache.  Entries that vanish mid-sweep (a concurrent GC or an
    operator ``rm``) are skipped, not errors.

    Returns a stats dict: scanned / deleted counts and bytes, kept
    counts and bytes, and how many quarantine files were preserved.
    """
    if max_age_seconds is not None and max_age_seconds < 0:
        raise ValueError("max_age_seconds must be non-negative")
    if max_bytes is not None and max_bytes < 0:
        raise ValueError("max_bytes must be non-negative")
    root = Path(cache_dir)
    stats = {
        "scanned": 0,
        "deleted": 0,
        "deleted_bytes": 0,
        "expired": 0,
        "evicted": 0,
        "kept": 0,
        "kept_bytes": 0,
        "quarantined": 0,
    }
    if not root.is_dir():
        return stats

    now = clock()
    entries: list[tuple[float, int, Path]] = []
    for path in root.iterdir():
        if not path.is_file():
            continue
        if path.name.endswith(QUARANTINE_SUFFIXES):
            stats["quarantined"] += 1
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        stats["scanned"] += 1
        entries.append((stat.st_mtime, stat.st_size, path))

    def _delete(size: int, path: Path, reason: str) -> None:
        try:
            path.unlink()
        except OSError:
            return
        stats["deleted"] += 1
        stats["deleted_bytes"] += size
        stats[reason] += 1

    survivors: list[tuple[float, int, Path]] = []
    for mtime, size, path in entries:
        if max_age_seconds is not None and now - mtime > max_age_seconds:
            _delete(size, path, "expired")
        else:
            survivors.append((mtime, size, path))

    survivors.sort()  # oldest mtime first
    total = sum(size for _, size, _ in survivors)
    if max_bytes is not None:
        for mtime, size, path in survivors:
            if total <= max_bytes:
                break
            _delete(size, path, "evicted")
            total -= size

    deleted = stats["expired"] + stats["evicted"]
    stats["kept"] = stats["scanned"] - deleted
    stats["kept_bytes"] = sum(
        size for _, size, path in survivors if path.exists()
    )
    return stats


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.service.cache --gc`` — one GC sweep, stats on
    stdout as JSON."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.cache",
        description="Disk-cache garbage collection for the advisor service.",
    )
    parser.add_argument("--gc", action="store_true", required=True,
                        help="run one GC sweep (required; guards against "
                             "accidental invocation)")
    parser.add_argument("--dir", default=".repro_cache",
                        help="cache directory to sweep")
    parser.add_argument("--max-age", type=float, default=None, metavar="SECONDS",
                        help="delete entries older than this many seconds")
    parser.add_argument("--max-bytes", type=int, default=None,
                        help="then delete oldest entries until the total fits")
    args = parser.parse_args(argv)
    if args.max_age is None and args.max_bytes is None:
        parser.error("give --max-age and/or --max-bytes (otherwise the "
                     "sweep would delete nothing)")
    stats = gc_sweep(args.dir, max_age_seconds=args.max_age,
                     max_bytes=args.max_bytes)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
