"""Minimal HTTP/1.1 glue shared by the advisor daemon and the gateway.

One request parser and one response writer, with **keep-alive** as the
default (HTTP/1.1 semantics): a connection handler loops over
:func:`read_request` until the peer half-closes or asks for
``Connection: close``, and :func:`respond` only closes when told to.
Persistent connections matter here — the warm path is a dictionary
lookup, so the TCP+handshake round trip would otherwise dominate
(see ``benchmarks/bench_service.py``).

The parser is deliberately small: no pipelining guarantees beyond
serial request/response on one socket, no request chunked bodies, no
TLS — the service's unit of work is a model evaluation, not a socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

__all__ = ["ParsedRequest", "PayloadTooLarge", "read_request", "respond",
           "start_chunked_response", "write_chunk", "finish_chunked_response",
           "request_bytes", "request_json"]

REASONS = {200: "OK", 400: "Bad Request", 403: "Forbidden",
           404: "Not Found", 405: "Method Not Allowed",
           413: "Payload Too Large", 500: "Internal Server Error",
           502: "Bad Gateway", 503: "Service Unavailable",
           504: "Gateway Timeout"}


class PayloadTooLarge(Exception):
    """A request body above the configured cap; carries the target path."""

    def __init__(self, target: str, limit: int) -> None:
        super().__init__(f"body exceeds {limit} bytes")
        self.target = target
        self.limit = limit


@dataclass
class ParsedRequest:
    method: str
    target: str
    headers: dict[str, str]
    body: bytes
    #: did the client ask to drop the connection after this exchange?
    close: bool

    @property
    def malformed(self) -> bool:
        return not self.method


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> ParsedRequest | None:
    """Parse one request off the stream.

    Returns ``None`` at a clean end of stream (the peer closed between
    requests), a :class:`ParsedRequest` with ``malformed=True`` (empty
    method) on an unparseable request line, and raises
    :class:`PayloadTooLarge` when the declared body exceeds the cap.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin1").split()
    if len(parts) < 2:
        return ParsedRequest("", "", {}, b"", close=True)
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    if length > max_body_bytes:
        # the oversized body is unread; the connection cannot be reused
        raise PayloadTooLarge(target, max_body_bytes)
    body = await reader.readexactly(length) if length else b""
    close = headers.get("connection", "").lower() == "close"
    return ParsedRequest(method, target, headers, body, close=close)


def _encode(payload: dict | str | bytes) -> tuple[bytes, str]:
    if isinstance(payload, bytes):
        return payload, "application/json"
    if isinstance(payload, str):
        return payload.encode(), "text/plain; version=0.0.4; charset=utf-8"
    return json.dumps(payload).encode(), "application/json"


async def respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | str | bytes,
    close: bool = False,
) -> None:
    """Write one response; ``bytes`` payloads are relayed verbatim as
    JSON (the gateway's passthrough), ``str`` as Prometheus text."""
    data, content_type = _encode(payload)
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(data)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
    ).encode("latin1")
    writer.write(head + data)
    await writer.drain()


async def start_chunked_response(
    writer: asyncio.StreamWriter,
    status: int = 200,
    content_type: str = "application/x-ndjson",
) -> None:
    """Open a chunked (streaming) response; follow with
    :func:`write_chunk` calls and one :func:`finish_chunked_response`.

    Streaming responses always close the connection afterwards — a
    half-consumed stream leaves the socket unusable for a next request.
    """
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Transfer-Encoding: chunked\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin1")
    writer.write(head)
    await writer.drain()


async def write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    """One chunk; ``drain()`` here is the batch window's backpressure."""
    if not data:
        return
    writer.write(f"{len(data):x}\r\n".encode("latin1") + data + b"\r\n")
    await writer.drain()


async def finish_chunked_response(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()


# ----------------------------------------------------------------------
# async client side (gateway forwards, peer cache peeks, health probes)
# ----------------------------------------------------------------------

async def request_bytes(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    timeout: float | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, bytes]:
    """One ``Connection: close`` request from inside an event loop.

    Returns ``(status, body_bytes)``; raises ``OSError`` /
    ``asyncio.TimeoutError`` / ``asyncio.IncompleteReadError`` on
    connection trouble (callers fail over or degrade).  Chunked response
    bodies are de-chunked.  The stdlib has no async HTTP client, and
    running ``http.client`` in a thread per forward would serialize the
    gateway on its thread pool — hence this ~40-line one.
    """

    async def _exchange() -> tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            extra = "".join(
                f"{name}: {value}\r\n"
                for name, value in (headers or {}).items()
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode("latin1")
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split()
            if len(parts) < 2:
                raise ConnectionError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            response_headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            if response_headers.get("transfer-encoding", "").lower() == "chunked":
                chunks = []
                while True:
                    size_line = await reader.readline()
                    size = int(size_line.strip() or b"0", 16)
                    if size == 0:
                        await reader.readline()
                        break
                    chunks.append(await reader.readexactly(size))
                    await reader.readexactly(2)  # trailing CRLF
                return status, b"".join(chunks)
            length = response_headers.get("content-length")
            if length is not None:
                return status, await reader.readexactly(int(length))
            return status, await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    if timeout is None:
        return await _exchange()
    return await asyncio.wait_for(_exchange(), timeout)


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout: float | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict]:
    """:func:`request_bytes` with JSON bodies both ways."""
    body = b"" if payload is None else json.dumps(payload).encode()
    status, raw = await request_bytes(host, port, method, path, body, timeout,
                                      headers)
    return status, json.loads(raw or b"{}")

