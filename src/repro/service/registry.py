"""Stored-task registry: the base records ``POST /delta`` patches against.

A delta request references an earlier request by its cache key; to
derive the edited task the daemon must recover the *canonical task* that
key was computed from.  The registry records it at request time — a
bounded in-memory map fronting optional ``<key>.task.json`` files next
to the result cache — and revalidates on the way out: a stored task
whose recomputed :func:`~repro.service.protocol.request_key` no longer
matches its file name (disk tampering, a truncated write, a format
drift across versions) is treated as absent rather than silently
patching the wrong base.

Only the computation-defining fields are stored (volatile flags like
``trace_context``/``timeout`` are stripped first), so the stored bytes
reproduce the key exactly and registering the same request twice is
idempotent.  Disk entries use the ``.task.json`` suffix — distinct from
the result entries' ``.<endpoint>.json`` — and are subject to the same
GC sweep as results: an expired base simply 404s and the client
re-submits the full matrix once.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path

from ..analysis.report import canonical_json

#: Fields stripped before storage so the stored bytes re-derive the key.
VOLATILE_FIELDS = ("timeout", "trace", "trace_context", "faults", "peer",
                   "accuracy", "max_tier", "delta_budget",
                   "x_test_sleep", "x_test_crash")


def stored_form(task: dict) -> dict:
    """The computation-defining subset of a canonical task."""
    return {k: v for k, v in task.items() if k not in VOLATILE_FIELDS}


class TaskRegistry:
    """Bounded memory map plus optional disk persistence of stored tasks."""

    def __init__(self, cache_dir: str | Path | None,
                 capacity: int = 4096) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.capacity = capacity
        self._memory: OrderedDict[str, dict] = OrderedDict()

    def _path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.task.json"

    def put(self, key: str, task: dict) -> None:
        """Record a task under its request key (idempotent)."""
        stored = stored_form(task)
        known = key in self._memory
        self._memory[key] = stored
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
        path = self._path(key)
        if path is not None and not known and not path.exists():
            path.write_text(canonical_json(stored))

    def get(self, key: str) -> dict | None:
        """The stored task of a key, or ``None`` when absent/unparseable."""
        task = self._memory.get(key)
        if task is not None:
            self._memory.move_to_end(key)
            return task
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            task = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(task, dict):
            return None
        self._memory[key] = task
        return task
