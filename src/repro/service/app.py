"""The advisor daemon: asyncio JSON-over-HTTP on the sweep engine's pool.

Request lifecycle::

    HTTP request -> normalize (protocol) -> request_key
        -> two-tier cache lookup (memory LRU, then .repro_cache disk)
        -> in-flight coalescing (duplicate keys share one future)
        -> process-pool evaluation (bounded by --jobs, per-request
           timeout, structured fault isolation)
        -> cache fill + JSON response

Everything CPU-bound runs in pool workers via
:func:`repro.service.worker.evaluate`; the event loop only parses,
hashes, and shuttles bytes, so the daemon stays responsive while a
multi-second sweep is in flight.  A worker that raises returns a
structured error; a worker that *dies* breaks the pool, which is
rebuilt, counted in ``/metrics``, and surfaced as a 500 — subsequent
requests succeed.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``): the repo is stdlib-only, and the service's unit of work is a
model evaluation, not a socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from pathlib import Path

from urllib.parse import parse_qs

from ..analysis.report import canonical_json
from ..experiments.common import cache_entry_path
from ..experiments.pool import fork_executor
from ..obs.prometheus import render_prometheus
from .cache import TieredResultCache
from .metrics import ServiceMetrics
from .protocol import (
    ENDPOINTS,
    RequestError,
    matrix_name,
    normalize_request,
    request_key,
    setup_from_task,
)
from .worker import evaluate

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 504: "Gateway Timeout"}


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon tunables (CLI flags map 1:1)."""

    jobs: int = 2
    cache_dir: str | None = ".repro_cache"
    memory_ttl_seconds: float = 300.0
    memory_max_bytes: int = 64 * 2**20
    request_timeout: float = 120.0
    max_body_bytes: int = 64 * 2**20
    #: honour ``x_test_sleep`` / ``x_test_crash`` fault-injection fields
    #: (tests and the CI smoke job only)
    test_hooks: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


class _EvaluationError(Exception):
    """A failed evaluation, carrying the HTTP status and structured detail."""

    def __init__(self, status: int, detail: dict) -> None:
        super().__init__(detail.get("message", ""))
        self.status = status
        self.detail = detail


#: Worker-side exception types that indicate a bad request, not a bad server.
_CLIENT_ERRORS = frozenset({"ValueError", "TypeError", "KeyError"})


class LocalityService:
    """Transport-agnostic request handling: cache, coalescing, pool."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.cache = TieredResultCache(
            config.cache_dir,
            max_bytes=config.memory_max_bytes,
            ttl_seconds=config.memory_ttl_seconds,
        )
        self.metrics = ServiceMetrics(jobs=config.jobs)
        self._executor = fork_executor(config.jobs)
        self._slots = asyncio.Semaphore(config.jobs)
        self._inflight: dict[str, asyncio.Future] = {}
        self.shutdown_event = asyncio.Event()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def handle_request(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str, bool]:
        """Route one request; returns (status, payload, shutdown?).

        A ``str`` payload is served verbatim as Prometheus text exposition
        (``/metrics?format=prometheus``); dicts are served as JSON.
        """
        path, _, query_string = path.partition("?")
        path = path.rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                return 200, {"ok": True, "status": "healthy"}, False
            if path == "/metrics":
                fmt = (parse_qs(query_string).get("format") or ["json"])[-1]
                if fmt not in ("json", "prometheus"):
                    return 400, _error_payload(
                        "metrics", "BadFormat",
                        f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')",
                    ), False
                snapshot = self.metrics.snapshot(self.cache.stats())
                if fmt == "prometheus":
                    return 200, render_prometheus(snapshot), False
                return 200, snapshot, False
            return 404, _error_payload(path, "NotFound", f"no such path {path!r}"), False
        if method != "POST":
            return 405, _error_payload(path, "MethodNotAllowed",
                                       f"{method} not supported"), False
        if path == "/shutdown":
            return 200, {"ok": True, "status": "shutting down"}, True
        endpoint = path.lstrip("/")
        if endpoint not in ENDPOINTS:
            return 404, _error_payload(endpoint, "NotFound",
                                       f"no such endpoint {endpoint!r}"), False
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_payload(endpoint, "BadJSON", str(exc)), False
        status, response = await self._handle_model(endpoint, payload)
        return status, response, False

    # ------------------------------------------------------------------
    # model endpoints
    # ------------------------------------------------------------------
    async def _handle_model(self, endpoint: str, payload: object) -> tuple[int, dict]:
        started = time.perf_counter()
        try:
            task = normalize_request(endpoint, payload)
            if not self.config.test_hooks:
                task.pop("x_test_sleep", None)
                task.pop("x_test_crash", None)
            key = request_key(task)
        except RequestError as exc:
            self.metrics.observe_request(endpoint, "error",
                                         time.perf_counter() - started)
            return exc.status, _error_payload(endpoint, "RequestError", str(exc))

        try:
            result, cached, trace = await self._resolve(endpoint, task, key)
        except _EvaluationError as exc:
            self.metrics.observe_request(endpoint, "error",
                                         time.perf_counter() - started)
            detail = dict(exc.detail)
            detail.setdefault("type", "EvaluationError")
            return exc.status, {"ok": False, "endpoint": endpoint, "key": key,
                                "error": detail}
        self.metrics.observe_request(endpoint, "ok", time.perf_counter() - started)
        if cached in ("memory", "disk"):
            self.metrics.cache_served[endpoint][cached] += 1
        response = {"ok": True, "endpoint": endpoint, "key": key,
                    "cached": cached, "result": result}
        if task.get("trace"):
            # best-effort: null when the result came from a cache tier or
            # piggybacked on another request's in-flight evaluation
            response["trace"] = trace
        return 200, response

    async def _resolve(
        self, endpoint: str, task: dict, key: str
    ) -> tuple[dict, str | None, dict | None]:
        """Resolve a key via cache, coalescing, or a fresh evaluation.

        Returns ``(result, cache_tier, span_tree)``; the span tree is only
        non-None for a fresh evaluation of a ``"trace": true`` task.
        """
        disk_path, disk_format = self._disk_entry(task, key)
        result, tier = self.cache.get(key, disk_path)
        if result is not None:
            if tier == "disk":
                self.cache.promote(key, canonical_json(result).encode())
            return result, tier, None

        pending = self._inflight.get(key)
        if pending is not None:
            self.metrics.coalesced[endpoint] += 1
            return await asyncio.shield(pending), "coalesced", None

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            payload = await self._evaluate(endpoint, task)
            result = payload["result"]
            future.set_result(result)
        except _EvaluationError as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved even with no waiters
            raise
        finally:
            self._inflight.pop(key, None)
        self.metrics.observe_phases(endpoint, payload.get("phase_seconds", {}))
        self.cache.put(
            key,
            canonical_json(result).encode(),
            disk_path,
            # sweep records keep the store_record byte format so batch
            # sweeps and the daemon share one disk cache
            disk_text=json.dumps(result) if disk_format == "record" else None,
        )
        return result, None, payload.get("trace")

    def _disk_entry(self, task: dict, key: str) -> tuple[Path | None, str | None]:
        if self.cache.cache_dir is None:
            return None, None
        if task["endpoint"] == "sweep":
            setup = setup_from_task(task)
            return (
                cache_entry_path(self.cache.cache_dir, setup, matrix_name(task)),
                "record",
            )
        return self.cache.cache_dir / f"{key}.{task['endpoint']}.json", "canonical"

    async def _evaluate(self, endpoint: str, task: dict) -> dict:
        """One pool evaluation with queueing, timeout and fault isolation."""
        timeout = task.get("timeout", self.config.request_timeout)
        self.metrics.enqueue()
        try:
            await self._slots.acquire()
        finally:
            self.metrics.dequeue()
        try:
            self.metrics.worker_started()
            self.metrics.evaluations[endpoint] += 1
            loop = asyncio.get_running_loop()
            try:
                payload = await asyncio.wait_for(
                    loop.run_in_executor(self._executor, evaluate, task), timeout
                )
            except asyncio.TimeoutError:
                # the worker cannot be interrupted; it is abandoned to
                # finish in the background (same policy as the sweep engine)
                self.metrics.timeouts += 1
                raise _EvaluationError(504, {
                    "type": "TimeoutError",
                    "message": f"evaluation exceeded the {timeout:.3g}s budget",
                }) from None
            except BrokenExecutor:
                self.metrics.worker_restarts += 1
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = fork_executor(self.config.jobs)
                raise _EvaluationError(500, {
                    "type": "WorkerCrashed",
                    "message": "worker process died; pool restarted",
                }) from None
        finally:
            self.metrics.worker_finished()
            self._slots.release()
        if "error" in payload:
            detail = payload["error"]
            status = 400 if detail.get("type") in _CLIENT_ERRORS else 500
            raise _EvaluationError(status, detail)
        return payload

    # ------------------------------------------------------------------
    # HTTP glue
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        shutdown = False
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin1").split()
            if len(parts) < 2:
                await _respond(writer, 400,
                               _error_payload("", "BadRequest", "malformed request line"))
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            if length > self.config.max_body_bytes:
                await _respond(writer, 413,
                               _error_payload(target, "PayloadTooLarge",
                                              f"body exceeds {self.config.max_body_bytes} bytes"))
                return
            body = await reader.readexactly(length) if length else b""
            status, payload, shutdown = await self.handle_request(method, target, body)
            await _respond(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            if shutdown:
                self.shutdown_event.set()

    def close(self) -> None:
        # wait=True: letting idle workers exit here avoids a noisy atexit
        # race in concurrent.futures; abandoned (timed-out) workers are the
        # exception and at worst delay shutdown by their remaining runtime
        self._executor.shutdown(wait=True, cancel_futures=True)


def _error_payload(endpoint: str, error_type: str, message: str) -> dict:
    return {"ok": False, "endpoint": endpoint,
            "error": {"type": error_type, "message": message}}


async def _respond(
    writer: asyncio.StreamWriter, status: int, payload: dict | str
) -> None:
    if isinstance(payload, str):
        data = payload.encode()
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        data = json.dumps(payload).encode()
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(data)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin1")
    writer.write(head + data)
    await writer.drain()


async def run_server(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8787,
    ready=None,
    announce: bool = True,
) -> None:
    """Run the daemon until ``/shutdown`` or SIGINT/SIGTERM.

    ``port=0`` binds an ephemeral port; the chosen one is announced on
    stdout as ``repro-service listening on http://HOST:PORT`` so wrappers
    (benchmarks, the CI smoke job) can parse it.  ``ready``, if given, is
    called with ``(service, host, actual_port, loop)`` once the socket is
    bound — :class:`ServiceThread` uses it.
    """
    config = config or ServiceConfig()
    service = LocalityService(config)
    server = await asyncio.start_server(service.handle_connection, host, port)
    actual_port = server.sockets[0].getsockname()[1]
    if announce:
        print(f"repro-service listening on http://{host}:{actual_port}", flush=True)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, service.shutdown_event.set)
    if ready is not None:
        ready(service, host, actual_port, loop)
    try:
        async with server:
            await service.shutdown_event.wait()
    finally:
        service.close()


class ServiceThread:
    """An in-process daemon on a background thread (tests, benches, tours).

    >>> with ServiceThread(ServiceConfig(jobs=1, cache_dir=None)) as (host, port):
    ...     ServiceClient(host, port).health()
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or ServiceConfig()
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self.service: LocalityService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None

    def _on_ready(self, service, host, port, loop) -> None:
        self.service = service
        self.address = (host, port)
        self._loop = loop
        self._ready.set()

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                run_server(self.config, self._host, self._port,
                           ready=self._on_ready, announce=False)
            ),
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self.service is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.service.shutdown_event.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
