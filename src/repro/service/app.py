"""The advisor daemon: asyncio JSON-over-HTTP on the sweep engine's pool.

Request lifecycle::

    HTTP request -> normalize (protocol) -> request_key
        -> two-tier cache lookup (memory LRU, then .repro_cache disk)
        -> in-flight coalescing (duplicate keys share one future)
        -> process-pool evaluation (bounded by --jobs, per-request
           timeout, structured fault isolation)
        -> cache fill + JSON response

Everything CPU-bound runs in pool workers via
:func:`repro.service.worker.evaluate`; the event loop only parses,
hashes, and shuttles bytes, so the daemon stays responsive while a
multi-second sweep is in flight.  A worker that raises returns a
structured error; a worker that *dies* breaks the pool, which is
rebuilt, counted in ``/metrics``, and surfaced as a 500 — subsequent
requests succeed.

The HTTP layer is deliberately minimal (HTTP/1.1 with keep-alive via
:mod:`repro.service.httpd`): the repo is stdlib-only, and the service's
unit of work is a model evaluation, not a socket — but the warm path is
a dictionary lookup, so connection reuse matters there.

Cluster hooks (see :mod:`repro.cluster`): ``POST /cache/peek`` answers
"do *you* have this key?" from the cache tiers only — no pool, no
breaker — and a request carrying a ``"peer"`` hint (attached by the
gateway after a membership change) asks that previous owner over the
same endpoint before paying for an evaluation.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from pathlib import Path

from urllib.parse import parse_qs

from ..analysis.report import canonical_json
from ..core.analytic import stream_misses
from ..core.classification import classify
from ..experiments.common import cache_entry_path
from ..experiments.pool import (
    fork_executor,
    register_parent_socket,
    unregister_parent_socket,
)
from ..ladder.calibration import DEFAULT_CALIBRATION
from ..ladder.engine import tier2_apriori_bound
from ..ladder.tier0 import dims_from_task, num_cmgs
from ..obs import events as obs_events
from ..obs.audit import AccuracyAuditor, compare_results
from ..obs.context import TRACE_HEADER, TraceContext
from ..obs.events import DEFAULT_MAX_BYTES, EventLog
from ..obs.prometheus import render_prometheus
from ..obs.traces import TraceBuffer
from ..obs.tracer import NULL_SPAN, Tracer
from ..obs.tree import TraceTree
from ..resilience import faults
from ..resilience.breaker import CircuitBreaker
from ..resilience.degraded import answer_task as degraded_answer
from ..resilience.faults import FaultPlan
from .cache import TieredResultCache, gc_sweep
from .httpd import PayloadTooLarge, read_request, request_json, respond
from .metrics import ServiceMetrics
from ..spmv.sector_policy import SectorPolicy
from .protocol import (
    DELTA_BASE_ENDPOINTS,
    ENDPOINTS,
    RequestError,
    derive_delta_task,
    matrix_name,
    normalize_delta,
    normalize_request,
    request_key,
    setup_from_task,
)
from .registry import TaskRegistry
from .worker import evaluate


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon tunables (CLI flags map 1:1)."""

    jobs: int = 2
    cache_dir: str | None = ".repro_cache"
    memory_ttl_seconds: float = 300.0
    memory_max_bytes: int = 64 * 2**20
    request_timeout: float = 120.0
    max_body_bytes: int = 64 * 2**20
    #: honour ``x_test_sleep`` / ``x_test_crash`` fault-injection fields
    #: (tests and the CI smoke job only)
    test_hooks: bool = False
    #: accept the ``"faults"`` request flag (chaos testing); off by
    #: default — a production daemon refuses injected faults with a 403
    allow_fault_injection: bool = False
    #: a daemon-wide ambient :class:`~repro.resilience.FaultPlan`,
    #: inherited across ``fork`` by the pool workers (requires
    #: ``allow_fault_injection``)
    fault_plan: FaultPlan | None = None
    #: consecutive 5xx evaluation failures that trip an endpoint's breaker
    breaker_failure_threshold: int = 5
    #: seconds an open breaker refuses the pool before probing again
    breaker_recovery_seconds: float = 30.0
    #: trial evaluations allowed through a half-open breaker
    breaker_half_open_probes: int = 1
    #: answer from the analytic degraded path instead of shedding with a
    #: 503 when the pool is unavailable (breaker open / saturated)
    degraded_mode: bool = True
    #: queue depth at which new evaluations degrade instead of queueing
    #: (None disables natural-saturation degradation)
    saturation_queue_depth: int | None = 64
    #: accuracy SLO injected into classify/predict/advise requests that
    #: carry none (None keeps the legacy fixed-fidelity behaviour)
    default_accuracy: float | None = None
    #: fidelity-ladder tier cap injected into requests that carry none
    default_max_tier: int | None = None
    #: largest ``budget_seconds`` an ``/optimize`` request may ask for —
    #: admission control for the most expensive endpoint (400 above it)
    max_optimize_budget_seconds: float = 120.0
    #: ceiling on one ``/cache/peek`` round trip to a peer replica; a
    #: slow or dead peer must never cost more than this before the
    #: replica falls back to evaluating itself
    peer_timeout_seconds: float = 5.0
    #: seconds between periodic disk-cache GC sweeps (None disables the
    #: daemon task; ``python -m repro.service.cache --gc`` still works)
    gc_interval_seconds: float | None = None
    #: GC: delete disk entries older than this many seconds
    gc_max_age_seconds: float | None = None
    #: GC: then delete oldest entries until the cache dir fits
    gc_max_bytes: int | None = None
    #: structured JSON-lines event log (``repro.obs.events/v1``); None
    #: disables event logging entirely
    event_log_path: str | None = None
    #: event-log rotation byte budget (owner-only rotation to ``.1``)
    event_log_max_bytes: int = DEFAULT_MAX_BYTES
    #: fraction of delivered tier-0/1 ladder answers shadow-audited at
    #: tier 2 off the hot path (0 disables the continuous accuracy audit)
    audit_rate: float = 0.0
    #: ceiling on cumulative pool seconds the auditor may spend (None
    #: leaves the audit bounded only by its rate and backlog)
    audit_budget_seconds: float | None = None
    #: seed of the deterministic audit sampling hash — replicas sharing a
    #: seed agree on which request keys are audited
    audit_seed: int = 0
    #: finished traced requests retained for ``GET /debug/traces``
    trace_buffer_size: int = 64
    #: patch-work ceiling of the incremental delta engine (summed dirty
    #: reuse-window elements); past it a ``POST /delta`` evaluation falls
    #: back to full re-evaluation.  0 forces the fallback always.
    delta_budget: int = 65_536

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be positive")
        if self.breaker_recovery_seconds <= 0:
            raise ValueError("breaker_recovery_seconds must be positive")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be positive")
        if self.saturation_queue_depth is not None and self.saturation_queue_depth < 1:
            raise ValueError("saturation_queue_depth must be positive (or None)")
        if self.fault_plan is not None and not self.allow_fault_injection:
            raise ValueError("fault_plan requires allow_fault_injection")
        if self.default_accuracy is not None and self.default_accuracy <= 0:
            raise ValueError("default_accuracy must be positive")
        if self.default_max_tier is not None and not 0 <= self.default_max_tier <= 3:
            raise ValueError("default_max_tier must be between 0 and 3")
        if self.max_optimize_budget_seconds <= 0:
            raise ValueError("max_optimize_budget_seconds must be positive")
        if self.peer_timeout_seconds <= 0:
            raise ValueError("peer_timeout_seconds must be positive")
        if self.gc_interval_seconds is not None and self.gc_interval_seconds <= 0:
            raise ValueError("gc_interval_seconds must be positive (or None)")
        if self.gc_max_age_seconds is not None and self.gc_max_age_seconds < 0:
            raise ValueError("gc_max_age_seconds must be non-negative")
        if self.gc_max_bytes is not None and self.gc_max_bytes < 0:
            raise ValueError("gc_max_bytes must be non-negative")
        if (self.gc_interval_seconds is not None
                and self.gc_max_age_seconds is None
                and self.gc_max_bytes is None):
            raise ValueError("gc_interval_seconds needs gc_max_age_seconds "
                             "and/or gc_max_bytes (nothing to collect otherwise)")
        if self.event_log_max_bytes < 4096:
            raise ValueError("event_log_max_bytes must be at least 4096")
        if not 0.0 <= self.audit_rate <= 1.0:
            raise ValueError("audit_rate must be in [0, 1]")
        if self.audit_budget_seconds is not None and self.audit_budget_seconds <= 0:
            raise ValueError("audit_budget_seconds must be positive")
        if self.audit_seed < 0:
            raise ValueError("audit_seed must be non-negative")
        if self.trace_buffer_size < 1:
            raise ValueError("trace_buffer_size must be positive")
        if self.delta_budget < 0:
            raise ValueError("delta_budget must be non-negative")


class _EvaluationError(Exception):
    """A failed evaluation, carrying the HTTP status and structured detail."""

    def __init__(self, status: int, detail: dict) -> None:
        super().__init__(detail.get("message", ""))
        self.status = status
        self.detail = detail


class _DegradedService(Exception):
    """The pool cannot take this evaluation; answer analytically or shed.

    Raised by admission control (breaker open, saturation — injected or
    natural) and caught in :meth:`LocalityService._handle_model`, which
    either answers from :mod:`repro.resilience.degraded` or, when no
    analytic surrogate exists (``sweep``) or degraded mode is off,
    responds 503 with a retry hint.
    """

    def __init__(self, reason: str, retry_after_seconds: float = 0.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


#: Worker-side exception types that indicate a bad request, not a bad
#: server.  DeltaError covers edit batches that are well-formed but
#: inapplicable to their base pattern (inserting an existing edge,
#: deleting an absent one) — only detectable at apply time.
_CLIENT_ERRORS = frozenset({"ValueError", "TypeError", "KeyError",
                            "DeltaError"})


class LocalityService:
    """Transport-agnostic request handling: cache, coalescing, pool."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.cache = TieredResultCache(
            config.cache_dir,
            max_bytes=config.memory_max_bytes,
            ttl_seconds=config.memory_ttl_seconds,
        )
        self.metrics = ServiceMetrics(jobs=config.jobs)
        self.breakers = {
            endpoint: CircuitBreaker(
                failure_threshold=config.breaker_failure_threshold,
                recovery_seconds=config.breaker_recovery_seconds,
                half_open_max_probes=config.breaker_half_open_probes,
                on_transition=self._breaker_observer(endpoint),
            )
            for endpoint in ENDPOINTS
        }
        self.traces = TraceBuffer(config.trace_buffer_size)
        # stored base tasks POST /delta patches against (same dir as the
        # result cache: a GC'd base 404s and the client re-submits once)
        self.registry = TaskRegistry(config.cache_dir)
        self.auditor = (
            AccuracyAuditor(config.audit_rate, seed=config.audit_seed,
                            budget_seconds=config.audit_budget_seconds)
            if config.audit_rate > 0 else None
        )
        # ambient state inherited across fork must be installed before the
        # first worker is spawned: the daemon-wide fault plan and the
        # structured event log (workers append to the same file under
        # O_APPEND; see repro.obs.events); close() restores both
        self._previous_plan = (
            faults.install(config.fault_plan)
            if config.fault_plan is not None else None
        )
        self._event_log = None
        self._previous_event_log = None
        if config.event_log_path is not None:
            self._event_log = EventLog(config.event_log_path,
                                       max_bytes=config.event_log_max_bytes,
                                       role="service")
            self._previous_event_log = obs_events.install(self._event_log)
        self._executor = fork_executor(config.jobs)
        self._slots = asyncio.Semaphore(config.jobs)
        self._inflight: dict[str, asyncio.Future] = {}
        self.shutdown_event = asyncio.Event()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def handle_request(
        self, method: str, path: str, body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str, bool]:
        """Route one request; returns (status, payload, shutdown?).

        A ``str`` payload is served verbatim as Prometheus text exposition
        (``/metrics?format=prometheus``); dicts are served as JSON.
        ``headers`` (lowercase names, as parsed by the HTTP layer) may
        carry an ``X-Repro-Trace`` context, adopted when the JSON body
        does not already have a ``trace_context``.
        """
        path, _, query_string = path.partition("?")
        path = path.rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                health = {"ok": True, "status": "healthy"}
                if self.auditor is not None:
                    health["accuracy"] = self.auditor.status()
                return 200, health, False
            if path == "/metrics":
                fmt = (parse_qs(query_string).get("format") or ["json"])[-1]
                if fmt not in ("json", "prometheus"):
                    return 400, _error_payload(
                        "metrics", "BadFormat",
                        f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')",
                    ), False
                snapshot = self.metrics.snapshot(self.cache.stats(),
                                                 self.breakers)
                if self.auditor is not None:
                    snapshot["audit"] = self.auditor.snapshot()
                if fmt == "prometheus":
                    return 200, render_prometheus(snapshot), False
                return 200, snapshot, False
            if path == "/debug/traces":
                params = parse_qs(query_string)
                try:
                    limit = int((params.get("limit") or ["10"])[-1])
                except ValueError:
                    return 400, _error_payload(
                        "debug/traces", "RequestError",
                        "limit must be an integer"), False
                endpoint_filter = (params.get("endpoint") or [None])[-1]
                snapshot = self.traces.snapshot(limit=limit,
                                                endpoint=endpoint_filter)
                snapshot["ok"] = True
                return 200, snapshot, False
            return 404, _error_payload(path, "NotFound", f"no such path {path!r}"), False
        if method != "POST":
            return 405, _error_payload(path, "MethodNotAllowed",
                                       f"{method} not supported"), False
        if path == "/shutdown":
            return 200, {"ok": True, "status": "shutting down"}, True
        if path == "/cache/peek":
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, _error_payload("cache/peek", "BadJSON", str(exc)), False
            status, response = self._handle_cache_peek(payload)
            return status, response, False
        if path == "/delta":
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, _error_payload("delta", "BadJSON", str(exc)), False
            if isinstance(payload, dict) and "trace_context" not in payload:
                header_ctx = TraceContext.from_header(
                    (headers or {}).get(TRACE_HEADER.lower())
                )
                if header_ctx is not None:
                    payload["trace_context"] = header_ctx.to_dict()
            status, response = await self._handle_delta(payload)
            return status, response, False
        endpoint = path.lstrip("/")
        if endpoint not in ENDPOINTS:
            return 404, _error_payload(endpoint, "NotFound",
                                       f"no such endpoint {endpoint!r}"), False
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_payload(endpoint, "BadJSON", str(exc)), False
        if isinstance(payload, dict) and "trace_context" not in payload:
            # transports that only see headers (the gateway forward, any
            # standard HTTP client) propagate context via X-Repro-Trace;
            # an explicit JSON trace_context always wins
            header_ctx = TraceContext.from_header(
                (headers or {}).get(TRACE_HEADER.lower())
            )
            if header_ctx is not None:
                payload["trace_context"] = header_ctx.to_dict()
        status, response = await self._handle_model(endpoint, payload)
        return status, response, False

    # ------------------------------------------------------------------
    # cluster hooks
    # ------------------------------------------------------------------
    def _handle_cache_peek(self, payload: object) -> tuple[int, dict]:
        """``POST /cache/peek {"task": <normalized task>}`` — cache tiers
        only, no pool, no breaker, no evaluation.

        The caller is another replica holding a normalized task whose key
        this replica owned before a membership change; it sends the task
        verbatim and we recompute the key, so a peek can never answer a
        different question than the one being asked.  Only the plain-key
        entry is consulted (the one legacy and tier-2 ladder answers
        share); a miss just means the caller evaluates — exactly what it
        would have done anyway.
        """
        if not isinstance(payload, dict) or not isinstance(payload.get("task"), dict):
            return 400, _error_payload("cache/peek", "RequestError",
                                       "expected a JSON object with a 'task' object")
        task = dict(payload["task"])
        task.pop("peer", None)
        if task.get("endpoint") not in ENDPOINTS:
            return 400, _error_payload(
                "cache/peek", "RequestError",
                f"unknown endpoint {task.get('endpoint')!r}")
        try:
            key = request_key(task)
            disk_path, _ = self._disk_entry(task, key)
        except Exception as exc:  # noqa: BLE001 - a bad task is the caller's bug
            return 400, _error_payload("cache/peek", "RequestError", str(exc))
        result, tier = self.cache.get(key, disk_path)
        if result is None:
            self.metrics.cache_peek["miss"] += 1
            return 200, {"ok": True, "found": False, "key": key}
        self.metrics.cache_peek["hit"] += 1
        return 200, {"ok": True, "found": True, "key": key, "tier": tier,
                     "result": result}

    async def _peer_fill(
        self, endpoint: str, task: dict, key: str, peer: dict
    ) -> dict | None:
        """Ask the key's previous ring owner for its cached answer.

        Best-effort by construction: any failure — dead peer, timeout,
        malformed reply — returns None and the replica evaluates as if no
        hint existed.  The hint is routing metadata, never correctness.
        """
        try:
            status, payload = await request_json(
                peer["host"], peer["port"], "POST", "/cache/peek",
                {"task": task}, timeout=self.config.peer_timeout_seconds,
            )
        except (OSError, ValueError, ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            self.metrics.peer_fill["error"] += 1
            return None
        if status != 200 or not payload.get("found"):
            self.metrics.peer_fill["miss"] += 1
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            self.metrics.peer_fill["error"] += 1
            return None
        self.metrics.peer_fill["hit"] += 1
        return result

    async def gc_once(self) -> dict:
        """One disk-cache GC sweep off the event loop; folds into /metrics."""
        if self.cache.cache_dir is None:
            return {}
        loop = asyncio.get_running_loop()
        config = self.config
        stats = await loop.run_in_executor(
            None,
            lambda: gc_sweep(self.cache.cache_dir,
                             max_age_seconds=config.gc_max_age_seconds,
                             max_bytes=config.gc_max_bytes),
        )
        self.metrics.observe_gc(stats)
        obs_events.emit("gc.sweep", **{k: v for k, v in stats.items()
                                       if isinstance(v, (int, float))})
        return stats

    async def gc_loop(self) -> None:
        """Periodic GC (``--gc-interval``); cancelled at shutdown."""
        while True:
            await asyncio.sleep(self.config.gc_interval_seconds)
            await self.gc_once()

    # ------------------------------------------------------------------
    # model endpoints
    # ------------------------------------------------------------------
    async def _handle_model(self, endpoint: str, payload: object) -> tuple[int, dict]:
        started = time.perf_counter()
        try:
            if (isinstance(payload, dict) and "faults" in payload
                    and not self.config.allow_fault_injection):
                raise RequestError(
                    "fault injection is disabled; start the daemon with "
                    "--allow-fault-injection to accept 'faults' flags",
                    status=403,
                )
            task = normalize_request(endpoint, payload)
            if not self.config.test_hooks:
                task.pop("x_test_sleep", None)
                task.pop("x_test_crash", None)
            if endpoint not in ("sweep", "optimize"):
                # daemon-wide ladder defaults fill in only what the request
                # left unsaid; they don't enter the cache key (every tier
                # answers the same question).  optimize is excluded: its
                # screening tiers are fixed by the search and its accuracy
                # (confirmation SLO) is part of the cached search config
                if "accuracy" not in task and self.config.default_accuracy is not None:
                    task["accuracy"] = self.config.default_accuracy
                if "max_tier" not in task and self.config.default_max_tier is not None:
                    task["max_tier"] = self.config.default_max_tier
            if endpoint == "optimize":
                cap = self.config.max_optimize_budget_seconds
                _require_budget(task["budget_seconds"], cap)
            key = request_key(task)
            # the gateway's warm-cache hint is routing metadata: excluded
            # from the key, stripped before the task reaches a worker
            peer = task.pop("peer", None)
            plan = (faults.FaultPlan.from_dict(task["faults"])
                    if "faults" in task else None)
            if (endpoint in DELTA_BASE_ENDPOINTS and plan is None
                    and "x_test_sleep" not in task
                    and "x_test_crash" not in task):
                # record the computation-defining task so a later POST
                # /delta can patch against this key (chaos and test-hook
                # requests are excluded: their stored form would not
                # re-derive the key)
                self.registry.put(key, task)
        except RequestError as exc:
            seconds = time.perf_counter() - started
            self.metrics.observe_request(endpoint, "error", seconds)
            obs_events.emit("request", endpoint=endpoint, status="rejected",
                            seconds=seconds, error=str(exc))
            return exc.status, _error_payload(endpoint, "RequestError", str(exc))
        return await self._finish_task(endpoint, task, key, peer, plan, started)

    async def _handle_delta(self, payload: object) -> tuple[int, dict]:
        """``POST /delta``: patch a stored request with one edit batch.

        The body references a base request by its cache key; the daemon
        recovers the stored task from the registry, **revalidates** it
        (the recomputed key must match — a tampered or truncated record
        404s/409s instead of silently patching the wrong base), derives
        the edited task with the batch appended to its delta chain, and
        resolves it through the ordinary cache/coalesce/evaluate
        machinery under the *derived* key.  The derived task is
        registered too, so the key this response returns is itself a
        valid base — warm entries chain instead of going cold.
        """
        started = time.perf_counter()
        try:
            normalized = normalize_delta(payload)
            base_key = normalized["base"]
            stored = self.registry.get(base_key)
            if stored is None:
                raise RequestError(
                    f"unknown base key {base_key!r}: not in the stored-task "
                    "registry (never seen, or evicted/GC'd) — submit the "
                    "full request once and retry the delta",
                    status=404,
                )
            if request_key(stored) != base_key:
                raise RequestError(
                    f"stored record for base key {base_key!r} failed "
                    "revalidation (its recomputed key differs) — submit "
                    "the full request once and retry the delta",
                    status=409,
                )
            endpoint = stored.get("endpoint")
            if endpoint not in DELTA_BASE_ENDPOINTS:
                raise RequestError(
                    f"a {endpoint!r} result cannot take deltas; the base "
                    f"must be one of: {', '.join(DELTA_BASE_ENDPOINTS)}",
                    status=400,
                )
            task = derive_delta_task(stored, normalized,
                                     self.config.delta_budget)
            if "accuracy" not in task and self.config.default_accuracy is not None:
                task["accuracy"] = self.config.default_accuracy
            if "max_tier" not in task and self.config.default_max_tier is not None:
                task["max_tier"] = self.config.default_max_tier
            key = request_key(task)
            self.registry.put(key, task)
        except RequestError as exc:
            seconds = time.perf_counter() - started
            self.metrics.observe_request("delta", "error", seconds)
            obs_events.emit("request", endpoint="delta", status="rejected",
                            seconds=seconds, error=str(exc))
            return exc.status, _error_payload("delta", "RequestError", str(exc))
        envelope = {"delta": {
            "base": base_key,
            "chain_length": len(task["matrix"]["batches"]),
        }}
        return await self._finish_task(endpoint, task, key, None, None,
                                       started, envelope=envelope)

    async def _finish_task(
        self, endpoint: str, task: dict, key: str, peer: dict | None,
        plan: faults.FaultPlan | None, started: float,
        envelope: dict | None = None,
    ) -> tuple[int, dict]:
        """Resolve a normalized task and build its response envelope.

        The shared tail of ``_handle_model`` and ``_handle_delta``:
        trace-context minting, the resolve pipeline, degraded/error
        handling, metrics, and the wire envelope.  ``envelope`` entries
        are merged into every response (success or not); worker-side
        delta metadata (``task["_delta_meta"]``, attached by the resolve
        path) is folded into the envelope's ``"delta"`` object.
        """
        extra = envelope or {}
        # distributed trace context: adopt the caller's hop and mint this
        # hop's own span id (the parent of the fork-worker's span).  When
        # no caller context exists, a trace is started locally whenever
        # anyone would see it (the trace flag, or an installed event log
        # whose entries want a correlation id).
        incoming = TraceContext.from_dict(task.get("trace_context"))
        ctx = incoming.child() if incoming is not None else None
        if ctx is None and (task.get("trace") or obs_events.get_log() is not None):
            ctx = TraceContext.new()
        if ctx is not None:
            task["trace_context"] = ctx.to_dict()
        trace_id = ctx.trace_id if ctx is not None else None
        tracer = root = None
        token = None
        if task.get("trace"):
            # per-request local tracer (never installed ambiently: the
            # daemon interleaves requests on one loop, and in-process
            # cluster harnesses run several daemons in one process)
            tracer = Tracer()
            token = self.traces.start(ctx.trace_id, endpoint)
            root = tracer.span(
                "service.request", endpoint=endpoint, trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_span_id=incoming.span_id if incoming is not None else None,
            )
            root.__enter__()

        def finished(status_label: str, tree: dict | None = None,
                     **event_fields) -> float:
            seconds = time.perf_counter() - started
            if token is not None:
                self.traces.finish(token, seconds=seconds,
                                   status=status_label, tree=tree)
            obs_events.emit("request", trace_id=trace_id, endpoint=endpoint,
                            status=status_label, seconds=seconds, key=key,
                            **event_fields)
            return seconds

        try:
            try:
                result, cached, trace, fidelity = await self._resolve(
                    endpoint, task, key, plan, peer, tracer=tracer
                )
            finally:
                if root is not None:
                    root.__exit__(*sys.exc_info())
        except _DegradedService as exc:
            result = self._degraded_result(task)
            if result is None:
                # sweep has no analytic surrogate (its whole point is the
                # stack-distance measurement), and degraded mode may be off
                self.metrics.observe_request(
                    endpoint, "error",
                    finished("unavailable", reason=exc.reason))
                return 503, {"ok": False, "endpoint": endpoint, "key": key,
                             "error": {
                                 "type": "ServiceUnavailable",
                                 "message": "evaluation pool unavailable "
                                            f"({exc.reason}) and no analytic "
                                            "fallback applies",
                                 "reason": exc.reason,
                                 "retry_after_seconds": exc.retry_after_seconds,
                             }} | extra
            self.metrics.observe_request(
                endpoint, "degraded",
                finished("degraded", reason=exc.reason))
            self.metrics.degraded[endpoint][exc.reason] += 1
            # degraded answers are approximations: never cached, clearly
            # marked, and "cached" is null so clients can tell them apart
            return 200, {"ok": True, "endpoint": endpoint, "key": key,
                         "cached": None, "degraded": True,
                         "degraded_reason": exc.reason,
                         "result": result} | extra
        except _EvaluationError as exc:
            self.metrics.observe_request(
                endpoint, "error",
                finished("error", error=exc.detail.get("type")))
            detail = dict(exc.detail)
            detail.setdefault("type", "EvaluationError")
            return exc.status, {"ok": False, "endpoint": endpoint, "key": key,
                                "error": detail} | extra
        merged = local = None
        if tracer is not None and trace is not None:
            # the envelope trace: this hop's service.request root next to
            # the worker's evaluate root — linked by span-id attrs, merged
            # into one forest so the gateway can graft it whole
            merged = TraceTree.merge(
                [tracer.tree(), TraceTree.from_dict(trace)]
            ).to_dict()
        elif tracer is not None:
            # no evaluation happened (cache tier, coalesced, peer fill):
            # /debug/traces still keeps this hop's spans — cache.lookup
            # marks the serving tier — but no evaluate span is fabricated
            local = tracer.tree().to_dict()
        self.metrics.observe_request(
            endpoint, "ok",
            finished("ok", tree=merged if merged is not None else local,
                     cached=cached, tier=(fidelity or {}).get("tier")))
        if cached in ("memory", "disk"):
            self.metrics.cache_served[endpoint][cached] += 1
        response = {"ok": True, "endpoint": endpoint, "key": key,
                    "cached": cached, "result": result} | extra
        meta = task.pop("_delta_meta", None)
        if meta is not None:
            response.setdefault("delta", {}).update(meta)
        if fidelity is not None:
            response["fidelity"] = fidelity
        if task.get("trace"):
            # best-effort: null when the result came from a cache tier or
            # piggybacked on another request's in-flight evaluation
            response["trace"] = merged
        return 200, response

    async def _resolve(
        self,
        endpoint: str,
        task: dict,
        key: str,
        plan: faults.FaultPlan | None,
        peer: dict | None = None,
        tracer: Tracer | None = None,
    ) -> tuple[dict, str | None, dict | None, dict | None]:
        """Resolve a key via cache, peer fill, coalescing, or a fresh
        evaluation.

        Returns ``(result, cache_tier, span_tree, fidelity)``; the span
        tree is only non-None for a fresh evaluation of a ``"trace":
        true`` task, and fidelity only for ladder requests (see
        :meth:`_resolve_ladder`).

        ``plan`` is the request's own fault plan (None for normal
        requests, which still consult the daemon-wide ambient plan at the
        parent-side sites).  Fault-carrying requests may *read* the cache
        — that is how ``cache.disk_read`` corruption is exercised — but
        never write it, never register as a coalescing leader, and never
        join another request's in-flight future: their perturbed outcome
        must not leak into healthy responses.
        """
        if endpoint != "optimize" and (
            task.get("accuracy") is not None or task.get("max_tier") is not None
        ):
            return await self._resolve_ladder(endpoint, task, key, plan,
                                              tracer=tracer)
        disk_path, disk_format = self._disk_entry(task, key)
        corrupt_rule = self._fire(plan, "cache.disk_read") if disk_path else None
        with _span(tracer, "cache.lookup") as sp:
            result, tier = self.cache.get(key, disk_path,
                                          corrupt_read=corrupt_rule is not None)
            sp.annotate(tier=tier or "miss")
        if result is not None:
            # cache hits bypass admission control: they cost no pool slot,
            # so an open breaker or a saturated queue does not refuse them
            if tier == "disk":
                self.cache.promote(key, canonical_json(result).encode())
            return result, tier, None, _embedded_fidelity(endpoint, result)

        chaos = plan is not None
        if not chaos:
            pending = self._inflight.get(key)
            if pending is not None:
                self.metrics.coalesced[endpoint] += 1
                with _span(tracer, "coalesce.wait"):
                    result = await asyncio.shield(pending)
                return (result, "coalesced", None,
                        _embedded_fidelity(endpoint, result))

        if peer is not None:
            if chaos:
                # a perturbed request must not pull a healthy peer answer
                # into its (never-cached) response path
                self.metrics.peer_fill["skipped"] += 1
            else:
                with _span(tracer, "peer.fill", host=peer["host"],
                           port=peer["port"]) as sp:
                    fetched = await self._peer_fill(endpoint, task, key, peer)
                    sp.annotate(outcome="hit" if fetched is not None else "miss")
                if fetched is not None:
                    # adopt the peer's answer into our own tiers so the
                    # next hit is local — this replica owns the key now
                    self.cache.put(
                        key,
                        canonical_json(fetched).encode(),
                        disk_path,
                        disk_text=(json.dumps(fetched)
                                   if disk_format == "record" else None),
                    )
                    return (fetched, "peer", None,
                            _embedded_fidelity(endpoint, fetched))

        await self._admit(endpoint, plan)
        breaker = self.breakers[endpoint]
        future = None
        if not chaos:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
        try:
            payload = await self._evaluate(endpoint, task, tracer=tracer)
            result = payload["result"]
            breaker.record_success()
            if future is not None:
                future.set_result(result)
        except _EvaluationError as exc:
            # only server-side failures count against the breaker; a 4xx
            # means the machinery worked and the request was at fault
            if exc.status >= 500:
                breaker.record_failure()
            else:
                breaker.record_success()
            if future is not None:
                future.set_exception(exc)
                future.exception()  # mark retrieved even with no waiters
            raise
        finally:
            if future is not None:
                self._inflight.pop(key, None)
        self.metrics.observe_phases(endpoint, payload.get("phase_seconds", {}))
        self._observe_delta(endpoint, task, payload)
        if endpoint == "optimize":
            # counts per-strategy outcomes, the predicted-improvement
            # histogram, and the search's ladder answers (asserting "no
            # exact pass until confirmation" straight off /metrics)
            self.metrics.observe_optimize(result)
        if not chaos:
            self.cache.put(
                key,
                canonical_json(result).encode(),
                disk_path,
                # sweep records keep the store_record byte format so batch
                # sweeps and the daemon share one disk cache
                disk_text=json.dumps(result) if disk_format == "record" else None,
            )
        return result, None, payload.get("trace"), _embedded_fidelity(endpoint, result)

    async def _resolve_ladder(
        self, endpoint: str, task: dict, key: str,
        plan: faults.FaultPlan | None, tracer: Tracer | None = None,
    ) -> tuple[dict, str | None, dict | None, dict]:
        """Resolve a fidelity-ladder request (``accuracy``/``max_tier`` set).

        Cache policy: tier-2 answers live under the *plain* request key —
        byte-identical to legacy results, so ladder and legacy requests
        warm one entry — and a cached one serves any SLO the tier-2 bound
        satisfies.  Tier-3 answers live under the suffixed ``<key>.t3``
        (a different wire payload: ``"method": "sim"``, simulated counts).
        Tier-0/1 answers are cheap approximations: recomputing beats
        caching, and they must never shadow an exact entry.  Ladder
        requests skip coalescing — two requests with different SLOs
        legitimately need different evaluations, and fidelity metadata is
        per-request.
        """
        accuracy = task.get("accuracy")
        disk_path, _ = self._disk_entry(task, key)
        with _span(tracer, "cache.lookup") as sp:
            if accuracy is None or self._tier2_bound(task) <= accuracy:
                corrupt_rule = (self._fire(plan, "cache.disk_read")
                                if disk_path else None)
                result, tier = self.cache.get(
                    key, disk_path, corrupt_read=corrupt_rule is not None)
                if result is not None:
                    sp.annotate(tier=tier)
                    if tier == "disk":
                        self.cache.promote(key, canonical_json(result).encode())
                    return result, tier, None, self._cached_fidelity(2, task)
            t3_key = f"{key}.t3"
            t3_path = (self.cache.cache_dir / f"{t3_key}.{endpoint}.json"
                       if self.cache.cache_dir is not None else None)
            result, tier = self.cache.get(t3_key, t3_path)
            if result is not None:
                sp.annotate(tier=tier)
                if tier == "disk":
                    self.cache.promote(t3_key, canonical_json(result).encode())
                return result, tier, None, self._cached_fidelity(3, task)
            sp.annotate(tier="miss")

        await self._admit(endpoint, plan)
        breaker = self.breakers[endpoint]
        try:
            payload = await self._evaluate(endpoint, task, tracer=tracer)
            result = payload["result"]
            breaker.record_success()
        except _EvaluationError as exc:
            if exc.status >= 500:
                breaker.record_failure()
            else:
                breaker.record_success()
            raise
        self.metrics.observe_phases(endpoint, payload.get("phase_seconds", {}))
        self._observe_delta(endpoint, task, payload)
        fidelity = payload.get("fidelity") or {}
        answered = fidelity.get("tier")
        if answered is not None:
            self.metrics.observe_ladder(endpoint, answered,
                                        fidelity.get("escalations", 0))
        if plan is None:
            if answered == 2:
                self.cache.put(key, canonical_json(result).encode(), disk_path)
            elif answered == 3:
                self.cache.put(t3_key, canonical_json(result).encode(), t3_path)
            if answered in (0, 1):
                self._offer_audit(endpoint, task, key, answered, result)
        return result, None, payload.get("trace"), fidelity

    def _observe_delta(self, endpoint: str, task: dict,
                       payload: dict) -> None:
        """Fold a fresh evaluation's delta metadata into metrics + task.

        The worker attaches ``payload["delta"]`` only for delta-kind
        tasks; it rides back to :meth:`_finish_task` on the task dict
        (the result itself stays byte-identical to full re-evaluation,
        so the envelope — not the cached result — carries the metadata).
        Cache hits and coalesced followers never reach here: no patch
        ran, so nothing is counted.
        """
        meta = payload.get("delta")
        if meta is None:
            return
        task["_delta_meta"] = meta
        self.metrics.observe_delta(endpoint, meta)

    def _tier2_bound(self, task: dict) -> float:
        """The tier-2 a-priori bound of a task (inf when indeterminable)."""
        try:
            setup = setup_from_task(task)
            return tier2_apriori_bound(task, setup.machine(), setup)
        except Exception:  # noqa: BLE001 - fall through to a fresh evaluation
            return float("inf")

    def _cached_fidelity(self, tier: int, task: dict) -> dict:
        accuracy = task.get("accuracy")
        bound = 0.0 if tier == 3 else self._tier2_bound(task)
        return {
            "tier": tier,
            "error_bound": bound,
            "accuracy_slo": accuracy,
            "slo_met": accuracy is None or bound <= accuracy,
            "cost_seconds": 0.0,
            "predicted_cost_seconds": 0.0,
            "tiers_tried": [],
            "tier_bounds": [],
            "escalations": 0,
        }

    # ------------------------------------------------------------------
    # continuous accuracy audit (--audit-rate)
    # ------------------------------------------------------------------
    def _offer_audit(self, endpoint: str, task: dict, key: str,
                     tier: int, result: dict) -> None:
        """Shadow-sample one freshly delivered tier-0/1 ladder answer.

        Deterministic by key (replicas with one seed agree on the sampled
        set), predict/advise only (classify is closed-form exact at every
        tier), and bounded: a full backlog or an exhausted time budget
        sheds the sample — the audit observes the service, it never
        becomes the service's problem.
        """
        auditor = self.auditor
        if (auditor is None or endpoint not in ("predict", "advise")
                or not auditor.should_sample(key)):
            return
        trace_id = (task.get("trace_context") or {}).get("trace_id")
        stripped = {k: v for k, v in task.items()
                    if k not in ("accuracy", "max_tier", "trace",
                                 "trace_context", "timeout", "faults",
                                 "x_test_sleep", "x_test_crash")}
        if auditor.offer({"endpoint": endpoint, "key": key, "tier": tier,
                          "task": stripped, "result": result,
                          "trace_id": trace_id}):
            obs_events.emit("audit.sample", trace_id=trace_id,
                            endpoint=endpoint, key=key, tier=tier)

    async def audit_loop(self, poll_seconds: float = 0.05) -> None:
        """Drain the audit backlog whenever the pool is idle.

        Politeness is the invariant the latency benchmark pins: an audit
        evaluation is only submitted when no foreground request is queued
        and a pool slot is free, so ``--audit-rate`` never blocks the hot
        path — at worst a foreground burst briefly waits behind one
        in-flight audit evaluation, the same as behind any other request.
        """
        while self.auditor is not None:
            await asyncio.sleep(poll_seconds)
            if self.auditor.backlog == 0 or self.auditor.budget_exhausted:
                continue
            if (self.metrics.queue_depth > 0
                    or self.metrics.workers_busy >= self.config.jobs):
                continue
            item = self.auditor.pop()
            if item is not None:
                await self._audit_once(item)

    async def _audit_once(self, item: dict) -> None:
        """Re-answer one sampled delivery exactly and score the error.

        The reference pass is the stripped task on the legacy path —
        byte-identical to a tier-2 ladder answer — served from the shared
        plain-key cache when a legacy or escalated request already warmed
        it, and cached back otherwise (an audit evaluation is a normal
        exact answer; wasting it would be a shame).
        """
        auditor = self.auditor
        started = time.perf_counter()
        endpoint, key = item["endpoint"], item["key"]
        task = dict(item["task"])
        try:
            disk_path, _ = self._disk_entry(task, key)
            reference, _tier = self.cache.get(key, disk_path)
            if reference is None:
                payload = await self._evaluate(endpoint, task)
                reference = payload["result"]
                self.cache.put(key, canonical_json(reference).encode(),
                               disk_path)
            setup = setup_from_task(task)
            machine = setup.machine()
            dims = dims_from_task(task, machine)
            floor = float(max(1, stream_misses(dims, machine.line_size).total))
            cmgs = num_cmgs(machine, setup.num_threads)
            cal = DEFAULT_CALIBRATION

            def policy_class(policy: dict) -> str:
                ways = SectorPolicy.from_dict(policy).l2_sector1_ways
                return classify(dims, machine, ways, cmgs).value

            tier = int(item["tier"])
            for cls_value, error in compare_results(
                    endpoint, item["result"], reference, floor, policy_class):
                bound = (cal.tier0_bound[cls_value] if tier == 0
                         else cal.tier1_apriori)
                auditor.record(cls_value, tier, error, bound)
                if error > bound:
                    obs_events.emit(
                        "audit.violation", trace_id=item.get("trace_id"),
                        endpoint=endpoint, key=key, tier=tier,
                        cls=cls_value, error=error, bound=bound)
            auditor.finish()
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - the audit never hurts the daemon
            auditor.record_failure()
        finally:
            auditor.spend(time.perf_counter() - started)

    def _breaker_observer(self, endpoint: str):
        """The per-endpoint breaker's transition hook -> event log."""
        def observe(previous: str, state: str) -> None:
            obs_events.emit("breaker.transition", endpoint=endpoint,
                            transition=f"{previous}->{state}")
        return observe

    def _fire(self, plan: faults.FaultPlan | None, site: str):
        """Fire a parent-side fault site against the request plan (or the
        ambient daemon plan when the request carries none) and count it."""
        rule = plan.fire(site) if plan is not None else faults.fire(site)
        if rule is not None:
            self.metrics.faults_injected[f"{site}:{rule.kind}"] += 1
            obs_events.emit("fault.injected", site=site, kind=rule.kind)
        return rule

    async def _admit(self, endpoint: str, plan: faults.FaultPlan | None) -> None:
        """Admission control in front of the pool.

        Raises :class:`_DegradedService` when the evaluation should not
        reach the pool: an injected or natural saturation, or an open
        circuit breaker.  Injected ``pool.submit`` faults of other kinds
        map to a structured 500 (``delay`` first stalls the admission) —
        a deterministic way for tests to trip a breaker without killing
        workers.
        """
        rule = self._fire(plan, "pool.submit")
        if rule is not None:
            if rule.kind == "saturate":
                raise _DegradedService("pool_saturated")
            if rule.kind == "delay":
                await asyncio.sleep(rule.delay_seconds)
            else:
                # counts against the breaker like any server-side failure,
                # so tests can trip it without killing workers
                self.breakers[endpoint].record_failure()
                raise _EvaluationError(500, {
                    "type": "FaultInjected",
                    "message": f"injected {rule.kind!r} fault at "
                               "site 'pool.submit'",
                })
        depth_limit = self.config.saturation_queue_depth
        if depth_limit is not None and self.metrics.queue_depth >= depth_limit:
            raise _DegradedService("pool_saturated")
        breaker = self.breakers[endpoint]
        if not breaker.allow():
            raise _DegradedService("breaker_open",
                                   breaker.retry_after_seconds())

    def _degraded_result(self, task: dict) -> dict | None:
        """The analytic degraded answer for a task, or None to shed (503).

        Uses Method B's closed forms (streaming-miss terms plus the
        ``s1``/``s2`` scaling factors) over the matrix *dimensions* only —
        no stack pass, no pool, event-loop-cheap.  Any surprise in the
        surrogate falls back to shedding rather than a dropped connection.
        """
        if not self.config.degraded_mode:
            return None
        try:
            machine = setup_from_task(task).machine()
            return degraded_answer(task, machine, matrix_name(task))
        except Exception:  # noqa: BLE001 - degrade to 503, never to a hang
            return None

    def _disk_entry(self, task: dict, key: str) -> tuple[Path | None, str | None]:
        if self.cache.cache_dir is None:
            return None, None
        if task["endpoint"] == "sweep":
            setup = setup_from_task(task)
            return (
                cache_entry_path(self.cache.cache_dir, setup, matrix_name(task)),
                "record",
            )
        return self.cache.cache_dir / f"{key}.{task['endpoint']}.json", "canonical"

    async def _evaluate(self, endpoint: str, task: dict,
                        tracer: Tracer | None = None) -> dict:
        """One pool evaluation with queueing, timeout and fault isolation."""
        timeout = task.get("timeout", self.config.request_timeout)
        self.metrics.enqueue()
        try:
            with _span(tracer, "pool.queue"):
                await self._slots.acquire()
        finally:
            self.metrics.dequeue()
        try:
            self.metrics.worker_started()
            self.metrics.evaluations[endpoint] += 1
            loop = asyncio.get_running_loop()
            try:
                with _span(tracer, "pool.evaluate", endpoint=endpoint):
                    payload = await asyncio.wait_for(
                        loop.run_in_executor(self._executor, evaluate, task),
                        timeout,
                    )
            except asyncio.TimeoutError:
                # the worker cannot be interrupted; it is abandoned to
                # finish in the background (same policy as the sweep engine)
                self.metrics.timeouts += 1
                raise _EvaluationError(504, {
                    "type": "TimeoutError",
                    "message": f"evaluation exceeded the {timeout:.3g}s budget",
                }) from None
            except BrokenExecutor:
                self.metrics.worker_restarts += 1
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = fork_executor(self.config.jobs)
                raise _EvaluationError(500, {
                    "type": "WorkerCrashed",
                    "message": "worker process died; pool restarted",
                }) from None
        finally:
            self.metrics.worker_finished()
            self._slots.release()
        for site_kind, count in payload.pop("faults_fired", {}).items():
            self.metrics.faults_injected[site_kind] += count
        if "error" in payload:
            detail = payload["error"]
            status = 400 if detail.get("type") in _CLIENT_ERRORS else 500
            raise _EvaluationError(status, detail)
        return payload

    # ------------------------------------------------------------------
    # HTTP glue
    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve requests on one socket until the client leaves.

        Keep-alive by default: the loop re-reads after each response, so
        a client reusing its connection pays the TCP setup once and the
        warm path stays a dictionary lookup.  ``Connection: close``,
        oversized bodies (the unread body poisons the stream), malformed
        request lines, and ``/shutdown`` all end the loop.
        """
        shutdown = False
        # register the accepted socket so pool workers forked while this
        # connection is open close their inherited copy — otherwise a
        # daemon death would never reset the connection and the client
        # would block instead of failing over
        conn_sock = writer.get_extra_info("socket")
        if conn_sock is not None:
            register_parent_socket(conn_sock)
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body_bytes)
                except PayloadTooLarge as exc:
                    await respond(writer, 413,
                                  _error_payload(exc.target, "PayloadTooLarge",
                                                 str(exc)),
                                  close=True)
                    return
                if request is None:
                    return
                if request.malformed:
                    await respond(writer, 400,
                                  _error_payload("", "BadRequest",
                                                 "malformed request line"),
                                  close=True)
                    return
                status, payload, shutdown = await self.handle_request(
                    request.method, request.target, request.body,
                    request.headers,
                )
                close = shutdown or request.close
                await respond(writer, status, payload, close=close)
                if close:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # loop teardown cancels handlers parked on an idle keep-alive
            # socket; exiting cleanly here keeps the streams machinery
            # from logging the cancellation as an error
            pass
        finally:
            if conn_sock is not None:
                unregister_parent_socket(conn_sock)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            if shutdown:
                self.shutdown_event.set()

    def close(self) -> None:
        # wait=True: letting idle workers exit here avoids a noisy atexit
        # race in concurrent.futures; abandoned (timed-out) workers are the
        # exception and at worst delay shutdown by their remaining runtime
        self._executor.shutdown(wait=True, cancel_futures=True)
        if self.config.fault_plan is not None:
            faults.install(self._previous_plan)
        if self._event_log is not None:
            obs_events.emit("service.stop")
            obs_events.install(self._previous_event_log)
            self._event_log.close()


def _require_budget(budget_seconds: float, cap: float) -> None:
    if budget_seconds > cap:
        raise RequestError(
            f"budget_seconds {budget_seconds:g} exceeds the daemon cap "
            f"{cap:g} (raise --max-optimize-budget to allow it)"
        )


def _embedded_fidelity(endpoint: str, result: dict) -> dict | None:
    """Optimize results carry their search fidelity inline; surface it in
    the envelope like ladder answers do (cached and coalesced included)."""
    if endpoint == "optimize" and isinstance(result, dict):
        return result.get("fidelity")
    return None


def _error_payload(endpoint: str, error_type: str, message: str) -> dict:
    return {"ok": False, "endpoint": endpoint,
            "error": {"type": error_type, "message": message}}


def _span(tracer: Tracer | None, name: str, **attrs):
    """A span on the request's tracer, or the shared no-op for untraced
    requests — keeps the instrumented paths free of ``if tracer`` forks."""
    return tracer.span(name, **attrs) if tracer is not None else NULL_SPAN


async def run_server(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8787,
    ready=None,
    announce: bool = True,
) -> None:
    """Run the daemon until ``/shutdown`` or SIGINT/SIGTERM.

    ``port=0`` binds an ephemeral port; the chosen one is announced on
    stdout as ``repro-service listening on http://HOST:PORT`` so wrappers
    (benchmarks, the CI smoke job) can parse it.  ``ready``, if given, is
    called with ``(service, host, actual_port, loop)`` once the socket is
    bound — :class:`ServiceThread` uses it.
    """
    config = config or ServiceConfig()
    service = LocalityService(config)
    server = await asyncio.start_server(service.handle_connection, host, port)
    # forked evaluator workers must close their inherited copy of this
    # listener or the port keeps accepting (and black-holing) connections
    # after the daemon stops — fatal to gateway failover, which relies on
    # a dead replica refusing connections
    listeners = list(server.sockets)
    for sock in listeners:
        register_parent_socket(sock)
    actual_port = server.sockets[0].getsockname()[1]
    if announce:
        print(f"repro-service listening on http://{host}:{actual_port}", flush=True)
    obs_events.emit("service.start", host=host, port=actual_port,
                    jobs=config.jobs)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, service.shutdown_event.set)
    if ready is not None:
        ready(service, host, actual_port, loop)
    gc_task = None
    if config.gc_interval_seconds is not None and config.cache_dir is not None:
        gc_task = loop.create_task(service.gc_loop())
    audit_task = None
    if service.auditor is not None:
        audit_task = loop.create_task(service.audit_loop())
    try:
        async with server:
            await service.shutdown_event.wait()
    finally:
        for sock in listeners:
            unregister_parent_socket(sock)
        for task in (gc_task, audit_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        service.close()


class ServiceThread:
    """An in-process daemon on a background thread (tests, benches, tours).

    >>> with ServiceThread(ServiceConfig(jobs=1, cache_dir=None)) as (host, port):
    ...     ServiceClient(host, port).health()
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or ServiceConfig()
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self.service: LocalityService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None

    def _on_ready(self, service, host, port, loop) -> None:
        self.service = service
        self.address = (host, port)
        self._loop = loop
        self._ready.set()

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("service thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                run_server(self.config, self._host, self._port,
                           ready=self._on_ready, announce=False)
            ),
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self.service is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.service.shutdown_event.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
