"""Pool-worker body of the advisor service.

:func:`evaluate` is the only function the daemon submits to the process
pool.  It receives a canonical task (see :mod:`repro.service.protocol`),
rebuilds the matrix and machine, runs the requested model, and returns a
plain-JSON payload: ``{"result": ...}`` on success or ``{"error": ...}``
on failure.  Exceptions are caught *inside* the worker — the same fault
isolation the sweep engine uses — so a pathological matrix produces a
structured error response instead of a dead worker.

Every result payload round-trips through the shared ``to_dict`` wire
format, which is what makes service responses byte-identical to direct
:class:`~repro.core.SectorAdvisor` / :class:`~repro.core.MethodB` calls.
"""

from __future__ import annotations

import contextlib
import os
import time
import traceback

from ..core.advisor import SectorAdvisor
from ..core.classification import classify
from ..core.method_b import MethodB
from ..experiments.common import measure_matrix
from ..obs import events as obs_events
from ..obs.context import new_span_id
from ..obs.tracer import Tracer, installed
from ..resilience import faults
from ..spmv.sector_policy import SectorPolicy
from .protocol import matrix_from_task, matrix_name, setup_from_task


def evaluate(task: dict) -> dict:
    """Run one canonical task; never raises (fault isolation).

    Every evaluation runs under a worker-local tracer: per-phase self
    seconds always travel back for the daemon's ``/metrics`` aggregation,
    and the full span tree is included when the request set
    ``"trace": true`` (memory sampling is only paid in that case).

    A ``"faults"`` flag (already validated and gated by the daemon) is
    installed as the ambient fault plan for the duration of this one
    evaluation; the ``worker.evaluate`` site fires before dispatch, so a
    ``crash`` rule kills this worker process exactly the way a segfault
    would, a ``delay`` stalls into the parent's timeout, and an ``error``
    surfaces through the structured-error path.  Without the flag the
    ambient plan (if any — inherited across ``fork`` from a daemon
    started with ``--fault-plan``) is consulted instead.
    """
    started = time.perf_counter()
    plan = (faults.FaultPlan.from_dict(task["faults"])
            if task.get("faults") else None)
    # the daemon's hop context (if any): the evaluate span joins the
    # distributed trace with a *fresh* span id — a forked worker must
    # never reuse its parent's, or merged trees would alias spans
    ctx = task.get("trace_context") or {}
    span_attrs = {"endpoint": task.get("endpoint", "")}
    if ctx.get("trace_id"):
        span_attrs.update(
            trace_id=ctx["trace_id"],
            span_id=new_span_id(),
            parent_span_id=ctx.get("span_id"),
        )
    try:
        _test_hooks(task)
        want_trace = bool(task.get("trace"))
        with faults.installed(plan) if plan else contextlib.nullcontext():
            faults.perform(faults.fire("worker.evaluate"))
            with Tracer(memory="rss" if want_trace else None) as tracer:
                with installed(tracer), tracer.span("evaluate", **span_attrs):
                    result, fidelity, delta_meta = _dispatch(task)
        obs_events.emit(
            "worker.evaluate", trace_id=ctx.get("trace_id"),
            endpoint=task.get("endpoint", ""), status="ok",
            seconds=time.perf_counter() - started,
        )
        tree = tracer.tree()
        payload = {
            "result": result,
            "elapsed_seconds": time.perf_counter() - started,
            "phase_seconds": tree.self_seconds_by_name(),
        }
        if fidelity is not None:
            payload["fidelity"] = fidelity
        if delta_meta is not None:
            payload["delta"] = delta_meta
        if want_trace:
            payload["trace"] = tree.to_dict()
        if plan is not None:
            payload["faults_fired"] = plan.fired_counts()
        return payload
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        obs_events.emit(
            "worker.evaluate", trace_id=ctx.get("trace_id"),
            endpoint=task.get("endpoint", ""), status="error",
            error=type(exc).__name__,
            seconds=time.perf_counter() - started,
        )
        payload = {
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
                "elapsed_seconds": time.perf_counter() - started,
            }
        }
        if plan is not None:
            payload["faults_fired"] = plan.fired_counts()
        return payload


def _test_hooks(task: dict) -> None:
    """Deterministic fault injection for tests (gated by the daemon)."""
    if task.get("x_test_sleep"):
        time.sleep(float(task["x_test_sleep"]))
    if task.get("x_test_crash"):
        os._exit(2)  # hard worker death: exercises BrokenProcessPool handling


def _dispatch(task: dict) -> tuple[dict, dict | None, dict | None]:
    """Run one task; returns ``(result, fidelity, delta_meta)``.

    Tasks whose matrix spec is a delta chain (derived by ``POST /delta``)
    route through :func:`repro.delta.engine.evaluate_delta_task`: the
    result stays byte-identical to full re-evaluation of the edited
    pattern, while the incremental-vs-fallback metadata rides back to the
    daemon as the third slot (``payload["delta"]``, outside the cached
    result).  Everything else dispatches through :func:`_dispatch_model`
    with no delta metadata.
    """
    if task.get("matrix", {}).get("kind") == "delta":
        from ..delta.engine import evaluate_delta_task

        return evaluate_delta_task(task)
    result, fidelity = _dispatch_model(task)
    return result, fidelity, None


def _dispatch_model(task: dict) -> tuple[dict, dict | None]:
    """Run one non-delta task; returns ``(result, fidelity_or_None)``.

    Tasks carrying the fidelity-ladder flags (``accuracy``/``max_tier``)
    route through :class:`repro.ladder.Ladder` — the matrix is only
    materialized if an escalated tier needs it — and come back with
    fidelity metadata.  Legacy tasks take the historical direct paths
    (byte-identical results, no metadata).
    """
    setup = setup_from_task(task)

    if task["endpoint"] == "optimize":
        # dispatched before the ladder branch: optimize's "accuracy" is a
        # confirmation SLO consumed by the search itself, not a request to
        # answer the whole task through the ladder
        from ..optimize import optimize_task

        result = optimize_task(task)
        return result, result["fidelity"]

    if task.get("accuracy") is not None or task.get("max_tier") is not None:
        from ..ladder import Ladder

        answer = Ladder(setup).answer_task(
            task, matrix_name(task), lambda: matrix_from_task(task)
        )
        return answer.result, answer.fidelity()

    machine = setup.machine()
    matrix = matrix_from_task(task)
    endpoint = task["endpoint"]

    if endpoint == "classify":
        num_cmgs = -(-setup.num_threads // machine.cores_per_cmg)
        return {
            "name": matrix.name,
            "num_cmgs": num_cmgs,
            "classes": {
                str(ways): classify(matrix, machine, ways, num_cmgs).value
                for ways in task["way_options"]
            },
        }, None

    if endpoint == "predict":
        model = MethodB(matrix, machine, num_threads=setup.num_threads,
                        iterations=setup.iterations)
        predictions = []
        for entry in task["policies"]:
            prediction = model.predict(SectorPolicy.from_dict(entry))
            predictions.append({
                "policy": prediction.policy.to_dict(),
                "l2_misses": int(prediction.l2_misses),
                "per_array": {k: int(v) for k, v in prediction.per_array.items()},
            })
        return {"name": matrix.name, "method": "B", "predictions": predictions}, None

    if endpoint == "advise":
        advisor = SectorAdvisor(
            machine,
            num_threads=setup.num_threads,
            way_options=tuple(task["way_options"]),
            consider_isolate_x=task["consider_isolate_x"],
            min_sector1_ways_with_prefetch=task["min_sector1_ways_with_prefetch"],
        )
        return advisor.recommend(matrix).to_dict(), None

    if endpoint == "sweep":
        return measure_matrix(matrix, setup).to_dict(), None

    raise ValueError(f"unknown endpoint {endpoint!r}")
