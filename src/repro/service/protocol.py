"""Wire format of the advisor service.

A request is one JSON object.  The matrix is either *named* from the
synthetic collection::

    {"matrix": {"name": "banded_001", "collection": "tiny"}}

or submitted *inline* as CSR or COO arrays::

    {"matrix": {"csr": {"num_rows": 4, "num_cols": 4,
                        "rowptr": [0, 1, 2, 3, 4], "colidx": [0, 1, 2, 3]}}}
    {"matrix": {"coo": {"num_rows": 4, "num_cols": 4,
                        "rows": [0, 1], "cols": [1, 2]}}}

(``values`` is optional and defaults to ones — the model only reads the
pattern).  An optional ``"setup"`` object carries the
:class:`~repro.experiments.common.ExperimentSetup` fields (scale, thread
count, iterations, prefetch distances, way options); endpoint-specific
knobs ride at the top level.

:func:`normalize_request` validates a payload and rewrites it into a
*canonical task*: a plain-JSON dict with every default filled in, so that
two requests asking for the same computation normalize to identical
bytes.  :func:`request_key` hashes that canonical form — it is the key of
the result cache and of in-flight coalescing.  The builder functions at
the bottom (:func:`setup_from_task`, :func:`matrix_from_task`) run inside
pool workers to reconstruct model inputs from a task.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from ..analysis.report import canonical_json
from ..experiments.common import ExperimentSetup
from ..obs.context import validate_context_dict
from ..matrices.collection import _SIZES, collection
from ..spmv.csr import CSRMatrix
from ..spmv.sector_policy import SectorPolicy

#: The model-serving endpoints (metrics/health/shutdown are transport-level).
ENDPOINTS = ("classify", "predict", "advise", "sweep", "optimize")

#: Endpoints whose stored tasks may serve as the base of a ``POST /delta``
#: (sweep measures the simulator and optimize permutes the pattern —
#: neither has a meaningful "same question, edited matrix" form).
DELTA_BASE_ENDPOINTS = ("classify", "predict", "advise")

#: Advisor defaults mirroring :class:`repro.core.SectorAdvisor`.
ADVISE_WAY_OPTIONS = (2, 3, 4, 5, 6)

_SETUP_FIELDS = (
    "scale",
    "num_threads",
    "iterations",
    "l1_prefetch_distance",
    "l2_prefetch_distance",
    "l2_way_options",
    "l1_way_options",
)


class RequestError(Exception):
    """A malformed or unserviceable request, carrying the HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _require(condition: bool, message: str, status: int = 400) -> None:
    if not condition:
        raise RequestError(message, status=status)


def _int_list(values: object, label: str) -> list[int]:
    _require(isinstance(values, (list, tuple)), f"{label} must be a list")
    try:
        return [int(v) for v in values]
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{label} must contain integers: {exc}") from None


def _float_list(values: object, label: str) -> list[float]:
    _require(isinstance(values, (list, tuple)), f"{label} must be a list")
    try:
        return [float(v) for v in values]
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{label} must contain numbers: {exc}") from None


@lru_cache(maxsize=8)
def _collection_names(size: str, scale: int) -> frozenset[str]:
    from ..machine.a64fx import scaled_machine

    return frozenset(
        spec.name for spec in collection(size, machine=scaled_machine(scale))
    )


def _normalize_matrix(payload: object, scale: int) -> dict:
    _require(isinstance(payload, dict), "request must carry a 'matrix' object")
    if "name" in payload:
        size = payload.get("collection", "small")
        _require(
            size in _SIZES,
            f"unknown collection {size!r} (expected one of {sorted(_SIZES)})",
        )
        name = payload["name"]
        _require(isinstance(name, str) and bool(name), "matrix name must be a string")
        _require(
            name in _collection_names(size, scale),
            f"matrix {name!r} not in the {size!r} collection",
            status=404,
        )
        return {"kind": "named", "collection": size, "name": name}
    if "csr" in payload:
        csr = payload["csr"]
        _require(isinstance(csr, dict), "'csr' must be an object")
        task = {
            "kind": "csr",
            "num_rows": int(csr.get("num_rows", -1)),
            "num_cols": int(csr.get("num_cols", -1)),
            "rowptr": _int_list(csr.get("rowptr"), "csr.rowptr"),
            "colidx": _int_list(csr.get("colidx"), "csr.colidx"),
        }
        if csr.get("values") is not None:
            task["values"] = _float_list(csr["values"], "csr.values")
        _require(task["num_rows"] >= 0 and task["num_cols"] >= 0,
                 "csr.num_rows/num_cols must be non-negative integers")
        return task
    if "coo" in payload:
        coo = payload["coo"]
        _require(isinstance(coo, dict), "'coo' must be an object")
        task = {
            "kind": "coo",
            "num_rows": int(coo.get("num_rows", -1)),
            "num_cols": int(coo.get("num_cols", -1)),
            "rows": _int_list(coo.get("rows"), "coo.rows"),
            "cols": _int_list(coo.get("cols"), "coo.cols"),
        }
        if coo.get("values") is not None:
            task["values"] = _float_list(coo["values"], "coo.values")
        _require(task["num_rows"] >= 0 and task["num_cols"] >= 0,
                 "coo.num_rows/num_cols must be non-negative integers")
        _require(len(task["rows"]) == len(task["cols"]),
                 "coo.rows and coo.cols must have the same length")
        return task
    raise RequestError("matrix must carry 'name', 'csr' or 'coo'")


def _normalize_setup(payload: object) -> dict:
    defaults = ExperimentSetup()
    if payload is None:
        payload = {}
    _require(isinstance(payload, dict), "'setup' must be an object")
    unknown = set(payload) - set(_SETUP_FIELDS)
    _require(not unknown, f"unknown setup fields: {sorted(unknown)}")
    setup: dict = {}
    for name in ("scale", "num_threads", "iterations",
                 "l1_prefetch_distance", "l2_prefetch_distance"):
        value = payload.get(name, getattr(defaults, name))
        try:
            setup[name] = int(value)
        except (TypeError, ValueError):
            raise RequestError(f"setup.{name} must be an integer") from None
        _require(setup[name] >= (1 if name in ("scale", "num_threads", "iterations") else 0),
                 f"setup.{name} out of range")
    for name in ("l2_way_options", "l1_way_options"):
        setup[name] = _int_list(
            payload.get(name, getattr(defaults, name)), f"setup.{name}"
        )
        _require(bool(setup[name]), f"setup.{name} must not be empty")
    return setup


def normalize_request(endpoint: str, payload: object) -> dict:
    """Validate a request payload into its canonical task form.

    Raises :class:`RequestError` (with an HTTP status) on anything
    malformed.  The returned dict contains only plain JSON values and all
    defaults filled in; equal computations yield byte-equal tasks.
    """
    _require(endpoint in ENDPOINTS, f"unknown endpoint {endpoint!r}", status=404)
    _require(isinstance(payload, dict), "request body must be a JSON object")
    setup = _normalize_setup(payload.get("setup"))
    task: dict = {
        "endpoint": endpoint,
        "matrix": _normalize_matrix(payload.get("matrix"), setup["scale"]),
        "setup": setup,
    }

    if endpoint == "classify":
        task["way_options"] = _int_list(
            payload.get("way_options", setup["l2_way_options"]), "way_options"
        )
    elif endpoint == "predict":
        policies = payload.get(
            "policies",
            [{"l2_sector1_ways": w} for w in setup["l2_way_options"]],
        )
        _require(isinstance(policies, (list, tuple)) and policies,
                 "'policies' must be a non-empty list")
        normalized = []
        for entry in policies:
            _require(isinstance(entry, dict), "each policy must be an object")
            try:
                normalized.append(SectorPolicy.from_dict(entry).to_dict())
            except ValueError as exc:
                raise RequestError(f"bad policy: {exc}") from None
        task["policies"] = normalized
    elif endpoint == "advise":
        task["way_options"] = _int_list(
            payload.get("way_options", ADVISE_WAY_OPTIONS), "way_options"
        )
        _require(bool(task["way_options"]), "way_options must not be empty")
        task["consider_isolate_x"] = bool(payload.get("consider_isolate_x", True))
        task["min_sector1_ways_with_prefetch"] = int(
            payload.get("min_sector1_ways_with_prefetch", 4)
        )
    elif endpoint == "optimize":
        from ..optimize.strategies import DEFAULT_STRATEGIES

        strategies = payload.get("strategies", list(DEFAULT_STRATEGIES))
        _require(isinstance(strategies, (list, tuple)) and strategies,
                 "'strategies' must be a non-empty list")
        _require(all(isinstance(s, str) for s in strategies),
                 "'strategies' must contain strategy names")
        unknown = [s for s in strategies if s not in DEFAULT_STRATEGIES]
        _require(not unknown,
                 f"unknown strategies {unknown} (expected a subset of "
                 f"{list(DEFAULT_STRATEGIES)})")
        # canonical order + dedup: the search evaluates in registry order
        # regardless of request order, so equal selections key equally
        task["strategies"] = [s for s in DEFAULT_STRATEGIES if s in strategies]
        try:
            budget = float(payload.get("budget_seconds", 30.0))
        except (TypeError, ValueError):
            raise RequestError("budget_seconds must be a number") from None
        _require(budget > 0, "budget_seconds must be positive")
        task["budget_seconds"] = budget
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError):
            raise RequestError("seed must be an integer") from None
        _require(seed >= 0, "seed must be non-negative")
        task["seed"] = seed
    # sweep needs nothing beyond the setup: it measures the full grid

    if endpoint == "sweep":
        _require("accuracy" not in payload and "max_tier" not in payload,
                 "sweep has no fidelity ladder (it measures the simulator)")
    elif endpoint == "optimize":
        # the search fixes its own screening tiers; only the confirmation
        # accuracy is negotiable
        _require("max_tier" not in payload,
                 "optimize does not accept max_tier (the search screens at "
                 "tiers 0/1 and confirms at tier 2; use 'accuracy' to "
                 "loosen the confirmation)")
        accuracy = payload.get("accuracy")
        if accuracy is not None:
            try:
                accuracy = float(accuracy)
            except (TypeError, ValueError):
                raise RequestError("accuracy must be a number") from None
            _require(accuracy > 0, "accuracy must be positive")
            task["accuracy"] = accuracy
    else:
        accuracy = payload.get("accuracy")
        if accuracy is not None:
            try:
                accuracy = float(accuracy)
            except (TypeError, ValueError):
                raise RequestError("accuracy must be a number") from None
            _require(accuracy > 0, "accuracy must be positive")
            task["accuracy"] = accuracy
        max_tier = payload.get("max_tier")
        if max_tier is not None:
            try:
                max_tier = int(max_tier)
            except (TypeError, ValueError):
                raise RequestError("max_tier must be an integer") from None
            _require(0 <= max_tier <= 3, "max_tier must be between 0 and 3")
            task["max_tier"] = max_tier

    timeout = payload.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise RequestError("timeout must be a number") from None
        _require(timeout > 0, "timeout must be positive")
        task["timeout"] = timeout
    if payload.get("trace"):
        # best-effort observability flag: a span tree comes back only when
        # the request triggers a fresh evaluation (cached or coalesced
        # responses carry "trace": null)
        task["trace"] = True
    if "trace_context" in payload:
        # distributed-trace hop carried in the envelope (or injected from
        # the X-Repro-Trace header): the caller's (trace_id, span_id); the
        # daemon childs its own span off it.  Correlation metadata, not
        # computation — excluded from the request key.
        context = payload["trace_context"]
        problems = validate_context_dict(context)
        _require(not problems, "invalid trace_context: " + "; ".join(problems))
        task["trace_context"] = {"trace_id": context["trace_id"],
                                 "span_id": context["span_id"]}
    if "peer" in payload:
        # warm-cache fill hint attached by the cluster gateway after a
        # rebalance: on a full cache miss the daemon asks this peer's
        # /cache/peek for the key before evaluating.  Routing metadata,
        # not computation — excluded from the request key.
        peer = payload["peer"]
        _require(isinstance(peer, dict) and isinstance(peer.get("host"), str)
                 and peer["host"] != "",
                 "'peer' must be an object with a host string")
        try:
            port = int(peer.get("port"))
        except (TypeError, ValueError):
            raise RequestError("peer.port must be an integer") from None
        _require(0 < port < 65536, "peer.port out of range")
        task["peer"] = {"host": peer["host"], "port": port}
    if "faults" in payload:
        # chaos-testing flag (the daemon refuses it unless started with
        # --allow-fault-injection); validated here so a malformed plan is
        # a 400 with the schema problems spelled out
        from ..resilience.schema import validate_plan

        problems = validate_plan(payload["faults"])
        _require(not problems,
                 "invalid fault plan: " + "; ".join(problems))
        task["faults"] = payload["faults"]
    for hook in ("x_test_sleep", "x_test_crash"):
        if hook in payload:
            task[hook] = payload[hook]
    return task


def normalize_delta(payload: object) -> dict:
    """Validate a ``POST /delta`` body into its canonical form.

    The body references a previously stored request by cache key and
    carries one edit batch::

        {"base": "<32-hex request key>",
         "delta": {"inserts": [[r, c, v?], ...], "deletes": [[r, c], ...]}}

    plus the optional per-request flags the model endpoints accept
    (``accuracy``/``max_tier``/``timeout``/``trace``/``trace_context``).
    The batch is canonicalized through
    :class:`repro.delta.delta.MatrixDelta` — sorted, deduplicated,
    values explicit — so equal edits derive equal chained keys.  Base
    resolution (404/409) happens in the daemon, which owns the stored
    task registry; this function is shape validation only, shared with
    the cluster gateway.
    """
    from ..delta.delta import DeltaError, MatrixDelta

    _require(isinstance(payload, dict), "request body must be a JSON object")
    base = payload.get("base")
    _require(isinstance(base, str) and len(base) == 32
             and all(c in "0123456789abcdef" for c in base),
             "'base' must be a 32-hex request key")
    try:
        batch = MatrixDelta.from_dict(payload.get("delta")).to_dict()
    except DeltaError as exc:
        raise RequestError(f"bad delta: {exc}") from None
    normalized: dict = {"base": base, "delta": batch}
    for name, caster, check, message in (
        ("accuracy", float, lambda v: v > 0, "accuracy must be positive"),
        ("max_tier", int, lambda v: 0 <= v <= 3,
         "max_tier must be between 0 and 3"),
        ("timeout", float, lambda v: v > 0, "timeout must be positive"),
    ):
        value = payload.get(name)
        if value is not None:
            try:
                value = caster(value)
            except (TypeError, ValueError):
                raise RequestError(f"{name} must be a number") from None
            _require(check(value), message)
            normalized[name] = value
    if payload.get("trace"):
        normalized["trace"] = True
    if "trace_context" in payload:
        context = payload["trace_context"]
        problems = validate_context_dict(context)
        _require(not problems, "invalid trace_context: " + "; ".join(problems))
        normalized["trace_context"] = {"trace_id": context["trace_id"],
                                       "span_id": context["span_id"]}
    return normalized


def delta_routing_key(payload: object) -> str:
    """The base key a ``/delta`` request routes by (gateway-side).

    Delta requests must land on the replica that answered — and so holds
    the stored task, warm cache entries and worker reuse states of — the
    base request; hashing the ring by the base key achieves exactly that,
    since the base request itself was routed by it.  Shape problems raise
    :class:`RequestError` so the gateway can reject without a hop.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    base = payload.get("base")
    _require(isinstance(base, str) and len(base) == 32
             and all(c in "0123456789abcdef" for c in base),
             "'base' must be a 32-hex request key")
    return base


def derive_delta_task(stored: dict, normalized: dict, delta_budget: int) -> dict:
    """The canonical task of a delta request against its stored base.

    The derived task is the stored base task with its matrix wrapped (or
    extended) as a ``{"kind": "delta"}`` spec — so the inner endpoint,
    setup and endpoint knobs are inherited verbatim and the derived
    request key chains deterministically from the base content plus the
    canonical batch.  Volatile flags never survive from the stored task;
    the fresh request's own flags are applied instead.
    """
    task = {k: v for k, v in stored.items()
            if k not in ("timeout", "trace", "trace_context", "faults",
                         "peer", "accuracy", "max_tier", "delta_budget")}
    matrix = task["matrix"]
    if matrix["kind"] == "delta":
        task["matrix"] = {"kind": "delta", "base": matrix["base"],
                          "batches": list(matrix["batches"]) + [normalized["delta"]]}
    else:
        task["matrix"] = {"kind": "delta", "base": matrix,
                          "batches": [normalized["delta"]]}
    for flag in ("accuracy", "max_tier", "timeout", "trace", "trace_context"):
        if flag in normalized:
            task[flag] = normalized[flag]
    task["delta_budget"] = int(delta_budget)
    return task


def request_key(task: dict) -> str:
    """Cache/coalescing key of a canonical task.

    The per-request ``timeout``, ``trace``, ``trace_context``, ``faults``
    and ``peer`` flags are excluded: they bound the wait, shape the
    presentation, correlate the trace, perturb the execution, or steer
    cache fill, not the computation a correct evaluation performs, so
    requests differing only in those share one result.  (Fault-carrying
    requests never *write* the cache — the key only lets them read what a
    healthy request stored.)  The fidelity-ladder flags ``accuracy`` and
    ``max_tier`` are excluded too: every tier answers the *same* question,
    so a ladder request whose SLO a cached exact (tier-2) result satisfies
    should hit that entry, and a ladder answer that escalated to tier 2
    warms the cache for legacy requests (the daemon decides per tier what
    to read and write — see :mod:`repro.service.app`).  ``optimize`` is
    the exception: its ``accuracy`` shapes the *search* (the confirmation
    tier is part of the result), so it stays in the key alongside the
    strategies/budget/seed search config.  ``delta_budget`` (the daemon's
    patch-work ceiling, injected into derived delta tasks) is excluded
    for the same reason as the ladder flags: in-budget and fallback
    evaluations answer identically byte for byte, so daemons configured
    with different budgets must still share cache entries.
    """
    excluded = ("timeout", "trace", "trace_context", "faults", "peer",
                "delta_budget")
    if task.get("endpoint") != "optimize":
        excluded += ("accuracy", "max_tier")
    keyed = {k: v for k, v in task.items() if k not in excluded}
    digest = hashlib.sha256(canonical_json(["v1", keyed]).encode()).hexdigest()
    return digest[:32]


# ----------------------------------------------------------------------
# worker-side builders
# ----------------------------------------------------------------------

def setup_from_task(task: dict) -> ExperimentSetup:
    """The :class:`ExperimentSetup` a task's computation runs under."""
    setup = task["setup"]
    return ExperimentSetup(
        scale=setup["scale"],
        num_threads=setup["num_threads"],
        iterations=setup["iterations"],
        l1_prefetch_distance=setup["l1_prefetch_distance"],
        l2_prefetch_distance=setup["l2_prefetch_distance"],
        l2_way_options=tuple(setup["l2_way_options"]),
        l1_way_options=tuple(setup["l1_way_options"]),
    )


def matrix_name(task: dict) -> str:
    """Stable name of a task's matrix (content-addressed when inline).

    For named matrices this is the collection name, so service ``sweep``
    requests share on-disk records with ``python -m repro.experiments``
    sweeps of the same setup.
    """
    matrix = task["matrix"]
    if matrix["kind"] == "named":
        return matrix["name"]
    digest = hashlib.sha256(canonical_json(matrix).encode()).hexdigest()[:12]
    if matrix["kind"] == "delta":
        return f"delta-{digest}"
    return f"inline-{digest}"


def matrix_from_task(task: dict) -> CSRMatrix:
    """Materialize a task's matrix (runs inside a pool worker)."""
    spec = task["matrix"]
    name = matrix_name(task)
    if spec["kind"] == "delta":
        # base pattern plus the accumulated edit chain, every batch
        # validated against the pattern it lands on
        import dataclasses

        from ..delta.delta import MatrixDelta

        matrix = matrix_from_task({"matrix": spec["base"],
                                   "setup": task.get("setup")})
        for batch in spec["batches"]:
            matrix = MatrixDelta.from_dict(batch).apply(matrix).matrix
        return dataclasses.replace(matrix, name=name)
    if spec["kind"] == "named":
        machine = setup_from_task(task).machine()
        for candidate in collection(spec["collection"], machine=machine):
            if candidate.name == name:
                return candidate.materialize()
        raise KeyError(f"matrix {name!r} not in the {spec['collection']!r} collection")
    if spec["kind"] == "csr":
        values = spec.get("values")
        rowptr = np.asarray(spec["rowptr"], dtype=np.int64)
        nnz = int(rowptr[-1]) if rowptr.size else 0
        return CSRMatrix(
            spec["num_rows"],
            spec["num_cols"],
            rowptr,
            np.asarray(spec["colidx"], dtype=np.int32),
            np.ones(nnz) if values is None else np.asarray(values, dtype=np.float64),
            name=name,
        )
    return CSRMatrix.from_coo(
        spec["num_rows"],
        spec["num_cols"],
        np.asarray(spec["rows"], dtype=np.int64),
        np.asarray(spec["cols"], dtype=np.int64),
        None if spec.get("values") is None
        else np.asarray(spec["values"], dtype=np.float64),
        name=name,
    )
