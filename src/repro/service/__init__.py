"""Locality advisor service: async daemon serving the paper's models.

The paper's practical payoff — "should I enable the sector cache, and
with how many ways?" — is a cheap per-matrix decision worth serving
online.  This package turns the model layer into a stdlib-only
JSON-over-HTTP daemon:

* ``python -m repro.service --port 8787 --jobs 4`` starts the daemon;
* :class:`repro.service.client.ServiceClient` is the matching client;
* endpoints: ``/classify``, ``/predict`` (method-B miss counts per
  policy), ``/advise`` (full :class:`~repro.core.SectorAdvisor`
  recommendation), ``/sweep`` (full measurement bundle), ``/metrics``,
  ``/healthz``, ``/shutdown``.

Matrices are submitted inline (COO/CSR arrays) or named from the
synthetic collection.  Results flow through a two-tier cache (in-memory
LRU with TTL and a byte budget over the ``.repro_cache`` disk records),
identical concurrent requests coalesce onto one model evaluation, and
the CPU work runs on the sweep engine's process pool so the event loop
stays responsive.

The service self-heals (see :mod:`repro.resilience` and
``docs/OPERATIONS.md``): per-endpoint circuit breakers in front of the
pool, an analytic degraded mode that answers ``classify``/``predict``/
``advise`` from Method B's closed forms when the pool is saturated or a
breaker is open, quarantine-and-reevaluate healing of corrupt disk-cache
entries, and opt-in client retries with capped jittered backoff.  Chaos
testing is built in: start the daemon with ``--allow-fault-injection``
and ship seeded ``repro.resilience.plan/v1`` fault plans per request.
"""

from .app import LocalityService, ServiceConfig, ServiceThread, run_server
from .cache import MemoryLRU, TieredResultCache
from .client import ServiceClient, ServiceError, matrix_payload
from .metrics import ServiceMetrics
from .protocol import ENDPOINTS, RequestError, normalize_request, request_key

__all__ = [
    "ENDPOINTS",
    "LocalityService",
    "MemoryLRU",
    "RequestError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceThread",
    "TieredResultCache",
    "matrix_payload",
    "normalize_request",
    "request_key",
    "run_server",
]
