"""``python -m repro.service`` starts the advisor daemon.

Examples::

    python -m repro.service --port 8787 --jobs 4
    python -m repro.service --port 0 --cache /tmp/advisor-cache
    python -m repro.service --cache ''          # disk tier disabled
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from .app import ServiceConfig, run_server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service",
                                     description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="0 binds an ephemeral port (announced on stdout)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="model-evaluation worker processes")
    parser.add_argument("--cache", default=".repro_cache",
                        help="disk cache directory shared with the sweep "
                             "engine ('' disables the disk tier)")
    parser.add_argument("--cache-ttl", type=float, default=300.0,
                        help="memory-tier TTL in seconds")
    parser.add_argument("--cache-bytes", type=int, default=64 * 2**20,
                        help="memory-tier byte budget")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="default per-request evaluation budget in seconds")
    parser.add_argument("--test-hooks", action="store_true",
                        help=argparse.SUPPRESS)  # fault injection for tests/CI
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be positive")

    config = ServiceConfig(
        jobs=args.jobs,
        cache_dir=args.cache or None,
        memory_ttl_seconds=args.cache_ttl,
        memory_max_bytes=args.cache_bytes,
        request_timeout=args.timeout,
        test_hooks=args.test_hooks,
    )
    try:
        asyncio.run(run_server(config, host=args.host, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
