"""``python -m repro.service`` starts the advisor daemon.

Examples::

    python -m repro.service --port 8787 --jobs 4
    python -m repro.service --port 0 --cache /tmp/advisor-cache
    python -m repro.service --cache ''          # disk tier disabled
    python -m repro.service --allow-fault-injection \
        --fault-plan chaos.json                 # chaos testing
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from dataclasses import replace

from ..resilience.faults import FaultPlan
from ..resilience.schema import validate_plan
from .app import ServiceConfig, run_server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service",
                                     description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="0 binds an ephemeral port (announced on stdout)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="model-evaluation worker processes")
    parser.add_argument("--cache", default=".repro_cache",
                        help="disk cache directory shared with the sweep "
                             "engine ('' disables the disk tier)")
    parser.add_argument("--cache-ttl", type=float, default=300.0,
                        help="memory-tier TTL in seconds")
    parser.add_argument("--cache-bytes", type=int, default=64 * 2**20,
                        help="memory-tier byte budget")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="default per-request evaluation budget in seconds")
    parser.add_argument("--test-hooks", action="store_true",
                        help=argparse.SUPPRESS)  # fault injection for tests/CI
    parser.add_argument("--allow-fault-injection", action="store_true",
                        help="accept the 'faults' request flag (chaos "
                             "testing; refused with a 403 otherwise)")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                        help="ambient repro.resilience.plan/v1 fault plan, "
                             "inherited by pool workers (requires "
                             "--allow-fault-injection)")
    parser.add_argument("--breaker-threshold", type=int, default=5,
                        help="consecutive evaluation failures that open an "
                             "endpoint's circuit breaker")
    parser.add_argument("--breaker-recovery", type=float, default=30.0,
                        help="seconds an open breaker waits before probing")
    parser.add_argument("--breaker-probes", type=int, default=1,
                        help="trial evaluations through a half-open breaker")
    parser.add_argument("--no-degraded", action="store_true",
                        help="shed with 503 instead of answering from the "
                             "analytic degraded path")
    parser.add_argument("--saturation-depth", type=int, default=64,
                        help="queue depth at which requests degrade instead "
                             "of queueing (0 disables)")
    parser.add_argument("--default-accuracy", type=float, default=None,
                        metavar="BOUND",
                        help="fidelity-ladder accuracy SLO injected into "
                             "model requests that carry none (floored "
                             "relative error, e.g. 0.5; unset keeps the "
                             "legacy fixed-fidelity behaviour)")
    parser.add_argument("--max-tier", type=int, default=None,
                        choices=(0, 1, 2, 3),
                        help="fidelity-ladder tier cap injected into model "
                             "requests that carry none")
    parser.add_argument("--max-optimize-budget", type=float, default=120.0,
                        metavar="SECONDS",
                        help="largest budget_seconds an /optimize request "
                             "may ask for (400 above it)")
    parser.add_argument("--peer-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="ceiling on one /cache/peek round trip to a "
                             "peer replica before evaluating locally")
    parser.add_argument("--gc-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="run a disk-cache GC sweep this often (off by "
                             "default; needs --gc-max-age and/or "
                             "--gc-max-bytes)")
    parser.add_argument("--gc-max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="GC: delete cache entries older than this")
    parser.add_argument("--gc-max-bytes", type=int, default=None,
                        help="GC: then delete oldest entries until the "
                             "cache directory fits this budget")
    parser.add_argument("--event-log", default=None, metavar="PATH",
                        help="append structured repro.obs.events/v1 JSON "
                             "lines here (validated by `python -m "
                             "repro.obs.events --validate PATH`)")
    parser.add_argument("--event-log-bytes", type=int, default=None,
                        metavar="BYTES",
                        help="rotate the event log once it exceeds this "
                             "(default 16 MiB; one .1 generation is kept)")
    parser.add_argument("--audit-rate", type=float, default=0.0,
                        metavar="FRACTION",
                        help="shadow-sample this deterministic fraction of "
                             "delivered tier-0/1 ladder answers and re-answer "
                             "them at tier 2 off the hot path (0 disables)")
    parser.add_argument("--audit-budget-seconds", type=float, default=None,
                        metavar="SECONDS",
                        help="total pool seconds the accuracy audit may "
                             "spend over the daemon's lifetime (unset: "
                             "unbounded)")
    parser.add_argument("--audit-seed", type=int, default=0,
                        help="seed of the deterministic audit sampler "
                             "(replicas sharing a seed audit the same keys)")
    parser.add_argument("--trace-buffer", type=int, default=64,
                        metavar="N",
                        help="traced requests kept for GET /debug/traces")
    parser.add_argument("--delta-budget", type=int, default=65536,
                        metavar="ELEMENTS",
                        help="patch-work ceiling of the POST /delta "
                             "incremental engine (summed dirty reuse-window "
                             "elements; past it a delta falls back to full "
                             "re-evaluation, 0 forces the fallback always)")
    args = parser.parse_args(argv)
    if args.delta_budget < 0:
        parser.error("--delta-budget must be non-negative")
    if args.gc_interval is not None and args.gc_max_age is None \
            and args.gc_max_bytes is None:
        parser.error("--gc-interval needs --gc-max-age and/or --gc-max-bytes")
    if args.default_accuracy is not None and args.default_accuracy <= 0:
        parser.error("--default-accuracy must be positive")
    if args.max_optimize_budget <= 0:
        parser.error("--max-optimize-budget must be positive")
    if args.jobs < 1:
        parser.error("--jobs must be positive")
    fault_plan = None
    if args.fault_plan is not None:
        if not args.allow_fault_injection:
            parser.error("--fault-plan requires --allow-fault-injection")
        try:
            payload = json.loads(open(args.fault_plan).read())
        except (OSError, json.JSONDecodeError) as exc:
            parser.error(f"--fault-plan: cannot read {args.fault_plan}: {exc}")
        problems = validate_plan(payload)
        if problems:
            parser.error("--fault-plan: " + "; ".join(problems))
        fault_plan = FaultPlan.from_dict(payload)

    config = ServiceConfig(
        jobs=args.jobs,
        cache_dir=args.cache or None,
        memory_ttl_seconds=args.cache_ttl,
        memory_max_bytes=args.cache_bytes,
        request_timeout=args.timeout,
        test_hooks=args.test_hooks,
        allow_fault_injection=args.allow_fault_injection,
        fault_plan=fault_plan,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_recovery_seconds=args.breaker_recovery,
        breaker_half_open_probes=args.breaker_probes,
        degraded_mode=not args.no_degraded,
        saturation_queue_depth=args.saturation_depth or None,
        default_accuracy=args.default_accuracy,
        default_max_tier=args.max_tier,
        max_optimize_budget_seconds=args.max_optimize_budget,
        peer_timeout_seconds=args.peer_timeout,
        gc_interval_seconds=args.gc_interval,
        gc_max_age_seconds=args.gc_max_age,
        gc_max_bytes=args.gc_max_bytes,
        event_log_path=args.event_log,
        audit_rate=args.audit_rate,
        audit_budget_seconds=args.audit_budget_seconds,
        audit_seed=args.audit_seed,
        trace_buffer_size=args.trace_buffer,
        delta_budget=args.delta_budget,
    )
    if args.event_log_bytes is not None:
        config = replace(config, event_log_max_bytes=args.event_log_bytes)
    try:
        asyncio.run(run_server(config, host=args.host, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
