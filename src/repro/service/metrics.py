"""Observability surface of the advisor service.

Everything ``/metrics`` reports lives here: request counts per endpoint
and status, model-evaluation counts (the coalescing tests key off these
— N concurrent identical requests must increment an evaluation counter
exactly once), coalesced and cache-served request counts, cumulative
latency histograms, queue depth, and worker utilization.  The snapshot
is a plain JSON object so any scraper can consume it; bucket boundaries
follow the usual Prometheus-style ``le`` convention.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from typing import Callable

#: Histogram bucket upper bounds in seconds (+Inf is implicit).
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram:
    """Cumulative histogram of observed seconds."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: +Inf
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        cumulative = 0
        out: dict = {"count": self.total, "sum_seconds": self.sum_seconds,
                     "buckets": {}}
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            out["buckets"][str(bound)] = cumulative
        out["buckets"]["+Inf"] = self.total
        return out


class ServiceMetrics:
    """Counters and gauges behind ``/metrics``."""

    def __init__(self, jobs: int, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.started = clock()
        self.jobs = jobs
        #: endpoint -> {"ok": n, "error": n, ...} terminal statuses
        self.requests: dict[str, Counter] = defaultdict(Counter)
        #: endpoint -> model evaluations actually performed
        self.evaluations: Counter = Counter()
        #: endpoint -> requests that piggybacked on an in-flight evaluation
        self.coalesced: Counter = Counter()
        #: endpoint -> requests served from a cache tier
        self.cache_served: dict[str, Counter] = defaultdict(Counter)
        self.latency: dict[str, LatencyHistogram] = defaultdict(LatencyHistogram)
        self.queue_depth = 0
        self.queue_peak = 0
        self.workers_busy = 0
        self.workers_peak = 0
        self.worker_restarts = 0
        self.timeouts = 0

    # -- gauges --------------------------------------------------------
    def enqueue(self) -> None:
        self.queue_depth += 1
        self.queue_peak = max(self.queue_peak, self.queue_depth)

    def dequeue(self) -> None:
        self.queue_depth -= 1

    def worker_started(self) -> None:
        self.workers_busy += 1
        self.workers_peak = max(self.workers_peak, self.workers_busy)

    def worker_finished(self) -> None:
        self.workers_busy -= 1

    # -- terminal accounting -------------------------------------------
    def observe_request(self, endpoint: str, status: str, seconds: float) -> None:
        self.requests[endpoint][status] += 1
        self.latency[endpoint].observe(seconds)

    def snapshot(self, cache_stats: dict) -> dict:
        return {
            "uptime_seconds": self._clock() - self.started,
            "requests": {ep: dict(c) for ep, c in sorted(self.requests.items())},
            "evaluations": dict(self.evaluations),
            "coalesced": dict(self.coalesced),
            "cache_served": {ep: dict(c) for ep, c in sorted(self.cache_served.items())},
            "latency_seconds": {
                ep: hist.snapshot() for ep, hist in sorted(self.latency.items())
            },
            "cache": cache_stats,
            "queue": {"depth": self.queue_depth, "peak": self.queue_peak},
            "workers": {
                "jobs": self.jobs,
                "busy": self.workers_busy,
                "peak_busy": self.workers_peak,
                "restarts": self.worker_restarts,
                "timeouts": self.timeouts,
            },
        }
