"""Observability surface of the advisor service.

Everything ``/metrics`` reports lives here: request counts per endpoint
and status, model-evaluation counts (the coalescing tests key off these
— N concurrent identical requests must increment an evaluation counter
exactly once), coalesced and cache-served request counts, cumulative
latency histograms, queue depth, and worker utilization.  The snapshot
is a plain JSON object so any scraper can consume it; bucket boundaries
follow the usual Prometheus-style ``le`` convention.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from typing import Callable

# the histogram lives in the shared observability layer now; re-exported
# here because service code and its tests import it from this module
from ..obs.histogram import LATENCY_BUCKETS, LatencyHistogram

__all__ = ["DRIFT_BUCKETS", "IMPROVEMENT_BUCKETS", "LATENCY_BUCKETS",
           "LatencyHistogram", "ServiceMetrics"]

#: predicted-improvement histogram boundaries (fraction of baseline
#: misses removed; 1.0 would mean every L2 miss optimized away)
IMPROVEMENT_BUCKETS = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)

#: accumulated-drift histogram boundaries (edited-edge fraction of the
#: base pattern across a delta chain; 1.0 would mean as many edits as
#: base nonzeros)
DRIFT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0)


class ServiceMetrics:
    """Counters and gauges behind ``/metrics``."""

    def __init__(self, jobs: int, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.started = clock()
        self.jobs = jobs
        #: endpoint -> {"ok": n, "error": n, ...} terminal statuses
        self.requests: dict[str, Counter] = defaultdict(Counter)
        #: endpoint -> model evaluations actually performed
        self.evaluations: Counter = Counter()
        #: endpoint -> requests that piggybacked on an in-flight evaluation
        self.coalesced: Counter = Counter()
        #: endpoint -> requests served from a cache tier
        self.cache_served: dict[str, Counter] = defaultdict(Counter)
        #: endpoint -> reason -> requests answered from the degraded path
        self.degraded: dict[str, Counter] = defaultdict(Counter)
        #: endpoint -> tier (as str) -> ladder answers delivered at that tier
        self.ladder_answers: dict[str, Counter] = defaultdict(Counter)
        #: escalations-per-answer -> ladder answers (the histogram of how
        #: many extra tiers each SLO-carrying request had to climb)
        self.ladder_escalations: Counter = Counter()
        #: "site:kind" -> injected faults fired (parent-side sites plus
        #: per-request worker plans; ambient worker-side fires are only
        #: visible through their injected outcomes)
        self.faults_injected: Counter = Counter()
        #: outcome -> peer warm-cache fills attempted by this replica
        #: ("hit", "miss", "error", "skipped")
        self.peer_fill: Counter = Counter()
        #: outcome -> /cache/peek requests served to peers
        #: ("hit", "miss")
        self.cache_peek: Counter = Counter()
        #: periodic disk-cache GC totals (sweeps run, files deleted,
        #: bytes reclaimed, quarantine files preserved)
        self.gc_sweeps = 0
        self.gc_deleted = 0
        self.gc_deleted_bytes = 0
        self.gc_quarantined = 0
        #: delta: endpoint -> path ("incremental"/"tier0"/"ladder") ->
        #: evaluations answered without a full stack pass
        self.delta_applied: dict[str, Counter] = defaultdict(Counter)
        #: delta: endpoint -> reason ("budget"/"threads"/"iterations") ->
        #: evaluations that fell back to full re-evaluation
        self.delta_fallback: dict[str, Counter] = defaultdict(Counter)
        #: accumulated drift (edit fraction) per delta evaluation
        self.delta_drift = LatencyHistogram(buckets=DRIFT_BUCKETS)
        #: optimize: strategy label -> terminal status -> searches
        self.optimize_strategies: dict[str, Counter] = defaultdict(Counter)
        #: optimize: confirmed predicted improvement per fresh search
        self.optimize_improvement = LatencyHistogram(buckets=IMPROVEMENT_BUCKETS)
        #: endpoint -> cumulative worker-side self seconds per span name
        self.phase_seconds: dict[str, Counter] = defaultdict(Counter)
        self.latency: dict[str, LatencyHistogram] = defaultdict(LatencyHistogram)
        self.queue_depth = 0
        self.queue_peak = 0
        self.workers_busy = 0
        self.workers_peak = 0
        self.worker_restarts = 0
        self.timeouts = 0

    # -- gauges --------------------------------------------------------
    def enqueue(self) -> None:
        self.queue_depth += 1
        self.queue_peak = max(self.queue_peak, self.queue_depth)

    def dequeue(self) -> None:
        self.queue_depth -= 1

    def worker_started(self) -> None:
        self.workers_busy += 1
        self.workers_peak = max(self.workers_peak, self.workers_busy)

    def worker_finished(self) -> None:
        self.workers_busy -= 1

    # -- terminal accounting -------------------------------------------
    def observe_request(self, endpoint: str, status: str, seconds: float) -> None:
        self.requests[endpoint][status] += 1
        self.latency[endpoint].observe(seconds)

    def observe_ladder(self, endpoint: str, tier: int, escalations: int) -> None:
        """Account one fidelity-ladder answer (delivered tier + climbs)."""
        self.ladder_answers[endpoint][str(tier)] += 1
        self.ladder_escalations[int(escalations)] += 1

    def observe_optimize(self, result: dict) -> None:
        """Account one fresh reordering search (its wire result dict).

        Per-strategy terminal statuses, the confirmed predicted
        improvement, and the search's ladder answers — the latter folded
        into ``ladder_answers["optimize"]`` so the "screens at tier 0/1,
        exact only at confirmation" invariant is assertable straight off
        ``/metrics`` (at most two tier-2 entries per search).
        """
        for entry in result.get("strategies", ()):
            self.optimize_strategies[entry["label"]][entry["status"]] += 1
        confirmation = result.get("confirmation", {})
        if "improvement" in confirmation:
            self.optimize_improvement.observe(float(confirmation["improvement"]))
        counter = self.ladder_answers["optimize"]
        for tier, count in result.get("fidelity", {}).get(
                "ladder_answers", {}).items():
            counter[str(tier)] += int(count)

    def observe_delta(self, endpoint: str, meta: dict) -> None:
        """Account one fresh delta evaluation (its worker metadata).

        ``meta["path"]`` says how the worker priced it: any value but
        ``"fallback"`` means the full stack pass was avoided (counted in
        ``delta_applied`` under the path), ``"fallback"`` counts under
        its reason.  The accumulated drift always feeds the histogram.
        """
        path = meta.get("path", "incremental")
        if path == "fallback":
            self.delta_fallback[endpoint][meta.get("reason", "unknown")] += 1
        else:
            self.delta_applied[endpoint][path] += 1
        if "drift" in meta:
            self.delta_drift.observe(float(meta["drift"]))

    def observe_gc(self, stats: dict) -> None:
        """Fold one :func:`~repro.service.cache.gc_sweep` result in."""
        self.gc_sweeps += 1
        self.gc_deleted += int(stats.get("deleted", 0))
        self.gc_deleted_bytes += int(stats.get("deleted_bytes", 0))
        self.gc_quarantined = int(stats.get("quarantined", 0))

    def observe_phases(self, endpoint: str, phases: dict) -> None:
        """Fold one evaluation's per-phase self seconds into the totals."""
        counter = self.phase_seconds[endpoint]
        for name, seconds in phases.items():
            counter[name] += float(seconds)

    def snapshot(self, cache_stats: dict, breakers: dict | None = None) -> dict:
        """The ``/metrics`` JSON object.

        ``breakers`` maps endpoint -> :class:`repro.resilience.CircuitBreaker`;
        their snapshots ride under ``"breakers"`` (empty when the caller
        has none, e.g. unit tests of the bare metrics object).
        """
        return {
            "uptime_seconds": self._clock() - self.started,
            "requests": {ep: dict(c) for ep, c in sorted(self.requests.items())},
            "evaluations": dict(self.evaluations),
            "coalesced": dict(self.coalesced),
            "cache_served": {ep: dict(c) for ep, c in sorted(self.cache_served.items())},
            "degraded": {ep: dict(c) for ep, c in sorted(self.degraded.items())},
            "ladder": {
                "answers": {ep: {tier: c[tier] for tier in sorted(c)}
                            for ep, c in sorted(self.ladder_answers.items())},
                "escalations": {str(k): self.ladder_escalations[k]
                                for k in sorted(self.ladder_escalations)},
            },
            "optimize": {
                "strategies": {label: dict(c) for label, c
                               in sorted(self.optimize_strategies.items())},
                "improvement": self.optimize_improvement.snapshot(),
            },
            "delta": {
                "applied": {ep: dict(c) for ep, c
                            in sorted(self.delta_applied.items())},
                "fallback": {ep: dict(c) for ep, c
                             in sorted(self.delta_fallback.items())},
                "drift": self.delta_drift.snapshot(),
            },
            "peer_fill": {k: self.peer_fill[k] for k in sorted(self.peer_fill)},
            "cache_peek": {k: self.cache_peek[k]
                           for k in sorted(self.cache_peek)},
            "gc": {
                "sweeps": self.gc_sweeps,
                "deleted": self.gc_deleted,
                "deleted_bytes": self.gc_deleted_bytes,
                "quarantined": self.gc_quarantined,
            },
            "faults_injected": {k: self.faults_injected[k]
                                for k in sorted(self.faults_injected)},
            "breakers": {ep: breaker.snapshot()
                         for ep, breaker in sorted((breakers or {}).items())},
            "evaluation_phase_seconds": {
                ep: {name: c[name] for name in sorted(c)}
                for ep, c in sorted(self.phase_seconds.items())
            },
            "latency_seconds": {
                ep: hist.snapshot() for ep, hist in sorted(self.latency.items())
            },
            "cache": cache_stats,
            "queue": {"depth": self.queue_depth, "peak": self.queue_peak},
            "workers": {
                "jobs": self.jobs,
                "busy": self.workers_busy,
                "peak_busy": self.workers_peak,
                "restarts": self.worker_restarts,
                "timeouts": self.timeouts,
            },
        }
