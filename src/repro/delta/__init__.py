"""Incremental reuse engine for dynamic (mutating) sparse matrices.

Production graph workloads gain and lose edges continuously; re-running
the full stack pass — and cold-starting every cache key — on each edit
is exactly the cost the fidelity ladder and the cluster cache were built
to avoid.  This package makes pattern edits first-class:

* :mod:`repro.delta.delta` — canonical edge-delta batches
  (:class:`MatrixDelta`) with validation, stable fingerprints, and exact
  CSR patching that reports trace-coordinate mappings;
* :mod:`repro.delta.state` — :class:`ReuseState`, steady-state reuse
  distances patched *exactly* through a delta (byte-identical to a fresh
  periodic pass) within a work budget, :class:`BudgetExceeded` past it;
* :mod:`repro.delta.engine` — worker-side pricing of delta tasks:
  incremental when the structure localizes the edit, conservative full
  re-evaluation otherwise, with worker-local warm state chains;
* :mod:`repro.delta.ladder` — drift-inflated tier-0 bounds so a delta
  re-escalates fidelity tiers only when accumulated edits outgrow the
  request's accuracy SLO.

The service surface is ``POST /delta`` (see :mod:`repro.service.app`):
a stored base key plus one edit batch derives a chained cache key whose
result is byte-identical to evaluating the edited matrix from scratch.
"""

from .delta import MAX_EDITS, DeltaApplication, DeltaError, MatrixDelta
from .engine import DEFAULT_BUDGET, evaluate_delta_task, seeded_model
from .state import BudgetExceeded, ReuseState, full_reuse_state, x_lines

__all__ = [
    "BudgetExceeded",
    "DEFAULT_BUDGET",
    "DeltaApplication",
    "DeltaError",
    "MAX_EDITS",
    "MatrixDelta",
    "ReuseState",
    "evaluate_delta_task",
    "full_reuse_state",
    "seeded_model",
    "x_lines",
]
