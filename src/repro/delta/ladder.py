"""Drift-gated fidelity-ladder answers for delta tasks.

The fidelity ladder's tier-0 closed forms read only ``(num_rows,
num_cols, nnz)`` — and a delta moves those by exactly its insert/delete
counts, so tier 0 prices an edited pattern *for free*.  What a delta
does cost is confidence: the calibrated tier-0 bound was measured
against unedited generator patterns, and every accumulated edit drags
the pattern away from that population.  This module charges that
honestly: the **accumulated drift** (edited-edge fraction of the base
pattern, :func:`repro.delta.engine.chain_drift`) is added to the tier-0
error bound, and a delta request only re-escalates past tier 0 when the
inflated bound no longer satisfies the request's ``accuracy`` SLO —
the ROADMAP's "a delta only needs re-escalation when the closed-form
tier's error bound is exceeded".

Escalation lands on the incremental exact path
(:func:`repro.delta.engine.evaluate_delta_task` without ladder flags),
which is tier-2 fidelity at patch cost.  Only a ``max_tier: 3`` request
whose SLO tier 2 cannot meet delegates to the generic
:class:`~repro.ladder.Ladder` (the simulator dwarfs any patch saving).

Fidelity metadata mirrors :meth:`repro.ladder.engine.LadderAnswer.fidelity`
key for key — the daemon's tier metrics, caching rules and audit
sampling consume it unchanged — plus a ``"drift"`` entry.
"""

from __future__ import annotations

import time

from ..core.classification import classify
from ..ladder.calibration import DEFAULT_CALIBRATION
from ..ladder.engine import Ladder, tier2_apriori_bound
from ..ladder.tier0 import answer_task as tier0_answer_task
from ..ladder.tier0 import dims_from_task, num_cmgs


def _request_ways(task: dict) -> list[int]:
    """The sector-1 way splits a request prices (class depends on them)."""
    if task["endpoint"] == "predict":
        return sorted({int(p.get("l2_sector1_ways", 0)) for p in task["policies"]})
    return sorted(set(task["way_options"]))


def _num_policies(task: dict) -> int:
    if task["endpoint"] == "predict":
        return len(task["policies"])
    if task["endpoint"] == "advise":
        return len(task["way_options"]) + (1 if task["consider_isolate_x"] else 0)
    return 1


def tier0_drift_bound(task: dict, machine, setup,
                      calibration=DEFAULT_CALIBRATION) -> tuple[float, float]:
    """``(bound, drift)``: the drift-inflated tier-0 bound of a delta task.

    ``bound = tier2_apriori + worst tier-0 term over the priced way
    splits + drift`` — the same composition the ladder uses, with the
    accumulated edit fraction charged on top.
    """
    from .engine import chain_drift

    spec = task["matrix"]
    dims = dims_from_task(task, machine)
    base_dims = dims_from_task({"matrix": spec["base"], "setup": task["setup"]},
                               machine)
    drift = chain_drift(spec, base_dims.nnz)
    if task["endpoint"] == "classify":
        return 0.0, drift
    cmgs = num_cmgs(machine, task["setup"]["num_threads"])
    tier0_term = max(
        calibration.tier0_term(classify(dims, machine, ways, cmgs).value,
                               deep=False)
        for ways in _request_ways(task)
    )
    return tier2_apriori_bound(task, machine, setup) + tier0_term + drift, drift


def _fidelity(tier: int, bound: float, accuracy, cost: float, predicted: float,
              tried: list[int], bounds: list[float], drift: float) -> dict:
    return {
        "tier": tier,
        "error_bound": bound,
        "accuracy_slo": accuracy,
        "slo_met": accuracy is None or bound <= accuracy,
        "cost_seconds": cost,
        "predicted_cost_seconds": predicted,
        "tiers_tried": tried,
        "tier_bounds": bounds,
        "escalations": max(0, len(tried) - 1),
        "drift": drift,
    }


def answer_delta_task(task: dict) -> tuple[dict, dict, dict]:
    """Answer a delta task carrying ``accuracy``/``max_tier`` flags.

    Returns ``(result, fidelity, meta)`` for the worker payload.
    """
    from ..service.protocol import matrix_from_task, matrix_name, setup_from_task
    from .engine import evaluate_delta_task

    started = time.perf_counter()
    setup = setup_from_task(task)
    machine = setup.machine()
    accuracy = task.get("accuracy")
    max_tier = task.get("max_tier")
    allowed = 3 if max_tier is None else max_tier
    name = matrix_name(task)
    ladder = Ladder(setup)
    dims = dims_from_task(task, machine)
    bound0, drift = tier0_drift_bound(task, machine, setup)
    meta = {"drift": drift, "tier0_bound": bound0}

    # mirror the ladder's target rule: without an SLO a request lands on
    # min(2, max_tier); with one, tier 0 serves while its inflated bound
    # holds and escalation needs headroom in max_tier
    escalate = (
        task["endpoint"] != "classify"
        and allowed >= 2
        and (accuracy is None or bound0 > accuracy)
    )
    if not escalate:
        result = tier0_answer_task(task, machine, name)
        bound = bound0
        fidelity = _fidelity(
            0, bound, accuracy, time.perf_counter() - started,
            ladder.predicted_cost(0, dims.nnz, _num_policies(task)),
            [0], [bound], drift,
        )
        meta.update(path="tier0", reason="drift-within-bound")
        return result, fidelity, meta

    tier2_bound = tier2_apriori_bound(task, machine, setup)
    if allowed == 3 and accuracy is not None and tier2_bound > accuracy:
        # only the simulator can meet this SLO: the generic ladder runs
        # it on the materialized pattern (patch savings are noise there)
        answer = ladder.answer_task(task, name, lambda: matrix_from_task(task))
        fidelity = answer.fidelity()
        fidelity["drift"] = drift
        meta.update(path="ladder", reason="slo-needs-simulation")
        return answer.result, fidelity, meta

    stripped = {k: v for k, v in task.items()
                if k not in ("accuracy", "max_tier")}
    result, _, inner = evaluate_delta_task(stripped)
    meta.update(inner)
    fidelity = _fidelity(
        2, tier2_bound, accuracy, time.perf_counter() - started,
        ladder.predicted_cost(2, dims.nnz, _num_policies(task)),
        [0, 2] if accuracy is not None else [2],
        [bound0, tier2_bound] if accuracy is not None else [tier2_bound],
        drift,
    )
    return result, fidelity, meta
