"""Incremental steady-state reuse distances under a pattern delta.

:mod:`repro.reuse.periodic` prices a whole period from scratch: the
in-period distances cost one CDQ dominance pass over *every* access and
the wrap-around distances one more over the distinct lines.  A pattern
delta, though, perturbs the trace only at the edit sites — exactly the
locality argument of Akbudak et al.: sparsity edits move cache behaviour
*locally* unless the structure couples distant accesses.  This module
exploits that:

* the **in-period** distance of a surviving access can only change when
  an edit falls inside its reuse window ``(prev, i)``.  Inserts occupy
  integer positions of the edited trace; deletes leave half-position
  "junction" scars (:meth:`~repro.delta.delta.DeltaApplication.junctions`).
  Two ``searchsorted`` calls against the merged, sorted modification
  array find every dirtied window; each one is re-counted exactly with a
  single ``np.unique`` over its span.
* the **wrap-around** distances (one per distinct line) are recomputed
  wholesale — but on the distinct-line set, whose size is a small
  fraction of the trace, with the very same rank/suffix/dominance
  decomposition :func:`steady_state_reuse_distances` uses.  Sharing the
  formula (and :func:`~repro.reuse.cdq._dominance_counts` itself) is what
  makes the patched array *byte-identical* to a fresh pass, not merely
  close.

The work is bounded by a **budget**: the summed span of the dirtied
windows.  Banded and block-diagonal structures (paper classes 1 and 2)
reuse within short windows, so an edit dirties a handful of short spans
and the patch is hundreds of times cheaper than the full pass.  In the
random classes (3a/3b) a single edit can sit inside one long window per
distinct line — the budget overflows and the caller falls back to the
full pass, which is the conservative behaviour the ROADMAP asks for.
:class:`BudgetExceeded` carries the measured work so callers can report
*why* they fell back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reuse.cdq import _dominance_counts
from ..reuse.fenwick import compute_prev
from ..spmv.csr import CSRMatrix
from .delta import DeltaApplication

#: Bytes per x-vector element (float64) — fixed by the kernel.
X_ELEM_BYTES = 8


class BudgetExceeded(Exception):
    """The dirtied reuse windows outgrew the configured patch budget."""

    def __init__(self, work: int, budget: int) -> None:
        super().__init__(
            f"delta patch needs {work} window elements > budget {budget}"
        )
        self.work = work
        self.budget = budget


def x_lines(matrix: CSRMatrix, line_size: int) -> np.ndarray:
    """The x-vector cache-line trace of a single-thread Method B period.

    Identical to what :func:`repro.core.trace.x_only_trace` produces for
    one thread: x is the first array of the memory layout, so its base
    line is 0 and the line of column ``c`` is ``c * 8 // line_size`` —
    invariant under nnz changes, which is what lets a stored state price
    an edited pattern without rebuilding the layout.
    """
    return matrix.colidx.astype(np.int64) * X_ELEM_BYTES // line_size


def _wrap_distances(lines: np.ndarray, prev: np.ndarray,
                    rd: np.ndarray) -> None:
    """Overwrite ``rd`` at period-first positions with wrap distances.

    Implements RD(p) = #{L: first(L) < p} + #{L: last(L) > q}
    - #{L: first(L) < p and last(L) > q} over the distinct lines, exactly
    as the single-group branch of ``steady_state_reuse_distances``.
    """
    first_pos = np.flatnonzero(prev < 0)  # ascending: one per distinct line
    is_last = np.ones(lines.shape[0], dtype=bool)
    is_last[prev[prev >= 0]] = False
    last_pos = np.flatnonzero(is_last)  # ascending: one per distinct line
    d = first_pos.shape[0]
    if d == 0:
        return

    # align last positions with first positions by line id
    f_ord = np.argsort(lines[first_pos], kind="stable")
    l_ord = np.argsort(lines[last_pos], kind="stable")
    q = np.empty(d, dtype=np.int64)
    q[f_ord] = last_pos[l_ord]

    ranks = np.arange(d, dtype=np.int64)  # = #{first(L) < p} at first_pos[j]
    suffix_lasts = d - 1 - np.searchsorted(last_pos, q)
    q_rank = np.empty(d, dtype=np.int64)
    q_rank[np.argsort(q, kind="stable")] = ranks
    overlap = ranks - _dominance_counts(q_rank)
    rd[first_pos] = ranks + suffix_lasts - overlap


def full_reuse_state(matrix: CSRMatrix, line_size: int) -> "ReuseState":
    """Price a pattern from scratch (the cold-capture path)."""
    from ..reuse.periodic import steady_state_reuse_distances

    lines = x_lines(matrix, line_size)
    rd = steady_state_reuse_distances(lines)
    return ReuseState(nnz=int(matrix.nnz), line_size=int(line_size), rd=rd,
                      prev=compute_prev(lines))


@dataclass(frozen=True)
class ReuseState:
    """Steady-state x reuse distances of one pattern, ready for patching.

    ``rd`` is in program (nonzero) order and byte-identical to
    ``steady_state_reuse_distances(x_lines(matrix, line_size))`` — the
    invariant every :meth:`apply` preserves.  ``prev`` is the matching
    previous-occurrence array (``compute_prev`` of the same line trace);
    a state without one still patches correctly but pays a fresh
    ``compute_prev`` pass per delta.
    """

    nnz: int
    line_size: int
    rd: np.ndarray
    prev: np.ndarray | None = None

    def _patched_prev(self, application: DeltaApplication,
                      lines: np.ndarray) -> np.ndarray:
        """The edited trace's previous-occurrence array, incrementally.

        The old ``prev`` maps through the coordinate mapping unchanged for
        every line no edit touched (the mapping is monotone, so occurrence
        order is preserved).  Lines that gained an inserted access or lost
        a deleted one are re-chained from their occurrence lists, found
        with one ``np.isin`` pass — O(n log e) against the O(n log n)
        sort a fresh ``compute_prev`` costs.
        """
        if self.prev is None:
            return compute_prev(lines)
        npo = application.new_pos_of_old
        n_new = lines.shape[0]
        # carry: old prev composed with the coordinate mapping.  Kept
        # entries occupy exactly the non-inserted new slots in order, so
        # one boolean scatter places every carried value (fancy-index
        # chains re-gather 8-byte indices several times over and lose to
        # a fresh compute_prev).  A ``prev`` of -1 wraps the gather to
        # npo's last element; the mask store right after overwrites it.
        carried = npo[self.prev]
        carried[self.prev < 0] = -1
        prev = np.full(n_new, -1, dtype=np.int64)
        kept_slots = np.ones(n_new, dtype=bool)
        kept_slots[application.inserted_pos] = False
        prev[kept_slots] = carried[npo >= 0]

        touched = np.concatenate((
            lines[application.inserted_pos],
            application.deleted_cols.astype(np.int64)
            * X_ELEM_BYTES // self.line_size,
        ))
        if touched.shape[0]:
            pos = np.flatnonzero(np.isin(lines, np.unique(touched)))
            if pos.shape[0]:
                order = np.argsort(lines[pos], kind="stable")
                gpos = pos[order]
                glines = lines[pos][order]
                gprev = np.full(pos.shape[0], -1, dtype=np.int64)
                same = glines[1:] == glines[:-1]
                gprev[1:][same] = gpos[:-1][same]
                prev[gpos] = gprev
        return prev

    def apply(self, application: DeltaApplication, budget: int) -> "ReuseState":
        """Patch the distances through an applied delta, exactly.

        Raises :class:`BudgetExceeded` when the dirtied windows sum past
        ``budget`` elements; the state is unchanged in that case.
        """
        if application.n_old != self.nnz:
            raise ValueError(
                f"state holds {self.nnz} nonzeros, delta was applied to "
                f"{application.n_old}"
            )
        lines = x_lines(application.matrix, self.line_size)
        n_new = lines.shape[0]
        prev = self._patched_prev(application, lines)

        rd = np.full(n_new, -1, dtype=np.int64)
        kept_slots = np.ones(n_new, dtype=bool)
        kept_slots[application.inserted_pos] = False
        rd[kept_slots] = self.rd[application.new_pos_of_old >= 0]

        # every access whose reuse window [prev, i) brushes a modification
        # is dirty; so is every inserted non-first access (it has no
        # carried value at all).  The interval is left-closed so that an
        # access whose *new* predecessor is an inserted occurrence of its
        # own line is caught even though the insert sits exactly at
        # ``prev``.  F(pos) counts modifications below ``pos``: a mod at
        # coordinate x (integer insert or half-position junction) is
        # below pos iff floor(x) + 1 <= pos, so one bincount/cumsum
        # answers every window-overlap query in O(n).
        mods = np.concatenate((
            application.inserted_pos.astype(np.float64),
            application.junctions(),
        ))
        idx = np.floor(mods).astype(np.int64) + 1
        mods_below = np.cumsum(np.bincount(idx, minlength=n_new + 2))
        dirty_mask = (prev >= 0) & (
            mods_below[:n_new] > mods_below[np.maximum(prev, 0)]
        )
        inserted = application.inserted_pos
        dirty_mask[inserted[prev[inserted] >= 0]] = True
        dirty = np.flatnonzero(dirty_mask)

        spans = dirty - prev[dirty] - 1
        work = int(spans.sum())
        if work > budget:
            raise BudgetExceeded(work, budget)
        for i in dirty.tolist():
            rd[i] = np.unique(lines[prev[i] + 1: i]).shape[0]

        _wrap_distances(lines, prev, rd)
        return ReuseState(nnz=n_new, line_size=self.line_size, rd=rd,
                          prev=prev)
