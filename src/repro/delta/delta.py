"""Edge-delta representation for dynamic sparse matrices.

A :class:`MatrixDelta` is one batch of sparsity-pattern edits — edge
*inserts* (with optional values) and edge *deletes* — in canonical form:
each list sorted by ``(row, col)``, no duplicates, no overlap between the
two lists.  Canonicalization makes the :meth:`fingerprint` stable, which
is what lets the service derive deterministic chained cache keys from a
base key plus its accumulated deltas.

:meth:`MatrixDelta.apply` patches a :class:`~repro.spmv.csr.CSRMatrix`
*and* reports the coordinate bookkeeping the incremental reuse engine
needs (:class:`DeltaApplication`): where every surviving nonzero landed in
the edited pattern, where the inserted ones went, and which old positions
disappeared.  The nonzero order of a CSR matrix is exactly the program
order of Method B's x-vector access trace, so these mappings are, element
for element, trace-coordinate mappings.

Validation is strict by design: inserting an edge that already exists, or
deleting one that does not, raises :class:`DeltaError` instead of being
silently coalesced — a dynamic-graph client that disagrees with the
service about the current pattern must find out immediately, not after
its cached profiles have drifted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..analysis.report import canonical_json
from ..spmv.csr import CSRMatrix

#: Hard cap on edits per batch — bounds request size and patch work.
MAX_EDITS = 100_000


class DeltaError(ValueError):
    """A malformed delta or one inconsistent with the matrix pattern."""


def _edge_array(entries: object, label: str, with_values: bool):
    """Validate a JSON edit list into (rows, cols[, values]) arrays."""
    if not isinstance(entries, (list, tuple)):
        raise DeltaError(f"{label} must be a list of [row, col] pairs")
    rows = np.empty(len(entries), dtype=np.int64)
    cols = np.empty(len(entries), dtype=np.int64)
    values = np.ones(len(entries), dtype=np.float64) if with_values else None
    for i, entry in enumerate(entries):
        if not isinstance(entry, (list, tuple)) or not 2 <= len(entry) <= (
            3 if with_values else 2
        ):
            raise DeltaError(
                f"{label}[{i}] must be [row, col]"
                + (" or [row, col, value]" if with_values else "")
            )
        try:
            rows[i] = int(entry[0])
            cols[i] = int(entry[1])
            if with_values and len(entry) == 3:
                values[i] = float(entry[2])
        except (TypeError, ValueError) as exc:
            raise DeltaError(f"{label}[{i}] is not numeric: {exc}") from None
    return (rows, cols, values) if with_values else (rows, cols)


@dataclass(frozen=True)
class MatrixDelta:
    """One canonical batch of edge inserts and deletes."""

    insert_rows: np.ndarray
    insert_cols: np.ndarray
    insert_values: np.ndarray
    delete_rows: np.ndarray
    delete_cols: np.ndarray

    @property
    def num_inserts(self) -> int:
        return int(self.insert_rows.shape[0])

    @property
    def num_deletes(self) -> int:
        return int(self.delete_rows.shape[0])

    @property
    def num_edits(self) -> int:
        return self.num_inserts + self.num_deletes

    @classmethod
    def from_dict(cls, payload: object) -> "MatrixDelta":
        """Parse and canonicalize ``{"inserts": [...], "deletes": [...]}``."""
        if not isinstance(payload, dict):
            raise DeltaError("delta must be an object")
        unknown = set(payload) - {"inserts", "deletes"}
        if unknown:
            raise DeltaError(f"unknown delta fields: {sorted(unknown)}")
        ins_r, ins_c, ins_v = _edge_array(
            payload.get("inserts", []), "inserts", with_values=True
        )
        del_r, del_c = _edge_array(payload.get("deletes", []), "deletes",
                                   with_values=False)
        if ins_r.shape[0] + del_r.shape[0] == 0:
            raise DeltaError("delta must carry at least one insert or delete")
        if ins_r.shape[0] + del_r.shape[0] > MAX_EDITS:
            raise DeltaError(f"delta exceeds {MAX_EDITS} edits")

        order = np.lexsort((ins_c, ins_r))
        ins_r, ins_c, ins_v = ins_r[order], ins_c[order], ins_v[order]
        order = np.lexsort((del_c, del_r))
        del_r, del_c = del_r[order], del_c[order]

        def _dup(rows: np.ndarray, cols: np.ndarray) -> bool:
            if rows.shape[0] < 2:
                return False
            same = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            return bool(same.any())

        if _dup(ins_r, ins_c):
            raise DeltaError("duplicate edge in inserts")
        if _dup(del_r, del_c):
            raise DeltaError("duplicate edge in deletes")
        if ins_r.shape[0] and del_r.shape[0]:
            ins_keys = ins_r * (ins_c.max() + del_c.max() + 2) + ins_c
            del_keys = del_r * (ins_c.max() + del_c.max() + 2) + del_c
            if np.intersect1d(ins_keys, del_keys).shape[0]:
                raise DeltaError("an edge appears in both inserts and deletes")
        return cls(ins_r, ins_c, ins_v, del_r, del_c)

    def to_dict(self) -> dict:
        """Canonical JSON form (sorted lists; insert values always explicit)."""
        return {
            "inserts": [
                [int(r), int(c), float(v)]
                for r, c, v in zip(self.insert_rows, self.insert_cols,
                                   self.insert_values)
            ],
            "deletes": [
                [int(r), int(c)]
                for r, c in zip(self.delete_rows, self.delete_cols)
            ],
        }

    def fingerprint(self) -> str:
        """Stable content hash of the canonical form (16 hex chars)."""
        digest = hashlib.sha256(canonical_json(self.to_dict()).encode())
        return digest.hexdigest()[:16]

    def apply(self, matrix: CSRMatrix) -> "DeltaApplication":
        """Patch ``matrix`` and report the nonzero-coordinate mappings.

        Requires the matrix pattern in canonical row-major order (sorted
        column indices within each row, no duplicate edges) — which is
        what the generators, ``CSRMatrix.from_coo`` and previous delta
        applications all produce.  Raises :class:`DeltaError` when an
        insert already exists, a delete is absent, an edit is out of
        bounds, or the pattern is not canonical.
        """
        num_rows, num_cols = matrix.num_rows, matrix.num_cols
        for rows, cols, label in (
            (self.insert_rows, self.insert_cols, "insert"),
            (self.delete_rows, self.delete_cols, "delete"),
        ):
            if rows.shape[0] and (
                rows.min() < 0 or rows.max() >= num_rows
                or cols.min() < 0 or cols.max() >= num_cols
            ):
                raise DeltaError(f"{label} edge out of bounds for "
                                 f"{num_rows}x{num_cols} matrix")

        rowptr = matrix.rowptr
        colidx = matrix.colidx
        nnz = int(colidx.shape[0])

        # canonical row-major order == strictly increasing columns inside
        # every row; checking per-row diffs keeps the pass on int32 and
        # avoids materializing an O(nnz) int64 global-key array (the key
        # arrays are what made large applies allocation-bound)
        if nnz > 1:
            increasing = colidx[1:] > colidx[:-1]
            starts = rowptr[1:-1]
            starts = starts[(starts > 0) & (starts < nnz)]
            increasing[starts - 1] = True
            if not increasing.all():
                raise DeltaError("matrix pattern is not in canonical "
                                 "row-major order (sort or deduplicate it "
                                 "first)")

        # locate every edit with a binary search inside its row slice; the
        # batch is bounded by MAX_EDITS so this loop is cheap next to the
        # O(nnz) array passes below.  (row, col)-sorted edits visit flat
        # positions in ascending order, so del_pos comes out strictly
        # increasing and ins_pos non-decreasing (two inserts may target
        # the same gap; their column order breaks the tie).
        del_pos = np.empty(self.num_deletes, dtype=np.int64)
        for i in range(self.num_deletes):
            r = int(self.delete_rows[i])
            c = int(self.delete_cols[i])
            lo, hi = int(rowptr[r]), int(rowptr[r + 1])
            p = lo + int(np.searchsorted(colidx[lo:hi], c))
            if p == hi or colidx[p] != c:
                raise DeltaError(f"delete of absent edge ({r}, {c})")
            del_pos[i] = p
        ins_pos = np.empty(self.num_inserts, dtype=np.int64)
        for i in range(self.num_inserts):
            r = int(self.insert_rows[i])
            c = int(self.insert_cols[i])
            lo, hi = int(rowptr[r]), int(rowptr[r + 1])
            p = lo + int(np.searchsorted(colidx[lo:hi], c))
            if p < hi and colidx[p] == c:
                raise DeltaError(f"insert of existing edge ({r}, {c})")
            ins_pos[i] = p

        kept_mask = np.ones(nnz, dtype=bool)
        kept_mask[del_pos] = False

        # new position of each surviving nonzero: its rank among the kept
        # entries plus the number of inserts landing at or before it — a
        # step function with one step per insert, built with np.repeat
        new_pos_of_old = np.cumsum(kept_mask, dtype=np.int64)
        new_pos_of_old -= 1
        if self.num_inserts:
            bounds = np.concatenate((
                np.zeros(1, dtype=np.int64), ins_pos,
                np.asarray([nnz], dtype=np.int64),
            ))
            new_pos_of_old += np.repeat(
                np.arange(self.num_inserts + 1, dtype=np.int64),
                np.diff(bounds),
            )
        new_pos_of_old[del_pos] = -1

        # new position of each insert: the kept entries strictly below its
        # slot plus its own rank among the inserts
        inserted_new = (
            ins_pos - np.searchsorted(del_pos, ins_pos)
            + np.arange(self.num_inserts, dtype=np.int64)
        )

        n_new = nnz - self.num_deletes + self.num_inserts
        new_colidx = np.empty(n_new, dtype=np.int32)
        new_values = np.empty(n_new, dtype=np.float64)
        kept_slots = np.ones(n_new, dtype=bool)
        kept_slots[inserted_new] = False
        new_colidx[kept_slots] = colidx[kept_mask]
        new_values[kept_slots] = matrix.values[kept_mask]
        new_colidx[inserted_new] = self.insert_cols
        new_values[inserted_new] = self.insert_values

        shift = np.zeros(num_rows + 1, dtype=np.int64)
        if self.num_inserts:
            shift[1:] += np.bincount(self.insert_rows, minlength=num_rows)
        if self.num_deletes:
            shift[1:] -= np.bincount(self.delete_rows, minlength=num_rows)
        new_rowptr = np.asarray(rowptr, dtype=np.int64) + np.cumsum(shift)

        patched = CSRMatrix(
            num_rows, num_cols, new_rowptr, new_colidx, new_values,
            name=f"{matrix.name}+{self.fingerprint()[:8]}",
        )
        return DeltaApplication(
            matrix=patched,
            new_pos_of_old=new_pos_of_old,
            inserted_pos=inserted_new,
            deleted_pos=del_pos,
            deleted_cols=self.delete_cols,
            n_old=nnz,
        )


@dataclass(frozen=True)
class DeltaApplication:
    """An applied delta: the patched matrix plus coordinate mappings.

    ``new_pos_of_old[k]`` is the position of the old k-th nonzero in the
    patched pattern, or ``-1`` if the delta deleted it.  ``inserted_pos``
    (sorted) are the new positions of the inserted nonzeros and
    ``deleted_pos`` (sorted) the old positions of the deleted ones;
    ``deleted_cols`` are the column indices of the deleted edges, aligned
    with ``deleted_pos`` — the incremental engine needs them to know which
    x-vector cache lines lost an access.
    """

    matrix: CSRMatrix
    new_pos_of_old: np.ndarray
    inserted_pos: np.ndarray
    deleted_pos: np.ndarray
    deleted_cols: np.ndarray
    n_old: int

    @property
    def n_new(self) -> int:
        return int(self.matrix.nnz)

    def junctions(self) -> np.ndarray:
        """Deletion scars in *new* trace coordinates, as half-positions.

        A deleted access leaves no position of its own in the edited
        trace; what remains observable is the junction between its kept
        neighbours.  Each junction is reported as ``p - 0.5`` where ``p``
        is the new position of the first surviving nonzero after the
        deleted one (``n_new - 0.5`` for deletions past the end) — a
        coordinate strictly between two integer access positions, so it
        can be merged with insert positions into one sorted modification
        array for window-overlap queries.
        """
        if self.deleted_pos.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        kept_old = np.flatnonzero(self.new_pos_of_old >= 0)
        nxt = np.searchsorted(kept_old, self.deleted_pos)
        after = np.where(
            nxt < kept_old.shape[0],
            self.new_pos_of_old[kept_old[np.minimum(nxt, kept_old.shape[0] - 1)]]
            if kept_old.shape[0]
            else np.int64(0),
            np.int64(self.n_new),
        )
        return np.unique(after.astype(np.float64) - 0.5)
