"""Worker-side evaluation of delta tasks (matrix kind ``"delta"``).

A delta task is an ordinary ``classify``/``predict``/``advise`` task
whose matrix spec is ``{"kind": "delta", "base": <root spec>,
"batches": [<edit batch>, ...]}`` — the service derives it from a stored
base task plus the client's edit batch (see ``POST /delta`` in
:mod:`repro.service.app`).  This module decides *how* to price it:

incremental (the point of the subsystem)
    Patch the stored steady-state reuse distances through the last batch
    (:meth:`repro.delta.state.ReuseState.apply`), seed a
    :class:`~repro.core.method_b.MethodB` with the patched array, and run
    the untouched legacy prediction/advice code on top.  The seeded array
    is byte-identical to a fresh stack pass, so the wire result is
    byte-identical to full re-evaluation — only cheaper.

fallback (conservative, always correct)
    Full re-evaluation through the legacy paths, taken when the patch
    budget overflows (class-3 structures whose reuse windows span the
    trace), when the trace is interleaved (``num_threads > 1``), or when
    the model is non-periodic (``iterations < 2`` — except ``advise``,
    whose advisor always prices with the default periodic model).  The
    fallback *reason* travels back to the daemon for the
    ``repro_delta_fallback_total`` metric family.

Reuse states live in a worker-local LRU keyed by the matrix spec and
line size.  The pool's fork workers are long-lived, so a chain of deltas
against the same base keeps hitting the state of its immediate prefix —
``"state": "warm"`` in the metadata — and only a cold worker pays one
full capture of the prefix pattern.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace

from ..analysis.report import canonical_json
from ..core.classification import classify
from ..core.method_b import MethodB
from ..core.advisor import recommend_from_predictions
from ..core.analytic import stream_misses
from ..spmv.csr import CSRMatrix
from ..spmv.sector_policy import SectorPolicy
from .delta import MatrixDelta
from .state import BudgetExceeded, ReuseState, full_reuse_state

#: Default patch budget (summed dirty-window elements) — overridable per
#: daemon with ``--delta-budget`` (rides in the task as ``delta_budget``,
#: excluded from the request key).
DEFAULT_BUDGET = 65_536

_STATE_CAPACITY = 8
_state_cache: OrderedDict[str, tuple[CSRMatrix, ReuseState]] = OrderedDict()


def _spec_key(spec: dict, line_size: int) -> str:
    payload = canonical_json([spec, int(line_size)]).encode()
    return hashlib.sha256(payload).hexdigest()[:32]


def _cache_put(key: str, matrix: CSRMatrix, state: ReuseState) -> None:
    _state_cache[key] = (matrix, state)
    _state_cache.move_to_end(key)
    while len(_state_cache) > _STATE_CAPACITY:
        _state_cache.popitem(last=False)


def chain_edits(spec: dict) -> int:
    """Total edits accumulated across the chain's batches."""
    return sum(
        len(batch.get("inserts", ())) + len(batch.get("deletes", ()))
        for batch in spec["batches"]
    )


def chain_drift(spec: dict, base_nnz: int) -> float:
    """Accumulated edit fraction: edits over the base nonzero count."""
    return chain_edits(spec) / max(base_nnz, 1)


def _materialize_chain(setup_fields: dict, spec: dict) -> CSRMatrix:
    """Apply a batch chain to the base pattern (validating every batch)."""
    from ..service.protocol import matrix_from_task, matrix_name

    matrix = matrix_from_task({"matrix": spec["base"], "setup": setup_fields})
    for batch in spec["batches"]:
        matrix = MatrixDelta.from_dict(batch).apply(matrix).matrix
    return replace(matrix, name=matrix_name({"matrix": spec}))


def _patched_state(
    task: dict, spec: dict, line_size: int, budget: int
) -> tuple[CSRMatrix, ReuseState, str]:
    """The patched pattern + distances, via the warmest available prefix.

    Returns ``(matrix, state, source)`` with ``source`` one of ``"warm"``
    (prefix state was cached in this worker) or ``"cold"`` (the prefix
    pattern had to be captured with one full pass first).  Raises
    :class:`BudgetExceeded` when the last batch's patch outgrows
    ``budget`` — the caller falls back to full re-evaluation.
    """
    from ..service.protocol import matrix_from_task, matrix_name

    full_key = _spec_key(spec, line_size)
    cached = _state_cache.get(full_key)
    if cached is not None:
        _state_cache.move_to_end(full_key)
        return cached[0], cached[1], "warm"

    batches = spec["batches"]
    prefix_spec = (
        spec["base"]
        if len(batches) == 1
        else {"kind": "delta", "base": spec["base"], "batches": batches[:-1]}
    )
    prefix_key = _spec_key(prefix_spec, line_size)
    cached = _state_cache.get(prefix_key)
    if cached is not None:
        _state_cache.move_to_end(prefix_key)
        prefix_matrix, prefix_state = cached
        source = "warm"
    else:
        if len(batches) == 1:
            prefix_matrix = matrix_from_task(
                {"matrix": spec["base"], "setup": task["setup"]}
            )
        else:
            prefix_matrix = _materialize_chain(task["setup"], prefix_spec)
        prefix_state = full_reuse_state(prefix_matrix, line_size)
        _cache_put(prefix_key, prefix_matrix, prefix_state)
        source = "cold"

    application = MatrixDelta.from_dict(batches[-1]).apply(prefix_matrix)
    state = prefix_state.apply(application, budget)
    matrix = replace(application.matrix, name=matrix_name(task))
    _cache_put(full_key, matrix, state)
    return matrix, state, source


def seeded_model(matrix: CSRMatrix, machine, state: ReuseState,
                 iterations: int = 2) -> MethodB:
    """A Method B whose stack pass is replaced by the patched distances.

    ``_x_rd`` / ``_x_rd_l1`` are ``cached_property`` slots; pre-filling
    the instance dict makes every later profile/miss query read the
    patched array, and with one thread the CMG and per-thread groupings
    are identical, so both levels share it.
    """
    model = MethodB(matrix, machine, num_threads=1, iterations=iterations)
    model.__dict__["_x_rd"] = state.rd
    model.__dict__["_x_rd_l1"] = state.rd
    return model


def _predict_result(model: MethodB, task: dict, name: str) -> dict:
    predictions = []
    for entry in task["policies"]:
        prediction = model.predict(SectorPolicy.from_dict(entry))
        predictions.append({
            "policy": prediction.policy.to_dict(),
            "l2_misses": int(prediction.l2_misses),
            "per_array": {k: int(v) for k, v in prediction.per_array.items()},
        })
    return {"name": name, "method": "B", "predictions": predictions}


def _advise_result(model: MethodB, task: dict, machine) -> dict:
    # mirrors SectorAdvisor.recommend with the seeded model in place of
    # the fresh one it would build (byte-identical: same candidate field,
    # same ranking, same miss queries — only the stack pass is pre-paid)
    matrix = model.matrix
    way_options = tuple(task["way_options"])
    num_cmgs = -(-1 // machine.cores_per_cmg)
    cls = classify(matrix, machine, max(way_options), num_cmgs)
    streams = stream_misses(matrix, machine.line_size)
    return recommend_from_predictions(
        machine=machine,
        num_threads=1,
        way_options=way_options,
        consider_isolate_x=task["consider_isolate_x"],
        min_ways=task["min_sector1_ways_with_prefetch"],
        matrix_class=cls,
        nnz=matrix.nnz,
        streams=streams,
        per_array_fn=lambda policy: model.predict(policy).per_array,
        x_misses_fn=model.x_misses,
    ).to_dict()


def _legacy_result(task: dict, matrix: CSRMatrix, machine, setup) -> dict:
    """Full re-evaluation on the materialized pattern (the fallback)."""
    endpoint = task["endpoint"]
    if endpoint == "predict":
        model = MethodB(matrix, machine, num_threads=setup.num_threads,
                        iterations=setup.iterations)
        return _predict_result(model, task, matrix.name)
    from ..core.advisor import SectorAdvisor

    advisor = SectorAdvisor(
        machine,
        num_threads=setup.num_threads,
        way_options=tuple(task["way_options"]),
        consider_isolate_x=task["consider_isolate_x"],
        min_sector1_ways_with_prefetch=task["min_sector1_ways_with_prefetch"],
    )
    return advisor.recommend(matrix).to_dict()


def evaluate_delta_task(task: dict) -> tuple[dict, dict | None, dict]:
    """Price one delta task; returns ``(result, fidelity, meta)``.

    ``meta`` is the daemon-facing delta metadata (``path``/``reason``/
    ``state``/``drift``/...) that rides the worker payload *outside* the
    result — keeping the result byte-identical to full re-evaluation.
    ``fidelity`` is non-None only on the drift-gated ladder path
    (``accuracy``/``max_tier`` flags), handled in
    :mod:`repro.delta.ladder`.
    """
    from ..service.protocol import matrix_from_task, setup_from_task

    if task.get("accuracy") is not None or task.get("max_tier") is not None:
        from .ladder import answer_delta_task

        return answer_delta_task(task)

    setup = setup_from_task(task)
    machine = setup.machine()
    endpoint = task["endpoint"]
    spec = task["matrix"]
    from ..ladder.tier0 import dims_from_task

    base_dims = dims_from_task(
        {"matrix": spec["base"], "setup": task["setup"]}, machine
    )
    meta = {
        "chain_length": len(spec["batches"]),
        "edits": chain_edits(spec),
        "drift": chain_drift(spec, base_dims.nnz),
    }

    if endpoint == "classify":
        # the taxonomy reads dims and pattern structure, never the stack
        # pass — applying the chain is the whole cost
        matrix = matrix_from_task(task)
        num_cmgs = -(-setup.num_threads // machine.cores_per_cmg)
        result = {
            "name": matrix.name,
            "num_cmgs": num_cmgs,
            "classes": {
                str(ways): classify(matrix, machine, ways, num_cmgs).value
                for ways in task["way_options"]
            },
        }
        meta.update(path="incremental", reason="structural")
        return result, None, meta

    budget = int(task.get("delta_budget", DEFAULT_BUDGET))
    reason = None
    if setup.num_threads != 1:
        reason = "threads"
    elif endpoint == "predict" and setup.iterations < 2:
        reason = "iterations"

    if reason is None:
        try:
            matrix, state, source = _patched_state(
                task, spec, machine.line_size, budget
            )
        except BudgetExceeded as exc:
            reason = "budget"
            meta["work"] = exc.work
            meta["budget"] = exc.budget

    if reason is not None:
        matrix = matrix_from_task(task)
        result = _legacy_result(task, matrix, machine, setup)
        meta.update(path="fallback", reason=reason)
        return result, None, meta

    iterations = setup.iterations if endpoint == "predict" else 2
    model = seeded_model(matrix, machine, state, iterations=iterations)
    if endpoint == "predict":
        result = _predict_result(model, task, matrix.name)
    else:
        result = _advise_result(model, task, machine)
    meta.update(path="incremental", state=source)
    return result, None, meta
