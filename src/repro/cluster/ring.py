"""Consistent-hash ring placing request keys on replica daemons.

The gateway routes every model request by its canonical sha256 request
key (:func:`repro.service.protocol.request_key`).  A :class:`HashRing`
maps those keys onto the current replica set with the classic
consistent-hashing guarantees the cluster leans on:

* **Deterministic placement.**  Ring points derive purely from sha256
  over ``"<node>#<replica_index>"`` — no ``hash()``, no process state —
  so every process (gateway restarts, tests, a second gateway reading
  the same membership) computes the identical key → node mapping.
* **Minimal disruption.**  Removing a node remaps *only* the keys that
  node owned (≈ K/N of K keys across N nodes); adding a node steals
  ≈ K/(N+1) keys and changes nothing else.  Ejection on a failed health
  probe and re-admission on recovery therefore shuffle a bounded slice
  of the keyspace instead of restarting everyone's cache cold.
* **Smooth ownership.**  Each node projects ``vnodes`` points onto the
  ring, keeping ownership shares within a few percent of uniform.

Nodes are opaque strings (the cluster uses ``"host:port"``).  Keys are
arbitrary strings (the cluster uses the 32-hex-char request key).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per physical node; 64 keeps the ownership share of N
#: equal nodes within ~±15% of 1/N while the ring stays tiny.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A 64-bit ring position from a stable content hash."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class HashRing:
    """Sorted-points consistent-hash ring over string nodes."""

    def __init__(self, nodes: object = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    def add(self, node: str) -> None:
        """Admit a node (idempotent)."""
        if not node:
            raise ValueError("node must be a non-empty string")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}")
            # sha256 collisions across distinct labels are not a practical
            # concern, but ties must still resolve deterministically: the
            # lexicographically smallest node keeps the point
            holder = self._owners.get(point)
            if holder is not None:
                if node < holder:
                    self._owners[point] = node
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Eject a node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}")
            if self._owners.get(point) != node:
                continue
            # hand a collided point back to the smallest surviving claimant
            claimants = sorted(
                other for other in self._nodes
                if any(_point(f"{other}#{j}") == point
                       for j in range(self.vnodes))
            )
            if claimants:
                self._owners[point] = claimants[0]
            else:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def copy(self) -> "HashRing":
        """An independent snapshot (used for previous-epoch owner lookups)."""
        return HashRing(sorted(self._nodes), vnodes=self.vnodes)

    # -- placement -----------------------------------------------------
    def owner(self, key: str) -> str | None:
        """The node owning a key, or None on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past 2**64 back to the smallest point
        return self._owners[self._points[index]]

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct nodes in ring order from the key's position.

        The first entry is the owner; the rest are the failover sequence
        the gateway walks when a replica dies mid-request.  ``count``
        caps the list (default: every node).
        """
        if not self._points:
            return []
        wanted = len(self._nodes) if count is None else max(0, count)
        start = bisect.bisect_right(self._points, _point(key))
        sequence: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node in seen:
                continue
            sequence.append(node)
            seen.add(node)
            if len(sequence) >= wanted:
                break
        return sequence

    def ownership_shares(self, sample_keys: int = 4096) -> dict[str, float]:
        """Fraction of a deterministic key sample each node owns
        (diagnostics; the membership snapshot exposes it)."""
        if not self._nodes:
            return {}
        counts = {node: 0 for node in self._nodes}
        for i in range(sample_keys):
            owner = self.owner(f"share-sample-{i}")
            counts[owner] += 1
        return {node: counts[node] / sample_keys for node in sorted(counts)}
