"""``python -m repro.cluster`` starts the gateway (and, optionally,
replica daemons it manages).

Examples::

    # front three already-running daemons
    python -m repro.cluster --replica 127.0.0.1:8787 \
        --replica 127.0.0.1:8788 --replica 127.0.0.1:8789

    # spawn 3 replicas (ephemeral ports, per-replica cache dirs under
    # --cache) plus the gateway, all torn down together
    python -m repro.cluster --spawn 3 --jobs 2 --cache .repro_cache
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import subprocess
import sys
from pathlib import Path

from .gateway import GatewayConfig, run_gateway

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")


def _spawn_replicas(count: int, jobs: int, cache: str | None,
                    extra: list[str],
                    event_log: str | None = None,
                    ) -> tuple[list, list[tuple[str, int]]]:
    processes, addresses = [], []
    for index in range(count):
        argv = [sys.executable, "-m", "repro.service", "--port", "0",
                "--jobs", str(jobs)]
        cache_dir = ""
        if cache:
            cache_dir = str(Path(cache) / f"replica-{index}")
        argv += ["--cache", cache_dir]
        if event_log:
            # one log per process: the gateway writes PATH, replica i
            # writes replica-<i>-events.jsonl next to it (entries still
            # correlate by trace_id across all of them)
            log = Path(event_log).parent / f"replica-{index}-events.jsonl"
            argv += ["--event-log", str(log)]
        argv += extra
        process = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True,
                                   env=dict(os.environ))
        line = process.stdout.readline()
        match = _ANNOUNCE.search(line)
        if match is None:
            process.terminate()
            for other in processes:
                other.terminate()
            raise RuntimeError(f"replica {index} did not announce: {line!r}")
        processes.append(process)
        addresses.append((match.group(1), int(match.group(2))))
        print(f"replica {index} on http://{match.group(1)}:{match.group(2)} "
              f"(cache: {cache_dir or 'disabled'})", flush=True)
    return processes, addresses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.cluster",
                                     description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8786,
                        help="0 binds an ephemeral port (announced on stdout)")
    parser.add_argument("--replica", action="append", default=[],
                        metavar="HOST:PORT",
                        help="an already-running replica daemon (repeatable)")
    parser.add_argument("--spawn", type=int, default=0, metavar="N",
                        help="spawn N replica daemons on ephemeral ports")
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool workers per spawned replica")
    parser.add_argument("--cache", default=".repro_cache",
                        help="cache root for spawned replicas (each gets "
                             "<cache>/replica-<i>; '' disables disk caching)")
    parser.add_argument("--vnodes", type=int, default=64,
                        help="virtual nodes per replica on the hash ring")
    parser.add_argument("--probe-interval", type=float, default=2.0,
                        help="seconds between health/breaker probe rounds")
    parser.add_argument("--probe-timeout", type=float, default=2.0)
    parser.add_argument("--fail-after", type=int, default=1,
                        help="consecutive failed probes that eject a replica")
    parser.add_argument("--peer-window", type=float, default=120.0,
                        help="seconds remapped keys carry warm-cache peer "
                             "hints after a membership change")
    parser.add_argument("--no-peer-fill", action="store_true",
                        help="never attach peer hints (rebalances re-evaluate)")
    parser.add_argument("--batch-window", type=int, default=8,
                        help="default in-flight window for /batch")
    parser.add_argument("--forward-timeout", type=float, default=300.0,
                        help="per-forward ceiling in seconds")
    parser.add_argument("--event-log", default=None, metavar="PATH",
                        help="gateway structured event log (JSON lines); "
                             "spawned replicas get <PATH dir>/replica-<i>-"
                             "events.jsonl alongside it")
    parser.add_argument("--audit-rate", type=float, default=0.0,
                        metavar="FRACTION",
                        help="forwarded to spawned replicas: shadow-audit "
                             "this fraction of cheap-tier ladder answers")
    parser.add_argument("--audit-budget-seconds", type=float, default=None,
                        metavar="SECONDS",
                        help="forwarded to spawned replicas: audit time "
                             "budget per replica")
    parser.add_argument("--trace-buffer", type=int, default=64, metavar="N",
                        help="traced requests kept for GET /debug/traces")
    args = parser.parse_args(argv)
    if not args.replica and args.spawn < 1:
        parser.error("give at least one --replica or --spawn N")
    if args.spawn < 0:
        parser.error("--spawn must be non-negative")
    if args.jobs < 1:
        parser.error("--jobs must be positive")

    replicas: list[tuple[str, int]] = []
    for spec in args.replica:
        host, _, port = spec.rpartition(":")
        try:
            replicas.append((host or "127.0.0.1", int(port)))
        except ValueError:
            parser.error(f"--replica expects HOST:PORT, got {spec!r}")

    extra: list[str] = []
    if args.audit_rate:
        extra += ["--audit-rate", str(args.audit_rate)]
    if args.audit_budget_seconds is not None:
        extra += ["--audit-budget-seconds", str(args.audit_budget_seconds)]

    processes: list = []
    if args.spawn:
        processes, spawned = _spawn_replicas(
            args.spawn, args.jobs, args.cache or None, extra,
            event_log=args.event_log,
        )
        replicas += spawned

    config = GatewayConfig(
        replicas=tuple(replicas),
        vnodes=args.vnodes,
        probe_interval_seconds=args.probe_interval,
        probe_timeout_seconds=args.probe_timeout,
        fail_after=args.fail_after,
        peer_window_seconds=args.peer_window,
        peer_fill=not args.no_peer_fill,
        forward_timeout_seconds=args.forward_timeout,
        batch_window=args.batch_window,
        event_log_path=args.event_log,
        trace_buffer_size=args.trace_buffer,
    )
    try:
        asyncio.run(run_gateway(config, host=args.host, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
