"""The cluster gateway: consistent-hash routing over replica daemons.

One gateway fronts N advisor replicas (each a plain ``repro.service``
daemon).  Per model request it:

1. validates the payload with the *same* :func:`normalize_request` the
   replicas use (a 400 never costs a replica round trip) and computes
   the canonical sha256 request key;
2. consistent-hash routes the key to its owner replica
   (:class:`~repro.cluster.ring.HashRing` over the live membership);
3. relays the replica's response **verbatim** — routed answers are
   byte-identical to a direct single-daemon call;
4. on a connection failure, ejects the replica from the ring on the
   spot and fails over to the next node in the key's preference
   sequence — a replica killed mid-burst loses zero requests;
5. while a rebalance window is open, attaches a ``peer`` hint naming
   the key's *previous* owner, so the newly-responsible replica can
   warm-fill from the peer's cache (``/cache/peek``) instead of
   re-evaluating.

Membership is driven by the existing health surface: a background loop
probes every replica's ``/healthz`` and breaker state
(:mod:`repro.cluster.membership`); an open breaker or a failed probe
ejects, recovery re-admits with bounded key remapping.  The gateway is
the single source of membership truth — replicas hold no cluster state,
so there is no split brain to reconcile.

``POST /batch`` streams a whole collection sweep back as NDJSON with a
bounded in-flight window (:mod:`repro.cluster.batch`).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from collections import Counter, defaultdict
from dataclasses import dataclass
from urllib.parse import parse_qs

from ..experiments.pool import (
    register_parent_socket,
    unregister_parent_socket,
)
from ..obs import events as obs_events
from ..obs.context import TRACE_HEADER, TraceContext
from ..obs.events import DEFAULT_MAX_BYTES, EventLog
from ..obs.histogram import LatencyHistogram
from ..obs.traces import TraceBuffer
from ..obs.tracer import NULL_SPAN, Tracer
from ..obs.tree import TraceTree
from ..service.httpd import (
    ParsedRequest,
    PayloadTooLarge,
    finish_chunked_response,
    read_request,
    request_bytes,
    respond,
    start_chunked_response,
    write_chunk,
)
from ..service.protocol import (
    ENDPOINTS,
    RequestError,
    normalize_delta,
    normalize_request,
    request_key,
)
from .batch import BatchItem, normalize_batch
from .membership import MembershipController
from .ring import DEFAULT_VNODES

__all__ = ["ClusterGateway", "GatewayConfig", "GatewayThread",
           "render_gateway_prometheus", "run_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tunables (CLI flags map 1:1)."""

    #: replica daemons as ``(host, port)`` pairs
    replicas: tuple = ()
    vnodes: int = DEFAULT_VNODES
    #: seconds between health/breaker probe rounds (0 disables the loop —
    #: tests drive probes by hand; data-path ejection still works)
    probe_interval_seconds: float = 2.0
    probe_timeout_seconds: float = 2.0
    #: consecutive failed probes that eject a replica
    fail_after: int = 1
    #: seconds after a membership change during which remapped keys carry
    #: a peer hint toward their previous owner's warm cache
    peer_window_seconds: float = 120.0
    #: attach peer hints at all (off = rebalances re-evaluate)
    peer_fill: bool = True
    #: per-forward ceiling; requests may carry their own smaller timeout
    forward_timeout_seconds: float = 300.0
    #: default and per-request in-flight window for /batch
    batch_window: int = 8
    max_body_bytes: int = 256 * 2**20
    #: structured JSON-lines event log (None disables)
    event_log_path: str | None = None
    event_log_max_bytes: int = DEFAULT_MAX_BYTES
    #: traced requests kept for ``GET /debug/traces``
    trace_buffer_size: int = 64

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("at least one replica is required")
        if self.fail_after < 1:
            raise ValueError("fail_after must be positive")
        if self.batch_window < 1:
            raise ValueError("batch_window must be positive")
        if self.forward_timeout_seconds <= 0:
            raise ValueError("forward_timeout_seconds must be positive")
        if self.event_log_max_bytes < 4096:
            raise ValueError("event_log_max_bytes must be at least 4096")
        if self.trace_buffer_size < 1:
            raise ValueError("trace_buffer_size must be positive")


class GatewayMetrics:
    """Counters behind the gateway's ``/metrics``."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        #: endpoint -> replica node -> forwards that got an HTTP response
        self.routed: dict[str, Counter] = defaultdict(Counter)
        #: forwards retried on the next preference node after a dead socket
        self.failovers = 0
        #: requests for which every candidate replica failed (the
        #: zero-lost-requests invariant asserts this stays 0 while any
        #: replica lives)
        self.exhausted = 0
        #: requests refused because the ring was empty
        self.no_replicas = 0
        #: delta forwards retried on another replica after a registry 404
        #: (a chained base key can hash away from its chain root's owner)
        self.delta_retargets = 0
        #: forwarded requests that carried a peer warm-fill hint
        self.peer_hints = 0
        self.bad_requests = 0
        self.batches = 0
        self.batch_items = Counter()      # status -> items
        self.batch_inflight_peak = 0
        self.latency: dict[str, LatencyHistogram] = defaultdict(LatencyHistogram)

    def snapshot(self, membership: MembershipController) -> dict:
        return {
            "uptime_seconds": time.monotonic() - self.started,
            "routed": {ep: dict(c) for ep, c in sorted(self.routed.items())},
            "failovers": self.failovers,
            "delta_retargets": self.delta_retargets,
            "exhausted": self.exhausted,
            "no_replicas": self.no_replicas,
            "peer_hints": self.peer_hints,
            "bad_requests": self.bad_requests,
            "batch": {
                "batches": self.batches,
                "items": dict(self.batch_items),
                "inflight_peak": self.batch_inflight_peak,
            },
            "latency_seconds": {
                ep: hist.snapshot() for ep, hist in sorted(self.latency.items())
            },
            "membership": membership.snapshot(),
        }


class ClusterGateway:
    """Transport-agnostic gateway logic: route, fail over, stream."""

    def __init__(self, config: GatewayConfig) -> None:
        self.config = config
        self.membership = MembershipController(
            [tuple(r) for r in config.replicas],
            vnodes=config.vnodes,
            fail_after=config.fail_after,
            peer_window_seconds=config.peer_window_seconds,
        )
        self.metrics = GatewayMetrics()
        self.traces = TraceBuffer(config.trace_buffer_size)
        self._event_log = None
        self._previous_event_log = None
        if config.event_log_path is not None:
            self._event_log = EventLog(config.event_log_path,
                                       max_bytes=config.event_log_max_bytes,
                                       role="gateway")
            self._previous_event_log = obs_events.install(self._event_log)
        self.shutdown_event = asyncio.Event()

    def close(self) -> None:
        if self._event_log is not None:
            obs_events.emit("gateway.stop")
            obs_events.install(self._previous_event_log)
            self._event_log.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def route_task(
        self, endpoint: str, payload: dict, task: dict, key: str,
        tracer: Tracer | None = None, trace_id: str | None = None,
    ) -> tuple[int, bytes, object]:
        """Forward one validated request to its owner, failing over along
        the key's preference sequence; returns ``(status, response,
        winning_forward_span)`` — the span is the anchor the caller grafts
        the winning replica's trace under (None without a tracer)."""
        timeout = min(float(task.get("timeout", self.config.forward_timeout_seconds)),
                      self.config.forward_timeout_seconds) + 5.0
        tried: set[str] = set()
        while True:
            candidates = [r for r in self.membership.preference(key)
                          if r.node not in tried]
            if not candidates:
                if tried:
                    self.metrics.exhausted += 1
                    return 503, _error_bytes(
                        endpoint, "NoReplicaAnswered",
                        f"all {len(tried)} candidate replicas failed for "
                        f"key {key}",
                    ), None
                self.metrics.no_replicas += 1
                return 503, _error_bytes(
                    endpoint, "NoReplicas",
                    "no live replicas in the ring; retry after the next "
                    "probe round",
                ), None
            replica = candidates[0]
            body = json.dumps(payload).encode()
            if self.config.peer_fill:
                peer = self.membership.peer_for(key)
                if peer is not None and peer.node != replica.node:
                    hinted = dict(payload)
                    hinted["peer"] = {"host": peer.host, "port": peer.port}
                    body = json.dumps(hinted).encode()
                    self.metrics.peer_hints += 1
            forward = _span(tracer, "gateway.forward", replica=replica.node)
            with forward:
                try:
                    status, response = await request_bytes(
                        replica.host, replica.port, "POST", f"/{endpoint}",
                        body, timeout,
                    )
                except (OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError, ConnectionError,
                        ValueError) as exc:
                    # a dead socket ejects the replica immediately; the
                    # key's next preference node takes the retry
                    # (evaluations are idempotent and cached, so a
                    # duplicate is at most one extra cache lookup on the
                    # failed node's side)
                    forward.annotate(outcome="failover",
                                     error=type(exc).__name__)
                    tried.add(replica.node)
                    self.membership.mark_down(
                        replica.node, f"{type(exc).__name__}: {exc}"
                    )
                    self.metrics.failovers += 1
                    obs_events.emit("gateway.failover", trace_id=trace_id,
                                    endpoint=endpoint, key=key,
                                    replica=replica.node,
                                    error=type(exc).__name__)
                    continue
                forward.annotate(outcome="ok", status=status)
            if endpoint == "delta" and status == 404 and len(candidates) > 1:
                # the ring owner of a *derived* base key need not hold the
                # chain root's registry entry (the root request was routed
                # by its own key) — a registry 404 is only authoritative
                # once every live replica has said it.  Evaluations are
                # idempotent, so asking the rest costs one miss each.
                forward.annotate(outcome="retarget", status=status)
                tried.add(replica.node)
                self.metrics.delta_retargets += 1
                obs_events.emit("gateway.delta_retarget", trace_id=trace_id,
                                endpoint=endpoint, key=key,
                                replica=replica.node)
                continue
            self.metrics.routed[endpoint][replica.node] += 1
            return status, response, (forward if tracer is not None else None)

    async def _handle_model(
        self, endpoint: str, body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | bytes]:
        started = time.perf_counter()
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.bad_requests += 1
            return 400, _error_payload(endpoint, "BadJSON", str(exc))
        if isinstance(payload, dict) and "trace_context" not in payload:
            # an X-Repro-Trace header is the out-of-band form of the same
            # hop; an explicit JSON trace_context wins over it
            header_ctx = TraceContext.from_header(
                (headers or {}).get(TRACE_HEADER.lower())
            )
            if header_ctx is not None:
                payload["trace_context"] = header_ctx.to_dict()
        try:
            if endpoint == "delta":
                # a delta must land on the replica that answered — and so
                # stores the task, warm cache entries and worker reuse
                # states of — its base request; that replica was chosen by
                # hashing the base key, so routing by the base key again
                # is exactly the affinity needed.  Base resolution
                # (404/409) stays with the replica that owns the registry.
                task = normalize_delta(payload)
                key = task["base"]
            else:
                task = normalize_request(endpoint, payload)
                key = request_key(task)
        except RequestError as exc:
            self.metrics.bad_requests += 1
            return exc.status, _error_payload(endpoint, "RequestError", str(exc))
        # this gateway hop of the distributed trace: child of the caller's
        # context when one came in, a fresh root otherwise (minted when the
        # request wants a trace or an event log needs correlation)
        incoming = TraceContext.from_dict(task.get("trace_context"))
        ctx = None
        if incoming is not None:
            ctx = incoming.child()
        elif task.get("trace") or obs_events.get_log() is not None:
            ctx = TraceContext.new()
        forward_payload = payload
        if ctx is not None and isinstance(payload, dict):
            forward_payload = dict(payload)
            forward_payload["trace_context"] = ctx.to_dict()
        tracer = root = None
        token = None
        if task.get("trace") and ctx is not None:
            tracer = Tracer()
            token = self.traces.start(ctx.trace_id, endpoint)
            root = tracer.span(
                "gateway.route", endpoint=endpoint, key=key,
                trace_id=ctx.trace_id, span_id=ctx.span_id,
                parent_span_id=incoming.span_id if incoming else None,
            )
            root.__enter__()
        try:
            status, response, forward = await self.route_task(
                endpoint, forward_payload, task, key, tracer=tracer,
                trace_id=ctx.trace_id if ctx else None,
            )
        finally:
            if root is not None:
                root.__exit__(None, None, None)
        merged = None
        if tracer is not None:
            response = self._merge_forward_trace(tracer, forward, response)
            try:
                merged = json.loads(response).get("trace")
            except (ValueError, AttributeError):
                merged = None
        seconds = time.perf_counter() - started
        self.metrics.latency[endpoint].observe(seconds)
        if token is not None:
            self.traces.finish(token, seconds=seconds,
                               status="ok" if status < 400 else "error",
                               tree=merged)
        obs_events.emit("gateway.request",
                        trace_id=ctx.trace_id if ctx else None,
                        endpoint=endpoint, key=key, status=status,
                        seconds=seconds)
        return status, response

    def _merge_forward_trace(self, tracer: Tracer, forward,
                             response: bytes) -> bytes:
        """Rewrite a traced forward's envelope with ONE merged tree.

        The winning replica's envelope trace (its ``service.request`` and
        worker ``evaluate`` roots) is grafted under the gateway's winning
        ``gateway.forward`` span, so the caller sees a single tree rooted
        at ``gateway.route`` spanning routing, failover hops and the
        replica's evaluation phases.  A replica that answered from cache
        ships ``"trace": null`` — the gateway tree then shows the forward
        without fabricated evaluation spans.
        """
        try:
            envelope = json.loads(response)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return response
        if not isinstance(envelope, dict):
            return response
        replica_trace = envelope.get("trace")
        tree = tracer.tree()
        if replica_trace is not None and forward is not None:
            try:
                child = TraceTree.from_dict(replica_trace)
            except (KeyError, TypeError, AttributeError):
                child = None
            if child is not None:
                # the replica ships its daemon span (service.request) and
                # the worker's span (evaluate) as *siblings* — they overlap
                # in wall time, so nesting both under the forward span
                # would break the tree's containment invariant.  Restore
                # physical containment here: the worker's evaluate goes
                # inside the daemon's pool.evaluate span, the daemon span
                # goes under the forward (the finished span shares its
                # children list with its node in the tree, so extending
                # grafts in place).
                daemon_roots = [r for r in child.roots
                                if r.name == "service.request"]
                worker_roots = [r for r in child.roots
                                if r.name != "service.request"]
                pool_node = None
                for root in daemon_roots:
                    pool_node = _find_node(root, "pool.evaluate")
                    if pool_node is not None:
                        break
                if pool_node is not None:
                    pool_node.children.extend(worker_roots)
                    forward.children.extend(daemon_roots)
                else:
                    forward.children.extend(child.roots)
                for name, value in child.counters.items():
                    tree.counters[name] = tree.counters.get(name, 0) + value
        envelope["trace"] = tree.to_dict()
        return json.dumps(envelope).encode()

    # ------------------------------------------------------------------
    # batch streaming
    # ------------------------------------------------------------------
    async def _stream_batch(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
            spec = normalize_batch(payload, self.config.batch_window)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.bad_requests += 1
            await respond(writer, 400,
                          _error_payload("batch", "BadJSON", str(exc)),
                          close=True)
            return
        except RequestError as exc:
            self.metrics.bad_requests += 1
            await respond(writer, exc.status,
                          _error_payload("batch", "RequestError", str(exc)),
                          close=True)
            return

        self.metrics.batches += 1
        started = time.perf_counter()
        await start_chunked_response(writer)
        window = asyncio.Semaphore(spec.window)
        lines: asyncio.Queue = asyncio.Queue(maxsize=spec.window)
        inflight = 0
        counts = Counter()

        async def run_item(item: BatchItem) -> None:
            nonlocal inflight
            async with window:
                inflight += 1
                self.metrics.batch_inflight_peak = max(
                    self.metrics.batch_inflight_peak, inflight
                )
                try:
                    line = await self._batch_line(spec.endpoint, item)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # every task must queue exactly one line — a swallowed
                    # exception here would leave the consumer awaiting a
                    # line that never comes and stall the whole stream
                    line = {"index": item.index, "name": item.name,
                            "key": item.key, "ok": False,
                            "error": {"type": type(exc).__name__,
                                      "message": str(exc)}}
                finally:
                    inflight -= 1
                # the semaphore is held until the line is *queued* into a
                # window-bounded queue: a client that stops reading stalls
                # the queue, which stalls the semaphore, which stops new
                # replica work — backpressure, not buffering
                await lines.put(line)

        invalid = [item for item in spec.items if item.error is not None]
        tasks = [asyncio.ensure_future(run_item(item))
                 for item in spec.valid_items]
        try:
            for item in invalid:
                counts["invalid"] += 1
                await write_chunk(writer, _ndjson({
                    "index": item.index, "ok": False,
                    "error": {"type": "RequestError", "message": item.error},
                }))
            for _ in range(len(tasks)):
                line = await lines.get()
                counts["ok" if line.get("ok") else "error"] += 1
                await write_chunk(writer, _ndjson(line))
            summary = {
                "batch": {
                    "endpoint": spec.endpoint,
                    "total": len(spec.items),
                    "ok": counts["ok"],
                    "errors": counts["error"] + counts["invalid"],
                    "window": spec.window,
                    "elapsed_seconds": time.perf_counter() - started,
                }
            }
            await write_chunk(writer, _ndjson(summary))
            await finish_chunked_response(writer)
        except (ConnectionError, OSError):
            # client went away mid-stream: stop paying for its batch
            for task in tasks:
                task.cancel()
            raise
        finally:
            for status, n in counts.items():
                self.metrics.batch_items[status] += n
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _batch_line(self, endpoint: str, item: BatchItem) -> dict:
        """One item through the normal routed path, as its NDJSON line."""
        status, response, _ = await self.route_task(
            endpoint, item.payload, item.task, item.key
        )
        try:
            envelope = json.loads(response)
        except json.JSONDecodeError:
            envelope = {"ok": False, "error": {
                "type": "BadReplicaResponse",
                "message": f"replica answered {status} with a non-JSON body",
            }}
        envelope["index"] = item.index
        envelope.setdefault("key", item.key)
        envelope["name"] = item.name
        if status >= 400:
            envelope["ok"] = False
        return envelope

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------
    async def handle_request(
        self, method: str, target: str, body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str | bytes, bool]:
        path, _, query_string = target.partition("?")
        path = path.rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                alive = len(self.membership.alive)
                return 200, {
                    "ok": alive > 0,
                    "status": "healthy" if alive else "no live replicas",
                    "role": "gateway",
                    "replicas": {"alive": alive,
                                 "total": len(self.membership.replicas)},
                }, False
            if path == "/metrics":
                fmt = (parse_qs(query_string).get("format") or ["json"])[-1]
                if fmt not in ("json", "prometheus"):
                    return 400, _error_payload(
                        "metrics", "BadFormat",
                        f"unknown metrics format {fmt!r} "
                        "(expected 'json' or 'prometheus')",
                    ), False
                snapshot = self.metrics.snapshot(self.membership)
                if fmt == "prometheus":
                    return 200, render_gateway_prometheus(snapshot), False
                return 200, snapshot, False
            if path == "/debug/traces":
                query = parse_qs(query_string)
                try:
                    limit = int((query.get("limit") or ["10"])[-1])
                except ValueError:
                    return 400, _error_payload(
                        "debug/traces", "BadLimit",
                        "limit must be an integer"), False
                endpoint = (query.get("endpoint") or [None])[-1]
                snapshot = self.traces.snapshot(limit=limit, endpoint=endpoint)
                snapshot["ok"] = True
                return 200, snapshot, False
            return 404, _error_payload(path, "NotFound",
                                       f"no such path {path!r}"), False
        if method != "POST":
            return 405, _error_payload(path, "MethodNotAllowed",
                                       f"{method} not supported"), False
        if path == "/shutdown":
            return 200, {"ok": True, "status": "shutting down"}, True
        endpoint = path.lstrip("/")
        if endpoint not in ENDPOINTS and endpoint != "delta":
            return 404, _error_payload(endpoint, "NotFound",
                                       f"no such endpoint {endpoint!r}"), False
        status, payload = await self._handle_model(endpoint, body, headers)
        return status, payload, False

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        shutdown = False
        # in thread mode the gateway shares its process with replica
        # daemons whose pool workers fork at arbitrary moments; register
        # the accepted socket so those workers close their inherited copy
        # (see repro.experiments.pool.register_parent_socket)
        conn_sock = writer.get_extra_info("socket")
        if conn_sock is not None:
            register_parent_socket(conn_sock)
        try:
            while True:
                try:
                    request = await read_request(reader,
                                                 self.config.max_body_bytes)
                except PayloadTooLarge as exc:
                    await respond(writer, 413,
                                  _error_payload(exc.target, "PayloadTooLarge",
                                                 str(exc)),
                                  close=True)
                    return
                if request is None:
                    return
                if request.malformed:
                    await respond(writer, 400,
                                  _error_payload("", "BadRequest",
                                                 "malformed request line"),
                                  close=True)
                    return
                path = request.target.partition("?")[0].rstrip("/")
                if request.method == "POST" and path == "/batch":
                    await self._stream_batch(writer, request.body)
                    return  # a stream always closes the connection
                status, payload, shutdown = await self.handle_request(
                    request.method, request.target, request.body,
                    request.headers,
                )
                close = request.close or shutdown
                await respond(writer, status, payload, close=close)
                if close:
                    return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # loop teardown cancels handlers parked on an idle keep-alive
            # socket; exiting cleanly here keeps the streams machinery
            # from logging the cancellation as an error
            pass
        finally:
            if conn_sock is not None:
                unregister_parent_socket(conn_sock)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            if shutdown:
                self.shutdown_event.set()

    async def probe_loop(self) -> None:
        """Background membership maintenance (see module docstring)."""
        interval = self.config.probe_interval_seconds
        if interval <= 0:
            return
        while not self.shutdown_event.is_set():
            await self.membership.probe_all(self.config.probe_timeout_seconds)
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self.shutdown_event.wait(), interval)


def _find_node(node, name: str):
    """Depth-first search for the first span named ``name``."""
    if node.name == name:
        return node
    for child in node.children:
        found = _find_node(child, name)
        if found is not None:
            return found
    return None


def _span(tracer: Tracer | None, name: str, **attrs):
    """A span on the request's tracer, or the shared no-op (same helper
    the service layer uses)."""
    return tracer.span(name, **attrs) if tracer is not None else NULL_SPAN


def _error_payload(endpoint: str, error_type: str, message: str) -> dict:
    return {"ok": False, "endpoint": endpoint,
            "error": {"type": error_type, "message": message}}


def _error_bytes(endpoint: str, error_type: str, message: str) -> bytes:
    return json.dumps(_error_payload(endpoint, error_type, message)).encode()


def _ndjson(payload: dict) -> bytes:
    return json.dumps(payload).encode() + b"\n"


def render_gateway_prometheus(snapshot: dict, prefix: str = "repro_gateway") -> str:
    """Prometheus text exposition of the gateway snapshot."""
    from ..obs.prometheus import _Writer

    w = _Writer(prefix)
    name = w.family("uptime_seconds", "gauge", "Gateway uptime.")
    w.sample(name, float(snapshot.get("uptime_seconds", 0.0)))
    name = w.family("routed_total", "counter",
                    "Forwards answered, by endpoint and replica.")
    for endpoint, replicas in sorted(snapshot.get("routed", {}).items()):
        for replica, count in sorted(replicas.items()):
            w.sample(name, count, endpoint=endpoint, replica=replica)
    name = w.family("failovers_total", "counter",
                    "Forwards retried on the next replica after a dead socket.")
    w.sample(name, snapshot.get("failovers", 0))
    name = w.family("delta_retargets_total", "counter",
                    "Delta forwards retried on another replica after a "
                    "registry 404 (chained base keys can hash away from "
                    "their chain root's owner).")
    w.sample(name, snapshot.get("delta_retargets", 0))
    name = w.family("requests_exhausted_total", "counter",
                    "Requests every candidate replica failed (lost work).")
    w.sample(name, snapshot.get("exhausted", 0))
    name = w.family("peer_hints_total", "counter",
                    "Forwards carrying a warm-cache peer hint.")
    w.sample(name, snapshot.get("peer_hints", 0))
    name = w.family("bad_requests_total", "counter",
                    "Requests rejected at the gateway without a forward.")
    w.sample(name, snapshot.get("bad_requests", 0))
    batch = snapshot.get("batch", {})
    name = w.family("batches_total", "counter", "Batch requests accepted.")
    w.sample(name, batch.get("batches", 0))
    name = w.family("batch_items_total", "counter",
                    "Batch items streamed, by terminal status.")
    for status, count in sorted(batch.get("items", {}).items()):
        w.sample(name, count, status=status)
    name = w.family("batch_inflight_peak", "gauge",
                    "Peak concurrent in-flight batch items.")
    w.sample(name, batch.get("inflight_peak", 0))
    membership = snapshot.get("membership", {})
    name = w.family("replica_up", "gauge",
                    "Replica liveness in the ring (1 = in, 0 = ejected).")
    for node, state in sorted(membership.get("replicas", {}).items()):
        w.sample(name, 1 if state.get("healthy") else 0, replica=node)
    name = w.family("membership_changes_total", "counter",
                    "Ring membership transitions, by kind.")
    w.sample(name, membership.get("ejections", 0), kind="ejection")
    w.sample(name, membership.get("readmissions", 0), kind="readmission")
    name = w.family("request_latency_seconds", "histogram",
                    "Gateway round-trip latency by endpoint.")
    for endpoint, hist in sorted(snapshot.get("latency_seconds", {}).items()):
        for bound, cumulative in hist.get("buckets", {}).items():
            w.sample(f"{name}_bucket", cumulative, endpoint=endpoint, le=bound)
        w.sample(f"{name}_sum", float(hist.get("sum_seconds", 0.0)),
                 endpoint=endpoint)
        w.sample(f"{name}_count", hist.get("count", 0), endpoint=endpoint)
    return "\n".join(w.lines) + "\n"


async def run_gateway(
    config: GatewayConfig,
    host: str = "127.0.0.1",
    port: int = 8786,
    ready=None,
    announce: bool = True,
) -> None:
    """Run the gateway until ``/shutdown`` or SIGINT/SIGTERM.

    Mirrors :func:`repro.service.app.run_server`: ``port=0`` binds an
    ephemeral port announced on stdout as ``repro-gateway listening on
    http://HOST:PORT``.
    """
    gateway = ClusterGateway(config)
    server = await asyncio.start_server(gateway.handle_connection, host, port)
    # same fork hygiene as run_server: replica evaluator workers forked in
    # this process must not keep the gateway port alive after shutdown
    listeners = list(server.sockets)
    for sock in listeners:
        register_parent_socket(sock)
    actual_port = server.sockets[0].getsockname()[1]
    if announce:
        print(f"repro-gateway listening on http://{host}:{actual_port}",
              flush=True)
    obs_events.emit("gateway.start", host=host, port=actual_port,
                    replicas=len(config.replicas))
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(sig, gateway.shutdown_event.set)
    prober = asyncio.ensure_future(gateway.probe_loop())
    if ready is not None:
        ready(gateway, host, actual_port, loop)
    try:
        async with server:
            await gateway.shutdown_event.wait()
    finally:
        for sock in listeners:
            unregister_parent_socket(sock)
        prober.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await prober
        gateway.close()


class GatewayThread:
    """An in-process gateway on a background thread (tests, benches).

    >>> with GatewayThread(GatewayConfig(replicas=((h1, p1), (h2, p2)))) \\
    ...         as (host, port):
    ...     ServiceClient(host, port).health()
    """

    def __init__(
        self,
        config: GatewayConfig,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self.gateway: ClusterGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.address: tuple[str, int] | None = None

    def _on_ready(self, gateway, host, port, loop) -> None:
        self.gateway = gateway
        self.address = (host, port)
        self._loop = loop
        self._ready.set()

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("gateway thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                run_gateway(self.config, self._host, self._port,
                            ready=self._on_ready, announce=False)
            ),
            name="repro-gateway",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("gateway thread failed to start")
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self.gateway is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.gateway.shutdown_event.set)
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
