"""Sharded advisor cluster: a consistent-hash gateway over N replicas.

The single :mod:`repro.service` daemon scales to one machine's pool.
This package lifts it into a multi-replica cluster without changing the
wire protocol:

* ``python -m repro.cluster --spawn 3`` starts three replica daemons
  plus a gateway; ``--replica host:port`` fronts already-running ones;
* the gateway consistent-hash routes each request's canonical sha256
  key (:class:`~repro.cluster.ring.HashRing`), so a key's cache entry
  lives on exactly one replica and repeat traffic stays warm;
* membership rides the existing health surface
  (:mod:`repro.cluster.membership`): a failed ``/healthz`` probe or an
  open circuit breaker ejects a replica with bounded key remapping,
  recovery re-admits it; a dead socket on the data path ejects
  immediately and the request fails over — zero lost requests;
* rebalanced keys carry a **peer hint**: the newly-responsible replica
  asks the key's previous owner over ``/cache/peek`` before paying for
  an evaluation, so membership changes don't stampede the pool;
* ``POST /batch`` streams a whole collection sweep back as NDJSON under
  a bounded in-flight window (:mod:`repro.cluster.batch`) — the paper's
  490-matrix study as one long-lived request with backpressure.

Any :class:`~repro.service.ServiceClient` works against the gateway;
routed responses are byte-identical to a direct single-daemon call.
"""

from .batch import BatchSpec, normalize_batch
from .gateway import ClusterGateway, GatewayConfig, GatewayThread, run_gateway
from .harness import ClusterHarness
from .membership import MembershipController, Replica, probe_replica
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "BatchSpec",
    "ClusterGateway",
    "ClusterHarness",
    "DEFAULT_VNODES",
    "GatewayConfig",
    "GatewayThread",
    "HashRing",
    "MembershipController",
    "Replica",
    "normalize_batch",
    "probe_replica",
    "run_gateway",
]
