"""Ring membership driven by replica health probes and breaker state.

The gateway owns the one authoritative membership view — replicas never
gossip, so there is no split brain to reconcile.  A background probe
loop polls every *configured* replica:

* ``GET /healthz`` must answer ``{"ok": true}`` within the probe
  timeout, and
* the ``/metrics`` breaker snapshot must show **no open breaker** — an
  open breaker means the replica's own pool is refusing evaluations, so
  routing fresh keys at it only manufactures degraded answers.

``fail_after`` consecutive bad probes eject a replica from the ring;
one clean probe re-admits it.  The data path can also call
:meth:`MembershipController.mark_down` the moment a forward fails, so a
killed replica leaves the ring mid-burst instead of waiting out the
probe interval.

Every ring change snapshots the *previous* ring for
``peer_window_seconds``: while the window is open,
:meth:`MembershipController.peer_for` answers "which *live* node owned
this key before the last rebalance?" — the peer a freshly-responsible
replica should ask for a warm copy (``/cache/peek``) before paying for
an evaluation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs import events as obs_events
from ..resilience.breaker import OPEN
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["MembershipController", "Replica", "probe_replica"]


@dataclass
class Replica:
    """One configured replica and its probe ledger."""

    host: str
    port: int
    healthy: bool = True
    consecutive_failures: int = 0
    probes: int = 0
    last_error: str | None = None
    #: breaker states seen on the last successful /metrics probe
    breaker_states: dict = field(default_factory=dict)

    @property
    def node(self) -> str:
        return f"{self.host}:{self.port}"


async def probe_replica(host: str, port: int, timeout: float = 2.0) -> dict:
    """One health probe: ``/healthz`` liveness plus breaker states.

    Returns ``{"ok": bool, "breakers": {endpoint: state}, "error": ...}``;
    never raises.
    """
    import asyncio

    from ..service.httpd import request_json

    try:
        status, health = await request_json(host, port, "GET", "/healthz",
                                            timeout=timeout)
        if status != 200 or not health.get("ok"):
            return {"ok": False, "breakers": {},
                    "error": f"/healthz answered {status}: {health}"}
        status, metrics = await request_json(host, port, "GET", "/metrics",
                                             timeout=timeout)
        if status != 200:
            return {"ok": False, "breakers": {},
                    "error": f"/metrics answered {status}"}
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
            json.JSONDecodeError, ConnectionError, ValueError) as exc:
        return {"ok": False, "breakers": {},
                "error": f"{type(exc).__name__}: {exc}"}
    breakers = {
        endpoint: snap.get("state", "closed")
        for endpoint, snap in metrics.get("breakers", {}).items()
    }
    return {"ok": True, "breakers": breakers, "error": None}


class MembershipController:
    """The gateway's authoritative replica set and its hash ring."""

    def __init__(
        self,
        replicas: list[tuple[str, int]],
        vnodes: int = DEFAULT_VNODES,
        fail_after: int = 1,
        peer_window_seconds: float = 120.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not replicas:
            raise ValueError("at least one replica is required")
        if fail_after < 1:
            raise ValueError("fail_after must be positive")
        self.replicas = [Replica(host, port) for host, port in replicas]
        by_node: dict[str, Replica] = {}
        for replica in self.replicas:
            if replica.node in by_node:
                raise ValueError(f"duplicate replica {replica.node}")
            by_node[replica.node] = replica
        self._by_node = by_node
        self.fail_after = fail_after
        self.peer_window_seconds = peer_window_seconds
        self._clock = clock
        self.ring = HashRing((r.node for r in self.replicas), vnodes=vnodes)
        self._previous_ring: HashRing | None = None
        self._changed_at: float | None = None
        self.events: list[dict] = []
        self.ejections = 0
        self.readmissions = 0

    # -- views ---------------------------------------------------------
    @property
    def alive(self) -> list[Replica]:
        return [r for r in self.replicas if r.healthy]

    def replica_for(self, node: str) -> Replica:
        return self._by_node[node]

    def owner(self, key: str) -> Replica | None:
        node = self.ring.owner(key)
        return None if node is None else self._by_node[node]

    def preference(self, key: str) -> list[Replica]:
        """Owner-first failover sequence of live replicas for a key."""
        return [self._by_node[node] for node in self.ring.preference(key)]

    def peer_for(self, key: str) -> Replica | None:
        """The live previous-epoch owner of a key, during the rebalance
        window — the warm peer a remapped key should ``/cache/peek``."""
        if self._previous_ring is None or self._changed_at is None:
            return None
        if self._clock() - self._changed_at > self.peer_window_seconds:
            return None
        current = self.ring.owner(key)
        previous = self._previous_ring.owner(key)
        if previous is None or previous == current:
            return None
        replica = self._by_node.get(previous)
        if replica is None or not replica.healthy:
            return None
        return replica

    # -- transitions ---------------------------------------------------
    def _record(self, event: str, replica: Replica, detail: str | None) -> None:
        self.events.append({
            "event": event,
            "replica": replica.node,
            "detail": detail,
            "at_seconds": self._clock(),
        })
        obs_events.emit(f"membership.{event}", replica=replica.node,
                        detail=detail, alive=len(self.alive))

    def _eject(self, replica: Replica, reason: str) -> None:
        if not replica.healthy:
            return
        replica.healthy = False
        self._previous_ring = self.ring.copy()
        self._changed_at = self._clock()
        self.ring.remove(replica.node)
        self.ejections += 1
        self._record("ejected", replica, reason)

    def _readmit(self, replica: Replica) -> None:
        if replica.healthy:
            return
        replica.healthy = True
        replica.consecutive_failures = 0
        self._previous_ring = self.ring.copy()
        self._changed_at = self._clock()
        self.ring.add(replica.node)
        self.readmissions += 1
        self._record("readmitted", replica, None)

    def mark_down(self, node: str, reason: str = "forward failed") -> None:
        """Data-path ejection: a forward to this replica just failed."""
        replica = self._by_node.get(node)
        if replica is None:
            return
        replica.consecutive_failures += 1
        replica.last_error = reason
        self._eject(replica, reason)

    def observe_probe(self, replica: Replica, probe: dict) -> None:
        """Fold one :func:`probe_replica` result into the membership."""
        replica.probes += 1
        open_breakers = sorted(
            endpoint for endpoint, state in probe.get("breakers", {}).items()
            if state == OPEN
        )
        if probe.get("ok") and not open_breakers:
            replica.consecutive_failures = 0
            replica.last_error = None
            replica.breaker_states = dict(probe.get("breakers", {}))
            self._readmit(replica)
            return
        reason = (f"open breakers: {open_breakers}" if probe.get("ok")
                  else probe.get("error") or "probe failed")
        replica.consecutive_failures += 1
        replica.last_error = reason
        replica.breaker_states = dict(probe.get("breakers", {}))
        if replica.consecutive_failures >= self.fail_after:
            self._eject(replica, reason)

    async def probe_all(self, timeout: float = 2.0) -> None:
        """Probe every configured replica once, concurrently."""
        import asyncio

        probes = await asyncio.gather(*(
            probe_replica(r.host, r.port, timeout) for r in self.replicas
        ))
        for replica, probe in zip(self.replicas, probes):
            self.observe_probe(replica, probe)

    # -- observability -------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "replicas": {
                r.node: {
                    "healthy": r.healthy,
                    "consecutive_failures": r.consecutive_failures,
                    "probes": r.probes,
                    "last_error": r.last_error,
                    "breakers": dict(r.breaker_states),
                }
                for r in self.replicas
            },
            "alive": len(self.alive),
            "total": len(self.replicas),
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "events": self.events[-32:],
            "ownership": self.ring.ownership_shares(1024),
            "peer_window_open": (
                self._changed_at is not None
                and self._clock() - self._changed_at <= self.peer_window_seconds
            ),
        }
