"""Batch/streaming sweep requests (``POST /batch`` on the gateway).

The paper's canonical workload is a *collection* sweep — 490 SuiteSparse
matrices through the same model pipeline (Breiter/Trotter/Fürlinger,
SC-W 2023).  Driving that matrix-by-matrix costs a round trip apiece
and leaves the client to reinvent windowing.  A batch request submits
the whole collection as **one long-lived request**::

    {"endpoint": "advise",
     "items": [{"name": "banded_001", "collection": "small"},
               {"csr": {...}},
               ...],
     "setup": {"num_threads": 48},
     "window": 8}

``items`` is a list of matrix fields (named or inline, exactly the
``"matrix"`` object of a single request); every other field —
``setup`` plus the endpoint's own knobs — is shared by all items.  The
gateway validates and normalizes every item *up front* (each becomes a
canonical task with its own request key, consistent-hash routed like
any single request), then evaluates at most ``window`` items
concurrently and streams one NDJSON line per item **in completion
order**, each carrying its ``index`` into ``items``::

    {"index": 3, "ok": true, "key": "...", "cached": null, "result": {...}}
    {"index": 0, "ok": true, ...}
    ...
    {"batch": {"total": 490, "ok": 488, "errors": 2, ...}}

Backpressure is structural: a line is only handed to the socket when
the client keeps reading (chunked transfer + ``drain()``), and the
window semaphore is held until the line is written, so a slow client
throttles replica work instead of buffering the collection in gateway
memory.  An item that fails to normalize (or whose evaluation errors)
produces an error line, not a dead batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..service.protocol import (
    ENDPOINTS,
    RequestError,
    matrix_name,
    normalize_request,
    request_key,
)

__all__ = ["BatchItem", "BatchSpec", "MAX_WINDOW", "normalize_batch"]

#: Hard cap on the in-flight window a client may request.
MAX_WINDOW = 64

#: Top-level batch fields that are *not* forwarded into item payloads.
_BATCH_ONLY = ("endpoint", "items", "window")


@dataclass
class BatchItem:
    """One normalized batch entry (or its up-front validation error)."""

    index: int
    payload: dict | None = None      #: single-request payload to forward
    task: dict | None = None         #: canonical task (None when invalid)
    key: str | None = None
    name: str | None = None
    error: str | None = None


@dataclass
class BatchSpec:
    endpoint: str
    window: int
    items: list[BatchItem] = field(default_factory=list)

    @property
    def valid_items(self) -> list[BatchItem]:
        return [item for item in self.items if item.error is None]


def normalize_batch(payload: object, default_window: int) -> BatchSpec:
    """Validate a ``/batch`` body into a :class:`BatchSpec`.

    Raises :class:`RequestError` on structural problems (bad endpoint,
    empty items, bad window); per-item normalization problems become
    error entries so one typo'd matrix cannot kill a 490-item sweep.
    """
    if not isinstance(payload, dict):
        raise RequestError("batch body must be a JSON object")
    endpoint = payload.get("endpoint")
    if endpoint not in ENDPOINTS:
        raise RequestError(
            f"batch endpoint must be one of {list(ENDPOINTS)}, got {endpoint!r}"
        )
    items = payload.get("items")
    if not isinstance(items, list) or not items:
        raise RequestError("'items' must be a non-empty list of matrix objects")
    try:
        window = int(payload.get("window", default_window))
    except (TypeError, ValueError):
        raise RequestError("window must be an integer") from None
    if window < 1:
        raise RequestError("window must be positive")
    window = min(window, MAX_WINDOW)
    if "matrix" in payload:
        raise RequestError("batch requests carry 'items', not 'matrix'")
    shared = {k: v for k, v in payload.items() if k not in _BATCH_ONLY}

    spec = BatchSpec(endpoint=endpoint, window=window)
    for index, matrix_field in enumerate(items):
        item_payload = dict(shared)
        item_payload["matrix"] = matrix_field
        try:
            task = normalize_request(endpoint, item_payload)
            spec.items.append(BatchItem(
                index=index,
                payload=item_payload,
                task=task,
                key=request_key(task),
                name=matrix_name(task),
            ))
        except RequestError as exc:
            spec.items.append(BatchItem(index=index, error=str(exc)))
    return spec
