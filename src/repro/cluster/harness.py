"""Spin up a whole cluster — N replicas plus a gateway — in one call.

Two replica modes:

* ``mode="thread"`` (default): each replica is an in-process
  :class:`~repro.service.ServiceThread`.  Cheap and portable — tests and
  ``--exp cluster`` use it.  "Killing" a replica stops its server
  thread, so the gateway sees connection-refused exactly as it would
  for a dead process.
* ``mode="process"``: each replica is a ``python -m repro.service``
  subprocess on an ephemeral port.  :meth:`ClusterHarness.kill_replica`
  delivers SIGKILL — the real mid-request death the CI smoke job and
  ``bench_cluster`` exercise.

Each replica gets its **own** disk-cache directory
(``<cache_root>/replica-<i>``): a shared directory would make every
replica warm for every key and mask the peer-fill path entirely.

>>> with ClusterHarness(replicas=3) as harness:
...     client = harness.client()
...     client.advise(matrix, num_threads=8)
...     harness.kill_replica(0)          # gateway fails over, zero lost
...     harness.restart_replica(0)       # re-admitted; peer fill warms it
"""

from __future__ import annotations

import contextlib
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..service.app import ServiceConfig, ServiceThread
from ..service.client import ServiceClient
from .gateway import GatewayConfig, GatewayThread

__all__ = ["ClusterHarness", "ReplicaHandle"]

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")


def _kill_group(process: subprocess.Popen, sig: int) -> None:
    """Signal a replica's whole process group (it runs in its own session
    — see ``_start_replica``), falling back to the process alone."""
    try:
        os.killpg(process.pid, sig)
    except (ProcessLookupError, PermissionError, OSError):
        with contextlib.suppress(ProcessLookupError):
            process.send_signal(sig)


@dataclass
class ReplicaHandle:
    """One replica daemon under harness control."""

    index: int
    host: str
    port: int
    cache_dir: str
    mode: str
    thread: ServiceThread | None = None
    process: subprocess.Popen | None = field(default=None, repr=False)

    @property
    def node(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        if self.mode == "thread":
            return self.thread is not None
        return self.process is not None and self.process.poll() is None


class ClusterHarness:
    """Gateway + N replica daemons with kill/restart control."""

    def __init__(
        self,
        replicas: int = 3,
        jobs: int = 1,
        cache_root: str | Path | None = None,
        mode: str = "thread",
        replica_config: dict | None = None,
        gateway_config: dict | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.num_replicas = replicas
        self.jobs = jobs
        self.mode = mode
        self.replica_config = dict(replica_config or {})
        self.gateway_config = dict(gateway_config or {})
        self._own_cache_root = cache_root is None
        self.cache_root = Path(
            cache_root if cache_root is not None
            else tempfile.mkdtemp(prefix="repro-cluster-")
        )
        self.replicas: list[ReplicaHandle] = []
        self.gateway_thread: GatewayThread | None = None
        self.address: tuple[str, int] | None = None

    # -- replica lifecycle ---------------------------------------------
    def _start_replica(self, index: int, port: int = 0) -> ReplicaHandle:
        cache_dir = str(self.cache_root / f"replica-{index}")
        if self.mode == "thread":
            config = ServiceConfig(jobs=self.jobs, cache_dir=cache_dir,
                                   **self.replica_config)
            thread = ServiceThread(config, port=port)
            host, actual_port = thread.start()
            return ReplicaHandle(index, host, actual_port, cache_dir,
                                 self.mode, thread=thread)
        argv = [sys.executable, "-m", "repro.service", "--port", str(port),
                "--jobs", str(self.jobs), "--cache", cache_dir]
        for flag, value in self.replica_config.items():
            argv.append(f"--{flag.replace('_', '-')}")
            if value is not True:
                argv.append(str(value))
        # own process group: SIGKILLing the replica must take its forked
        # evaluator workers down too, like a real node death — a surviving
        # worker would hold duplicate fds of the replica's sockets
        process = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True,
                                   env=dict(os.environ),
                                   start_new_session=True)
        line = process.stdout.readline()
        match = _ANNOUNCE.search(line)
        if match is None:
            process.terminate()
            raise RuntimeError(f"replica did not announce its port: {line!r}")
        handle = ReplicaHandle(index, match.group(1), int(match.group(2)),
                               cache_dir, self.mode, process=process)
        with ServiceClient(handle.host, handle.port) as probe:
            probe.wait_ready()
        return handle

    def kill_replica(self, index: int) -> ReplicaHandle:
        """Take a replica down — SIGKILL in process mode, a server stop in
        thread mode.  Its cache directory survives for a later restart."""
        handle = self.replicas[index]
        if handle.mode == "thread":
            if handle.thread is not None:
                handle.thread.stop()
                handle.thread = None
        elif handle.process is not None:
            _kill_group(handle.process, signal.SIGKILL)
            handle.process.wait(timeout=30)
            handle.process = None
        return handle

    def restart_replica(self, index: int, wait_ready: bool = True,
                        clear_cache: bool = False) -> ReplicaHandle:
        """Bring a killed replica back **on its original port** (the
        membership's configured address), warm disk cache intact —
        or wiped first with ``clear_cache=True`` (models a replacement
        node, and lets peer warm-cache fill actually show up: a surviving
        disk tier would otherwise answer before the peer is consulted)."""
        old = self.replicas[index]
        if old.alive:
            return old
        if clear_cache:
            shutil.rmtree(old.cache_dir, ignore_errors=True)
        deadline = time.monotonic() + 30.0
        while True:
            try:
                fresh = self._start_replica(index, port=old.port)
                break
            except OSError:
                # the old socket can linger in TIME_WAIT briefly
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)
        self.replicas[index] = fresh
        if wait_ready:
            with ServiceClient(fresh.host, fresh.port) as probe:
                probe.wait_ready()
        return fresh

    def wait_alive(self, count: int, deadline_seconds: float = 15.0) -> bool:
        """Poll the gateway until its membership shows ``count`` live
        replicas (probe-loop readmission is asynchronous)."""
        client = self.client()
        deadline = time.monotonic() + deadline_seconds
        try:
            while time.monotonic() < deadline:
                if client.metrics()["membership"]["alive"] >= count:
                    return True
                time.sleep(0.1)
            return False
        finally:
            client.close()

    # -- cluster lifecycle ---------------------------------------------
    def start(self) -> tuple[str, int]:
        if self.gateway_thread is not None:
            raise RuntimeError("cluster already started")
        self.replicas = [self._start_replica(i)
                         for i in range(self.num_replicas)]
        config = GatewayConfig(
            replicas=tuple((r.host, r.port) for r in self.replicas),
            **self.gateway_config,
        )
        self.gateway_thread = GatewayThread(config)
        self.address = self.gateway_thread.start()
        return self.address

    def stop(self) -> None:
        if self.gateway_thread is not None:
            self.gateway_thread.stop()
            self.gateway_thread = None
        for handle in self.replicas:
            if handle.mode == "thread" and handle.thread is not None:
                handle.thread.stop()
                handle.thread = None
            elif handle.mode == "process" and handle.process is not None:
                if handle.process.poll() is None:
                    _kill_group(handle.process, signal.SIGTERM)
                    try:
                        handle.process.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        _kill_group(handle.process, signal.SIGKILL)
                        handle.process.wait(timeout=10)
                handle.process = None
        if self._own_cache_root:
            shutil.rmtree(self.cache_root, ignore_errors=True)

    # -- conveniences ---------------------------------------------------
    def client(self, **kwargs) -> ServiceClient:
        """A :class:`ServiceClient` pointed at the gateway (same wire
        protocol as a single daemon)."""
        host, port = self.address
        return ServiceClient(host, port, **kwargs)

    def replica_client(self, index: int, **kwargs) -> ServiceClient:
        handle = self.replicas[index]
        return ServiceClient(handle.host, handle.port, **kwargs)

    @property
    def gateway(self):
        """The live :class:`~repro.cluster.gateway.ClusterGateway` (thread
        mode only; None before start)."""
        return None if self.gateway_thread is None else self.gateway_thread.gateway

    def __enter__(self) -> "ClusterHarness":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
