"""Vectorized exact reuse distance (offline divide-and-conquer counting).

This is the production stack-processing path of the reproduction.  It
computes exact LRU stack distances for traces of millions of references in
pure NumPy, which makes 490-matrix sweeps feasible on one core.

Derivation
----------
Let ``prev[i]`` be the previous access of the same line (same group), or -1.
The reuse distance is the number of distinct lines referenced strictly
between ``prev[i]`` and ``i``.  An access ``j`` in that window contributes a
*new* line iff it is the window's first occurrence of its line, i.e. iff
``prev[j] <= prev[i]``.  Hence::

    RD(i) = #{ j : prev[i] < j < i  and  prev[j] <= prev[i] }.

Every ``j <= prev[i]`` satisfies ``prev[j] < j <= prev[i]`` trivially, so::

    RD(i) = #{ j < i : prev[j] <= prev[i] } - (prev[i] + 1)

— a pure 2-D dominance count over the static point set ``(j, prev[j])``.
It is evaluated bottom-up (CDQ divide and conquer): at block size ``b``,
every pair of sibling blocks contributes, for each query ``i`` in the right
block, the count of points ``j`` in the left block with
``prev[j] <= prev[i]``.  Each ordered pair ``(j, i)`` is counted exactly
once, at the level where the two first share a block.  All blocks of one
level are processed in a single batched ``np.searchsorted`` by offsetting
each block's values into disjoint key ranges, so the Python-level work is
O(log n) with all inner loops in C: O(n log^2 n) total.

Groups (cache partitions, cache sets, private caches, CMG segments) are
handled by stable-sorting the trace by group first: each group's accesses
become contiguous, reuse windows never cross group boundaries, and the
identity above carries over unchanged with group-local ``prev``.
"""

from __future__ import annotations

import numpy as np

from .fenwick import compute_prev
from .naive import COLD

def _dominance_counts(prev: np.ndarray) -> np.ndarray:
    """For each i, count ``#{ j < i : prev[j] <= prev[i] }`` (CDQ bottom-up).

    Blocks are truncated to the true trace length: the trailing partial
    block of each level is processed exactly instead of padding the input
    to the next power of two (which overshoots working memory by up to 2x
    on the hot 4M+9nnz traces).  One scratch buffer holds the sorted left
    halves and is reused across all levels.
    """
    n = prev.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    offset = np.int64(n + 2)  # values span [-1, n-1]: disjoint per-block ranges
    if (n // 2 + 1) * offset >= np.iinfo(np.int64).max // 2:
        raise ValueError(f"trace of length {n} too large for int64 block keys")
    ans = np.zeros(n, dtype=np.int64)
    top = 1 << int(n - 1).bit_length() if n > 1 else 1
    # scratch for the sorted+offset left halves: complete pairs use at most
    # n/2 entries, and the top-level tail block can use up to top/2
    scratch = np.empty(max(top // 2, 1), dtype=np.int64)
    b = 1
    while b < top:
        step = 2 * b
        m = n // step  # complete (left, right) sibling pairs
        if m:
            pairs = prev[: m * step].reshape(m, step)
            left = scratch[: m * b].reshape(m, b)
            np.copyto(left, pairs[:, :b])
            left.sort(axis=1)
            offsets = np.arange(m, dtype=np.int64)[:, None] * offset
            left += offsets
            flat_queries = (pairs[:, b:] + offsets).ravel()
            counts = np.searchsorted(left.ravel(), flat_queries, side="right")
            counts -= np.repeat(np.arange(m, dtype=np.int64) * b, b)
            ans[: m * step].reshape(m, step)[:, b:] += counts.reshape(m, b)
        tail = m * step
        # trailing pair with a full left block and a partial right block;
        # a remainder of <= b elements is a lone left block (queried at a
        # higher level) and contributes nothing here
        if n - tail > b:
            tail_left = scratch[:b]
            np.copyto(tail_left, prev[tail : tail + b])
            tail_left.sort()
            ans[tail + b : n] += np.searchsorted(
                tail_left, prev[tail + b : n], side="right"
            )
        b = step
    return ans


def reuse_distances(trace: np.ndarray, groups: np.ndarray | None = None) -> np.ndarray:
    """Exact reuse distances of a trace, optionally per group.

    Parameters
    ----------
    trace:
        Integer line identifiers, one per access, in program order.
    groups:
        Optional integer group label per access.  Accesses only interact
        within their group (separate LRU stacks): used for cache partitions
        (sector 0 / sector 1), cache sets of a set-associative cache,
        private caches of different cores, and CMG segments — or any
        composition of these encoded into a single integer key.

    Returns
    -------
    ``int64`` array aligned with ``trace``; first accesses get
    :data:`repro.reuse.naive.COLD`.
    """
    trace = np.ascontiguousarray(trace, dtype=np.int64)
    n = trace.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if trace.min() < 0:
        raise ValueError("line identifiers must be non-negative")
    if groups is None:
        order = None
        keys = trace
    else:
        groups = np.ascontiguousarray(groups, dtype=np.int64)
        if groups.shape != (n,):
            raise ValueError("groups must have the same length as trace")
        if groups.min() < 0:
            raise ValueError("group labels must be non-negative")
        order = np.argsort(groups, kind="stable")
        span = int(trace.max()) + 1
        gmax = int(groups.max())
        if gmax and gmax > (2**62) // span:
            raise ValueError("group/line key space too large to combine")
        keys = groups[order] * span + trace[order]
    prev = compute_prev(keys)
    cold = prev < 0
    counts = _dominance_counts(prev)
    rd = counts - (prev + 1)
    rd[cold] = COLD
    if order is None:
        return rd
    out = np.empty(n, dtype=np.int64)
    out[order] = rd
    return out


def miss_count(rd: np.ndarray, capacity_lines: int, mask: np.ndarray | None = None) -> int:
    """Number of misses for a fully associative LRU cache of given capacity.

    Implements the paper's Eq. (1): an access misses iff its reuse distance
    is at least the capacity (cold accesses always miss).  ``mask`` restricts
    the count to a subset of accesses (e.g. one partition or one array).
    """
    if capacity_lines < 0:
        raise ValueError("capacity must be non-negative")
    hits_possible = rd < capacity_lines
    if mask is not None:
        return int(np.count_nonzero(~hits_possible & mask))
    return int(np.count_nonzero(~hits_possible))


def hit_mask(rd: np.ndarray, capacity_lines: int) -> np.ndarray:
    """Boolean mask of accesses that *hit* in an LRU cache of given capacity."""
    if capacity_lines < 0:
        raise ValueError("capacity must be non-negative")
    return rd < capacity_lines
