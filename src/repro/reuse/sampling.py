"""Sampled reuse-distance estimation.

The paper's Section 2.2 notes that full trace instrumentation is costly
and cites lightweight sampling approaches (ReuseTracker) built on
hardware-event sampling and statistics.  This module implements the
trace-level analogue: estimate the reuse-distance profile — and therefore
miss counts — from a uniformly sampled subset of *use pairs*.

Two estimators live here:

* :func:`sample_reuse_distances` — *temporal* (per-reference) sampling: a
  reference is sampled with probability ``rate``, its exact reuse distance
  is computed by a direct window scan, and counts are scaled by ``1/rate``.
  Cheap per sample but the window scans make its worst case as expensive
  as a full pass; it is the reference estimator for tests.
* :func:`spatial_sample_profile` — SHARDS-style *spatial* sampling (the
  serving-path estimator, ladder tier 1): a cache *line* is sampled iff a
  multiplicative hash of its identifier falls under ``rate`` of the hash
  space, the ordinary (periodic) stack pass runs over the surviving
  subtrace, and both distances and miss counts are rescaled.  Filtering
  whole lines preserves every use pair among survivors, so subtrace reuse
  distances are unbiased ``rate``-compressions of the true distances
  (each distinct intervening line survives with probability ``rate``),
  and the pass costs roughly ``rate`` of the full one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cdq import reuse_distances
from .fenwick import compute_prev
from .histogram import ReuseProfile
from .naive import COLD
from .periodic import steady_state_reuse_distances

#: Knuth's multiplicative hash constant (2^32 / phi), the SHARDS T_f hash.
_SHARDS_MULTIPLIER = np.int64(2654435761)
_HASH_BITS = 32


@dataclass(frozen=True)
class SampledProfile:
    """A reuse profile estimated from sampled references.

    ``profile`` holds the sampled distances; miss-count queries are scaled
    back by the sampling rate.
    """

    profile: ReuseProfile
    rate: float
    num_accesses: int

    def misses(self, capacity_lines: int) -> float:
        """Estimated total misses at a capacity (expectation)."""
        return self.profile.misses(capacity_lines) / self.rate

    def miss_ratio(self, capacity_lines: int) -> float:
        if self.num_accesses == 0:
            return 0.0
        return min(1.0, self.misses(capacity_lines) / self.num_accesses)

    def standard_error(self, capacity_lines: int) -> float:
        """Binomial standard error of the estimated miss count."""
        k = self.profile.misses(capacity_lines)
        # Var[k/rate] = k (1 - rate) / rate^2 for Poisson-sampled counts
        return float(np.sqrt(max(k, 0) * (1.0 - self.rate)) / self.rate)


def sample_reuse_distances(
    trace: np.ndarray,
    rate: float,
    seed: int = 0,
    groups: np.ndarray | None = None,
) -> SampledProfile:
    """Estimate the reuse profile of a trace by per-reference sampling.

    Exact per-sample distances: for sampled reference ``i`` with previous
    occurrence ``p``, the distance is the number of ``j`` in ``(p, i)``
    with ``prev[j] <= p`` (first occurrences in the window).  Windows are
    scanned directly; the expected total work is ``rate * sum(window)``,
    i.e. proportional to the sampled fraction of the trace footprint.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.shape[0]
    if n == 0:
        return SampledProfile(ReuseProfile(np.empty(0, dtype=np.int64)), rate, 0)
    if groups is None:
        order = np.arange(n)
        keys = trace
    else:
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (n,):
            raise ValueError("groups must have the same length as trace")
        order = np.argsort(groups, kind="stable")
        span = int(trace.max()) + 1
        keys = groups[order] * span + trace[order]
    prev = compute_prev(keys)
    rng = np.random.default_rng(seed)
    sampled = np.flatnonzero(rng.random(n) < rate)
    distances = np.empty(sampled.shape[0], dtype=np.int64)
    for out_idx, i in enumerate(sampled):
        p = prev[i]
        if p < 0:
            distances[out_idx] = COLD
            continue
        window_prev = prev[p + 1 : i]
        distances[out_idx] = int(np.count_nonzero(window_prev <= p))
    return SampledProfile(
        profile=ReuseProfile(np.sort(distances)), rate=rate, num_accesses=n
    )


# ----------------------------------------------------------------------
# SHARDS-style spatial (line-hash) sampling — the serving-path estimator
# ----------------------------------------------------------------------

def spatial_sample_mask(lines: np.ndarray, rate: float) -> np.ndarray:
    """Deterministic SHARDS inclusion mask over line identifiers.

    A line survives iff ``hash(line) < rate * 2^32`` with the fixed
    multiplicative hash — no RNG, so the same trace always yields the
    same subtrace (estimates are reproducible and cache-stable).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    lines = np.asarray(lines, dtype=np.int64)
    hashed = (lines * _SHARDS_MULTIPLIER) & np.int64(2**_HASH_BITS - 1)
    return hashed < np.int64(round(rate * float(2**_HASH_BITS)))


@dataclass(frozen=True)
class SpatialSampledProfile:
    """A reuse profile over a hash-sampled subset of cache lines.

    ``profile`` holds the *subtrace* reuse distances, which are compressed
    by roughly the sampling rate (each distinct intervening line survives
    the hash filter with probability ``rate``); capacity queries rescale
    the capacity instead of the distances.  Miss counts are scaled back by
    the nominal ``1/rate``: every line — and with it all of its accesses —
    is included with probability exactly ``rate`` under the uniform hash,
    so the subtrace miss count is an unbiased ``rate``-fraction of the
    truth regardless of popularity skew.  (Scaling by the *measured*
    access-inclusion fraction instead is badly biased on skewed traces:
    hot lines dominate the denominator but contribute no misses.)
    ``count_rate`` records the measured access-inclusion fraction as a
    skew diagnostic only.
    """

    profile: ReuseProfile
    rate: float
    count_rate: float
    num_accesses: int

    def effective_capacity(self, capacity_lines: int, scale: float = 1.0) -> int:
        """Subtrace capacity equivalent to ``capacity_lines`` at a distance scale.

        A true (scaled) distance misses a capacity ``C`` iff
        ``scale * rd >= C``; with subtrace distances ``rd_s ~= rate * rd``
        that is ``rd_s >= C * rate / scale``, i.e. an ordinary miss query
        at the rescaled capacity.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        if capacity_lines < 0:
            raise ValueError("capacity must be non-negative")
        return int(np.ceil(capacity_lines * self.rate / scale))

    def sampled_misses(self, capacity_lines: int, scale: float = 1.0) -> int:
        """Raw subtrace miss count at the rescaled capacity (unscaled)."""
        return self.profile.misses(self.effective_capacity(capacity_lines, scale))

    def misses(self, capacity_lines: int, scale: float = 1.0) -> float:
        """Estimated full-trace misses at a capacity (expectation)."""
        return self.sampled_misses(capacity_lines, scale) / self.rate

    def standard_error(self, capacity_lines: int, scale: float = 1.0) -> float:
        """Binomial standard error of the estimated miss count.

        ``Var[k / rate] = k (1 - rate) / rate^2`` for a per-line inclusion
        probability of ``rate`` (conservatively treating sampled misses as
        independent; whole-line inclusion correlates a line's misses, so
        heavy per-line miss multiplicity can exceed this — the ladder adds
        a calibrated slack on top).
        """
        k = self.sampled_misses(capacity_lines, scale)
        return float(np.sqrt(max(k, 0) * (1.0 - self.rate)) / self.rate)


def spatial_sample_profile(
    lines: np.ndarray,
    groups: np.ndarray | None = None,
    rate: float = 0.1,
    periodic: bool = True,
) -> SpatialSampledProfile:
    """SHARDS-sampled reuse profile of a (periodic) trace.

    Runs the same stack pass the exact engines use — the single-period
    steady-state pass by default, the plain CDQ pass otherwise — over the
    hash-filtered subtrace.  Cost is roughly ``rate`` of the exact pass.
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    keep = spatial_sample_mask(lines, rate)
    sub = lines[keep]
    sub_groups = None
    if groups is not None:
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != lines.shape:
            raise ValueError("groups must have the same length as the trace")
        sub_groups = groups[keep]
    if sub.shape[0] == 0:
        return SpatialSampledProfile(
            profile=ReuseProfile(np.empty(0, dtype=np.int64)),
            rate=rate,
            count_rate=0.0,
            num_accesses=n,
        )
    if periodic:
        rd = steady_state_reuse_distances(sub, sub_groups)
    else:
        rd = reuse_distances(sub, sub_groups)
    return SpatialSampledProfile(
        profile=ReuseProfile(np.sort(rd)),
        rate=rate,
        count_rate=sub.shape[0] / n,
        num_accesses=n,
    )
