"""Sampled reuse-distance estimation.

The paper's Section 2.2 notes that full trace instrumentation is costly
and cites lightweight sampling approaches (ReuseTracker) built on
hardware-event sampling and statistics.  This module implements the
trace-level analogue: estimate the reuse-distance profile — and therefore
miss counts — from a uniformly sampled subset of *use pairs*.

A reference is sampled with probability ``rate``; for a sampled reference
the *exact* distance to its previous use is computed (cheap: one hash
lookup for the previous position plus one distinct-count over the window),
and every estimate is scaled by ``1/rate``.  Distinct counting over the
window reuses the same first-occurrence identity as the CDQ engine, so the
estimator needs only ``prev`` and a per-window count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fenwick import compute_prev
from .histogram import ReuseProfile
from .naive import COLD


@dataclass(frozen=True)
class SampledProfile:
    """A reuse profile estimated from sampled references.

    ``profile`` holds the sampled distances; miss-count queries are scaled
    back by the sampling rate.
    """

    profile: ReuseProfile
    rate: float
    num_accesses: int

    def misses(self, capacity_lines: int) -> float:
        """Estimated total misses at a capacity (expectation)."""
        return self.profile.misses(capacity_lines) / self.rate

    def miss_ratio(self, capacity_lines: int) -> float:
        if self.num_accesses == 0:
            return 0.0
        return min(1.0, self.misses(capacity_lines) / self.num_accesses)

    def standard_error(self, capacity_lines: int) -> float:
        """Binomial standard error of the estimated miss count."""
        k = self.profile.misses(capacity_lines)
        # Var[k/rate] = k (1 - rate) / rate^2 for Poisson-sampled counts
        return float(np.sqrt(max(k, 0) * (1.0 - self.rate)) / self.rate)


def sample_reuse_distances(
    trace: np.ndarray,
    rate: float,
    seed: int = 0,
    groups: np.ndarray | None = None,
) -> SampledProfile:
    """Estimate the reuse profile of a trace by per-reference sampling.

    Exact per-sample distances: for sampled reference ``i`` with previous
    occurrence ``p``, the distance is the number of ``j`` in ``(p, i)``
    with ``prev[j] <= p`` (first occurrences in the window).  Windows are
    scanned directly; the expected total work is ``rate * sum(window)``,
    i.e. proportional to the sampled fraction of the trace footprint.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.shape[0]
    if n == 0:
        return SampledProfile(ReuseProfile(np.empty(0, dtype=np.int64)), rate, 0)
    if groups is None:
        order = np.arange(n)
        keys = trace
    else:
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (n,):
            raise ValueError("groups must have the same length as trace")
        order = np.argsort(groups, kind="stable")
        span = int(trace.max()) + 1
        keys = groups[order] * span + trace[order]
    prev = compute_prev(keys)
    rng = np.random.default_rng(seed)
    sampled = np.flatnonzero(rng.random(n) < rate)
    distances = np.empty(sampled.shape[0], dtype=np.int64)
    for out_idx, i in enumerate(sampled):
        p = prev[i]
        if p < 0:
            distances[out_idx] = COLD
            continue
        window_prev = prev[p + 1 : i]
        distances[out_idx] = int(np.count_nonzero(window_prev <= p))
    return SampledProfile(
        profile=ReuseProfile(np.sort(distances)), rate=rate, num_accesses=n
    )
