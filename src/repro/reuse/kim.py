"""Approximate stack simulation after Kim, Hill & Wood (SIGMETRICS 1991).

The paper computes its reuse distances with the stack-processing algorithm
of Kim et al., chosen because its per-reference cost is *independent of the
locality of the trace* (unlike a linked-list stack, whose cost is the stack
depth).  The algorithm partitions the LRU stack into contiguous *groups* of
bounded size; each line is tagged with its group, so a reference costs O(1)
amortized: the distance is read off the cumulative group sizes, the line
moves to the topmost group, and overflowing groups demote their
least-recently-used line to the next group.

The returned distance is exact at group granularity: for a line in group
``g``, the true stack depth lies in ``[starts[g], starts[g] + size[g])`` and
the midpoint of that range is reported.  With ``group_size=1`` the result is
exact.  Cache-boundary evaluations are exact whenever the capacity is a
multiple of the group size, which is how the model uses it (capacities are
whole numbers of ways times sets).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .naive import COLD


def reuse_distances_kim(
    trace: np.ndarray,
    groups: np.ndarray | None = None,
    group_size: int = 64,
) -> np.ndarray:
    """Approximate reuse distances with bounded per-reference cost.

    Parameters mirror :func:`repro.reuse.cdq.reuse_distances`;
    ``group_size`` is the stack-group capacity (distance resolution).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.shape[0]
    if groups is None:
        labels = np.zeros(n, dtype=np.int64)
    else:
        labels = np.asarray(groups, dtype=np.int64)
        if labels.shape != (n,):
            raise ValueError("groups must have the same length as trace")
    out = np.empty(n, dtype=np.int64)
    stacks: dict[int, _GroupedStack] = {}
    for i in range(n):
        stack = stacks.get(labels[i].item())
        if stack is None:
            stack = _GroupedStack(group_size)
            stacks[labels[i].item()] = stack
        out[i] = stack.access(trace[i].item())
    return out


class _GroupedStack:
    """LRU stack partitioned into bounded groups (one partition's state).

    Re-accessed lines are removed lazily: the old deque entry stays behind
    with a stale version token and is discarded when it surfaces, keeping
    every operation O(1) amortized.
    """

    def __init__(self, group_size: int) -> None:
        self._group_size = group_size
        # each group is a deque of (line, version): left = most recent
        self._groups: list[deque] = [deque()]
        #: line -> (group index, version) of its single live entry
        self._where: dict[int, tuple[int, int]] = {}
        self._live: list[int] = [0]  # live entries per group
        self._version = 0

    def access(self, line: int) -> int:
        entry = self._where.get(line)
        if entry is None:
            distance = COLD
        else:
            g, _ = entry
            # distance approximated at group granularity: all live lines in
            # groups above, plus the midpoint of the line's own group
            above = sum(self._live[k] for k in range(g))
            distance = above + (self._live[g] - 1) // 2
            self._live[g] -= 1  # old entry becomes stale
        self._version += 1
        self._groups[0].appendleft((line, self._version))
        self._where[line] = (0, self._version)
        self._live[0] += 1
        self._cascade()
        return int(distance)

    def _cascade(self) -> None:
        """Demote LRU lines down the group chain until all groups fit."""
        groups, live = self._groups, self._live
        g = 0
        while g < len(groups):
            while live[g] > self._group_size:
                line, version = groups[g].pop()
                if self._where.get(line) != (g, version):
                    continue  # stale entry: discard silently
                live[g] -= 1
                if g + 1 == len(groups):
                    groups.append(deque())
                    live.append(0)
                groups[g + 1].appendleft((line, version))
                self._where[line] = (g + 1, version)
                live[g + 1] += 1
            g += 1
