"""Exact reuse distance with a Fenwick tree (Bennett-Kruskal style).

Classic O(n log n) stack-distance computation: sweep the trace keeping a
binary indexed tree with a 1 at every position that is currently the *last*
occurrence of its line.  The reuse distance of access ``i`` with previous
occurrence ``p`` is the number of ones in ``(p, i)``.

This is the textbook sequential algorithm; the production path is the
vectorized CDQ variant in :mod:`repro.reuse.cdq`, which this module
cross-validates in the test suite.
"""

from __future__ import annotations

import numpy as np

from .naive import COLD


class FenwickTree:
    """Binary indexed tree over ``size`` integer counters (prefix sums)."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` at position ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` positions (indices < count)."""
        count = min(max(count, 0), self._size)
        total = 0
        tree = self._tree
        i = count
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over positions in ``[lo, hi)``."""
        return self.prefix_sum(hi) - self.prefix_sum(lo)


def compute_prev(keys: np.ndarray) -> np.ndarray:
    """Previous-occurrence index of each element (-1 for first), vectorized.

    ``keys`` may be any integer identity (line id, or a combined
    group-and-line key); two accesses are "the same location" iff their keys
    are equal.
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def reuse_distances_fenwick(
    trace: np.ndarray, groups: np.ndarray | None = None
) -> np.ndarray:
    """Exact reuse distances via a Fenwick-tree sweep.

    Same semantics as :func:`repro.reuse.naive.reuse_distances_naive`:
    per-group stacks, ``COLD`` for first accesses.
    """
    trace = np.asarray(trace, dtype=np.int64)
    n = trace.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if groups is None:
        keys = trace
        order = np.arange(n)
    else:
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (n,):
            raise ValueError("groups must have the same length as trace")
        # make each group's accesses contiguous so windows stay in-group
        order = np.argsort(groups, kind="stable")
        span = int(trace.max()) + 1 if n else 1
        gmax = int(groups.max())
        if gmax and gmax > (2**62) // span:
            raise ValueError("group/line key space too large to combine")
        keys = groups[order] * span + trace[order]
    prev = compute_prev(keys)
    tree = FenwickTree(n)
    rd_sorted = np.empty(n, dtype=np.int64)
    for i in range(n):
        p = prev[i]
        if p < 0:
            rd_sorted[i] = COLD
        else:
            rd_sorted[i] = tree.range_sum(p + 1, i)
            tree.add(p, -1)
        tree.add(i, 1)
    out = np.empty(n, dtype=np.int64)
    out[order] = rd_sorted
    return out
