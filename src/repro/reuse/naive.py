"""Mattson LRU stack processing — the reference implementation.

The original stack algorithm of Mattson et al. (1970): maintain the LRU
stack explicitly; the reuse (stack) distance of an access is the depth of
the accessed line, which is then moved to the top.  O(n * m) for m distinct
lines — used only as the semantic oracle in tests and for tiny examples.
"""

from __future__ import annotations

import numpy as np

#: Sentinel reuse distance of a cold (first-ever) access; effectively
#: infinite, so ``rd >= capacity`` classifies cold accesses as misses.
COLD = np.int64(2**62)


def reuse_distances_naive(
    trace: np.ndarray, groups: np.ndarray | None = None
) -> np.ndarray:
    """Exact reuse distances by explicit LRU-stack simulation.

    Parameters
    ----------
    trace:
        Sequence of accessed line identifiers.
    groups:
        Optional per-access group labels.  Accesses only interact with
        accesses of the same group (separate LRU stacks per group) — used to
        express cache partitions and cache sets.

    Returns
    -------
    Array of reuse distances; ``COLD`` marks first accesses.
    """
    trace = np.asarray(trace)
    n = trace.shape[0]
    if groups is None:
        groups = np.zeros(n, dtype=np.int64)
    else:
        groups = np.asarray(groups)
        if groups.shape != (n,):
            raise ValueError("groups must have the same length as trace")
    out = np.empty(n, dtype=np.int64)
    stacks: dict[int, list] = {}
    for i in range(n):
        g = groups[i].item() if hasattr(groups[i], "item") else groups[i]
        line = trace[i]
        stack = stacks.setdefault(g, [])
        try:
            depth = stack.index(line)
        except ValueError:
            out[i] = COLD
            stack.insert(0, line)
        else:
            out[i] = depth
            del stack[depth]
            stack.insert(0, line)
    return out
