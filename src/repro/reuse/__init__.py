"""Reuse-distance engine: exact and approximate stack processing."""

from .cdq import hit_mask, miss_count, reuse_distances
from .fenwick import FenwickTree, compute_prev, reuse_distances_fenwick
from .histogram import ReuseProfile, partition_profiles, scale_distances
from .kim import reuse_distances_kim
from .naive import COLD, reuse_distances_naive
from .periodic import steady_state_reuse_distances
from .sampling import (
    SampledProfile,
    SpatialSampledProfile,
    sample_reuse_distances,
    spatial_sample_mask,
    spatial_sample_profile,
)

__all__ = [
    "COLD",
    "FenwickTree",
    "ReuseProfile",
    "SampledProfile",
    "SpatialSampledProfile",
    "compute_prev",
    "hit_mask",
    "miss_count",
    "reuse_distances",
    "reuse_distances_fenwick",
    "reuse_distances_kim",
    "reuse_distances_naive",
    "sample_reuse_distances",
    "spatial_sample_mask",
    "spatial_sample_profile",
    "partition_profiles",
    "scale_distances",
    "steady_state_reuse_distances",
]
