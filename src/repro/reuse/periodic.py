"""Single-period steady-state reuse distances of a periodic trace.

Iterative SpMV replays the same reference trace every sweep, so the paper's
steady-state miss counts (Section 3.2) only need the reuse distances of one
*warmed-up* iteration.  The reproduction originally obtained them by
materializing two copies of the period (:func:`repro.core.trace.repeat_trace`)
and running the O(n log^2 n) stack pass over both, then discarding the first
half of the results.  This module computes the same distances exactly from a
single period:

* an access whose line occurred earlier in the period reuses *within* the
  period — its distance is the ordinary in-period reuse distance;
* a period-first access reuses *across* the period boundary: its previous
  occurrence is the line's last occurrence in the preceding period, and its
  reuse distance is the number of distinct lines in the wrap-around window
  (the previous period's suffix after that last occurrence, plus the current
  period's prefix before the access).

With ``q`` the last occurrence of the line and ``p`` its first occurrence,
the wrap-around distance decomposes by inclusion-exclusion over distinct
lines of the group::

    RD(p) = #{L : first(L) < p} + #{L : last(L) > q}
          - #{L : first(L) < p  and  last(L) > q}

The first term is the access's rank among period-first occurrences (a
cumulative sum), the second a suffix count of last occurrences (a cumulative
sum from the period's end), and the third a 2-D dominance count over the
*distinct lines only* — evaluated with the same batched CDQ machinery as the
in-period pass, but on a point set that is a small fraction of the trace.
The line itself satisfies neither ``first(L) < p`` nor ``last(L) > q``, so
it is excluded automatically.

The engine also supports a *different first period* (``first_lines`` /
``first_groups``): the modelled trace is then ``[first, period, period, ...]``
and the returned distances are those of the first ``period`` repetition.
The cache-hierarchy simulator needs this because its first SpMV iteration
carries prefetcher ramp references that later iterations do not; lines that
never occur in the first period are reported :data:`COLD`, exactly as in the
explicitly concatenated trace.
"""

from __future__ import annotations

import numpy as np

from .cdq import _dominance_counts
from .fenwick import compute_prev
from .naive import COLD


def _group_sorted(lines: np.ndarray, groups: np.ndarray, span: int):
    """Stable group sort plus combined (group, line) keys."""
    order = np.argsort(groups, kind="stable")
    g_sorted = groups[order]
    keys = g_sorted * np.int64(span) + lines[order]
    return order, g_sorted, keys


def _validate(name: str, lines: np.ndarray, groups: np.ndarray) -> None:
    if groups.shape != lines.shape:
        raise ValueError(f"{name} groups must have the same length as the lines")
    if lines.shape[0]:
        if lines.min() < 0:
            raise ValueError("line identifiers must be non-negative")
        if groups.min() < 0:
            raise ValueError("group labels must be non-negative")


def steady_state_reuse_distances(
    lines: np.ndarray,
    groups: np.ndarray | None = None,
    first_lines: np.ndarray | None = None,
    first_groups: np.ndarray | None = None,
) -> np.ndarray:
    """Exact steady-state reuse distances of one period of a periodic trace.

    Parameters
    ----------
    lines:
        Cache-line identifiers of one period, in program order.
    groups:
        Optional per-access group label (cache partitions, private caches,
        CMG segments, set-associative sets — any composition encoded as one
        integer).  Accesses only interact within their group.
    first_lines, first_groups:
        Optional explicit *first* period when it differs from the steady
        period (e.g. prefetcher warm-up ramps).  The modelled trace is
        ``[first, period, period, ...]``; by default the first period is the
        period itself.

    Returns
    -------
    ``int64`` array aligned with ``lines`` holding the reuse distances of the
    period directly following the first period — element for element what
    ``reuse_distances(concat([first, period]), ...)`` reports for the second
    half, without ever materializing the concatenation.  Lines absent from
    the first period are :data:`COLD`.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    n = lines.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if groups is None:
        groups = np.zeros(n, dtype=np.int64)
    else:
        groups = np.ascontiguousarray(groups, dtype=np.int64)
    _validate("period", lines, groups)

    separate_first = first_lines is not None
    if separate_first:
        first_lines = np.ascontiguousarray(first_lines, dtype=np.int64)
        m = first_lines.shape[0]
        if first_groups is None:
            first_groups = np.zeros(m, dtype=np.int64)
        else:
            first_groups = np.ascontiguousarray(first_groups, dtype=np.int64)
        _validate("first-period", first_lines, first_groups)
    else:
        first_lines, first_groups = lines, groups
        m = n

    span = int(lines.max()) + 1
    if m:
        span = max(span, int(first_lines.max()) + 1)
    gmax = int(groups.max())
    if m:
        gmax = max(gmax, int(first_groups.max()))
    if gmax and gmax > (2**62) // span:
        raise ValueError("group/line key space too large to combine")

    # ---- in-period pass: ordinary reuse distances of non-first accesses
    # (large temporaries are released with `del` as soon as they are no
    # longer needed: the halved peak footprint vs. the doubled trace is one
    # of the acceptance criteria of this engine)
    order, g_sorted, keys = _group_sorted(lines, groups, span)
    if not separate_first:
        first_groups = None  # alias of groups; drop it so the del frees it
    del groups
    prev = compute_prev(keys)
    rd = _dominance_counts(prev) - (prev + 1)
    is_first = prev < 0

    # last occurrence of each distinct (group, line) key in the first
    # period: exactly the positions no other access points back to, so the
    # prev pointers identify them without any trace-length sort
    if separate_first:
        _, fg_sorted, fkeys = _group_sorted(first_lines, first_groups, span)
        del first_groups
        fprev = compute_prev(fkeys)
    else:
        fg_sorted, fkeys = g_sorted, keys
        fprev = prev
    is_last_f = np.ones(m, dtype=bool)
    is_last_f[fprev[fprev >= 0]] = False
    del fprev, prev

    # ---- wrap-around distances of the period-first accesses
    # A: rank among the group's period-first occurrences (= #{first(L) < p})
    firsts_before = np.cumsum(is_first) - is_first
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = g_sorted[1:] != g_sorted[:-1]
    seg_starts = np.flatnonzero(new_group)
    seg_id = np.cumsum(new_group) - 1
    rank_first = firsts_before - firsts_before[seg_starts][seg_id]
    del firsts_before, new_group, seg_starts, seg_id

    # one entry per distinct key: key-sorted lookup table of last positions
    last_positions = np.flatnonzero(is_last_f)
    last_keys = fkeys[last_positions]
    kord = np.argsort(last_keys, kind="stable")
    uniq_keys = last_keys[kord]
    last_pos = last_positions[kord]
    del last_positions, last_keys, kord

    # B: suffix count of last occurrences after q within the group
    lasts_upto = np.cumsum(is_last_f)
    del is_last_f

    query_pos = np.flatnonzero(is_first)
    query_keys = keys[query_pos]
    del is_first, keys, fkeys
    idx = np.searchsorted(uniq_keys, query_keys)
    present = idx < uniq_keys.shape[0]
    present[present] = uniq_keys[idx[present]] == query_keys[present]
    del uniq_keys, query_keys

    out_sorted = rd
    out_sorted[query_pos[~present]] = COLD

    hit_pos = query_pos[present]
    if hit_pos.size:
        q = last_pos[idx[present]]
        group_end = np.searchsorted(fg_sorted, g_sorted[hit_pos], side="right")
        suffix_lasts = lasts_upto[group_end - 1] - lasts_upto[q]
        # C: distinct lines with first(L) < p and last(L) > q — a dominance
        # count over the present period-first occurrences.  Both the query
        # order (group-sorted period position) and the values (first-period
        # coordinates) are group-monotone, so the cross-group contributions
        # of the global CDQ count cancel exactly against the global index.
        ranks = np.arange(hit_pos.shape[0], dtype=np.int64)
        # rank-compress q: _dominance_counts requires values bounded by the
        # array length; the q positions are distinct, so ranks preserve counts
        q_rank = np.empty(hit_pos.shape[0], dtype=np.int64)
        q_rank[np.argsort(q)] = ranks
        overlap = ranks - _dominance_counts(q_rank)
        out_sorted[hit_pos] = rank_first[hit_pos] + suffix_lasts - overlap

    out = np.empty(n, dtype=np.int64)
    out[order] = out_sorted
    return out
