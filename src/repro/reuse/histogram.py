"""Reuse-distance histograms and capacity sweeps.

A single reuse-distance computation answers miss-count queries for *every*
cache capacity (the key advantage over cache simulation that the paper's
Section 2.2 highlights).  :class:`ReuseProfile` packages sorted distances so
repeated capacity queries — e.g. one per sector-cache way split — are
O(log n) ``searchsorted`` lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .naive import COLD


@dataclass(frozen=True)
class ReuseProfile:
    """Sorted reuse distances of (a subset of) a trace.

    ``sorted_rd`` includes cold accesses as :data:`COLD` entries, so
    ``misses(c)`` counts compulsory plus capacity misses, and
    ``capacity_misses(c)`` counts capacity misses only.
    """

    sorted_rd: np.ndarray

    @classmethod
    def from_distances(
        cls, rd: np.ndarray, mask: np.ndarray | None = None
    ) -> "ReuseProfile":
        rd = np.asarray(rd, dtype=np.int64)
        if mask is not None:
            rd = rd[np.asarray(mask, dtype=bool)]
        return cls(np.sort(rd))

    @property
    def num_accesses(self) -> int:
        return int(self.sorted_rd.shape[0])

    @property
    def num_cold(self) -> int:
        """Number of compulsory (first-reference) accesses."""
        return self.num_accesses - int(
            np.searchsorted(self.sorted_rd, COLD, side="left")
        )

    def misses(self, capacity_lines: int) -> int:
        """Total misses (compulsory + capacity) for an LRU cache of ``capacity_lines``."""
        if capacity_lines < 0:
            raise ValueError("capacity must be non-negative")
        hits = int(np.searchsorted(self.sorted_rd, capacity_lines, side="left"))
        return self.num_accesses - hits

    def capacity_misses(self, capacity_lines: int) -> int:
        """Capacity misses only (cold accesses excluded)."""
        return self.misses(capacity_lines) - self.num_cold

    def hit_ratio(self, capacity_lines: int) -> float:
        """Hit ratio at the given capacity (1.0 for an empty profile)."""
        if self.num_accesses == 0:
            return 1.0
        return 1.0 - self.misses(capacity_lines) / self.num_accesses

    def miss_curve(self, capacities: np.ndarray) -> np.ndarray:
        """Vectorized ``misses`` over an array of capacities."""
        capacities = np.asarray(capacities, dtype=np.int64)
        if np.any(capacities < 0):
            raise ValueError("capacities must be non-negative")
        hits = np.searchsorted(self.sorted_rd, capacities, side="left")
        return self.num_accesses - hits

    def histogram(self, bin_edges: np.ndarray) -> np.ndarray:
        """Counts of finite reuse distances within ``bin_edges`` bins."""
        finite = self.sorted_rd[self.sorted_rd < COLD]
        counts, _ = np.histogram(finite, bins=np.asarray(bin_edges))
        return counts


def partition_profiles(
    rd: np.ndarray,
    labels: np.ndarray,
    num_labels: int,
    mask: np.ndarray | None = None,
) -> tuple[ReuseProfile, ...]:
    """One :class:`ReuseProfile` per label value in ``[0, num_labels)``.

    Buckets the reuse distances by an integer label (array id, sector,
    thread — any per-access attribute) in a single stable sort, optionally
    restricted to ``mask`` first.  This is how the model materializes its
    per-(grouping, array) profiles after a stack pass: every later policy
    query is then an O(log n) ``searchsorted`` against these buckets.
    """
    rd = np.asarray(rd, dtype=np.int64)
    labels = np.asarray(labels)
    if labels.shape != rd.shape:
        raise ValueError("labels must align with the distances")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        rd = rd[mask]
        labels = labels[mask]
    order = np.argsort(labels, kind="stable")
    labels_sorted = labels[order]
    rd_sorted = rd[order]
    bounds = np.searchsorted(labels_sorted, np.arange(num_labels + 1))
    return tuple(
        ReuseProfile.from_distances(rd_sorted[bounds[i] : bounds[i + 1]])
        for i in range(num_labels)
    )


def scale_distances(rd: np.ndarray, factor: float) -> np.ndarray:
    """Scale finite reuse distances by ``factor``, preserving COLD markers.

    Used by the paper's method (B): x-only reuse distances are inflated by
    the analytic factors s1/s2 to account for interleaved references to the
    other data structures (Section 3.2.2).  Results are rounded to the
    nearest integer distance.
    """
    if factor < 0:
        raise ValueError("factor must be non-negative")
    rd = np.asarray(rd, dtype=np.int64)
    out = np.full(rd.shape, COLD, dtype=np.int64)
    finite = rd < COLD
    out[finite] = np.rint(rd[finite] * float(factor)).astype(np.int64)
    return out
