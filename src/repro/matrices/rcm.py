"""Reverse Cuthill-McKee (RCM) reordering, from scratch.

Alappat et al. apply RCM before their SpMV measurements; the paper
attributes part of its Table-1 deviations (kkt_power, bundle_adj,
audikw_1, delaunay_n24) to running without it.  RCM permutes a symmetric
pattern to minimise bandwidth: breadth-first search from a low-degree
peripheral vertex, neighbours visited in increasing-degree order, and the
resulting order reversed.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..spmv.csr import CSRMatrix


def _symmetrized_adjacency(matrix: CSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the pattern of ``A + A^T`` without self-loops."""
    if matrix.num_rows != matrix.num_cols:
        raise ValueError("RCM requires a square matrix")
    rows, cols, _ = matrix.to_coo()
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    keep = r != c
    r, c = r[keep], c[keep]
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    if r.size:
        uniq = np.ones(r.size, dtype=bool)
        uniq[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        r, c = r[uniq], c[uniq]
    ptr = np.zeros(matrix.num_rows + 1, dtype=np.int64)
    np.add.at(ptr, r + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, c


def _pseudo_peripheral(ptr: np.ndarray, adj: np.ndarray, start: int) -> int:
    """Find a pseudo-peripheral vertex by repeated BFS level sweeps."""
    n = ptr.shape[0] - 1
    degree = np.diff(ptr)
    node = start
    last_ecc = -1
    for _ in range(8):  # converges in a couple of sweeps in practice
        level = np.full(n, -1, dtype=np.int64)
        level[node] = 0
        queue = deque([node])
        far = node
        while queue:
            u = queue.popleft()
            for v in adj[ptr[u] : ptr[u + 1]]:
                if level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
                    far = v
        ecc = int(level[far])
        if ecc <= last_ecc:
            break
        last_ecc = ecc
        # pick the minimum-degree vertex of the last level
        candidates = np.flatnonzero(level == ecc)
        node = int(candidates[np.argmin(degree[candidates])])
    return node


def rcm_permutation(matrix: CSRMatrix) -> np.ndarray:
    """The RCM ordering: ``perm[i]`` is the original index placed at ``i``."""
    ptr, adj = _symmetrized_adjacency(matrix)
    n = matrix.num_rows
    degree = np.diff(ptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    for seed in np.argsort(degree, kind="stable"):
        if visited[seed]:
            continue
        root = _pseudo_peripheral(ptr, adj, int(seed))
        if visited[root]:
            root = int(seed)
        visited[root] = True
        queue = deque([root])
        while queue:
            u = queue.popleft()
            order[filled] = u
            filled += 1
            neigh = adj[ptr[u] : ptr[u + 1]]
            neigh = neigh[~visited[neigh]]
            visited[neigh] = True
            for v in neigh[np.argsort(degree[neigh], kind="stable")]:
                queue.append(int(v))
    assert filled == n, "BFS failed to visit every vertex"
    return order[::-1].copy()


def rcm_reorder(matrix: CSRMatrix) -> CSRMatrix:
    """Symmetrically permute a square matrix into RCM order."""
    perm = rcm_permutation(matrix)
    out = matrix.permute(perm)
    return CSRMatrix(
        out.num_rows,
        out.num_cols,
        out.rowptr,
        out.colidx,
        out.values,
        name=f"{matrix.name}_rcm" if matrix.name else "rcm",
    )
