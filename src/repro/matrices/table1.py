"""The 18 named matrices of the paper's Table 1, with synthetic proxies.

Table 1 compares the paper's CSR SpMV performance (48 threads, no sector
cache) against Alappat et al. [1] on 18 SuiteSparse matrices.  The real
matrices are unavailable offline, so each is replaced by a synthetic proxy
from the generator family matching its problem class, scaled down by the
machine scale factor while preserving the nonzeros-per-row profile (the
quantity that drives SpMV locality).  The published Gflop/s figures of both
papers are kept as reference constants — exactly how the paper itself uses
the Alappat et al. column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..spmv.csr import CSRMatrix
from . import generators as gen


@dataclass(frozen=True)
class Table1Entry:
    """One row of Table 1: published data plus a proxy factory."""

    name: str
    rows: int
    nnz: int
    gflops_paper: float
    gflops_alappat: float
    family: str
    build: Callable[[int], CSRMatrix]

    @property
    def nnz_per_row(self) -> float:
        return self.nnz / self.rows

    def proxy(self, scale: int | None = None) -> CSRMatrix:
        """Synthetic stand-in at ``1/scale`` of the published size.

        With ``scale=None`` the scale adapts per matrix so the proxy's
        nonzero count lands in a fixed band (~100k-300k): this keeps the
        proxy's working-set/cache ratio on the scaled machine close to the
        original's ratio on the real machine across the 4M-111M nonzero
        span of the table, which a single divisor cannot do.
        """
        if scale is None:
            target = min(300_000, max(100_000, self.nnz // 48))
            scale = max(1, round(self.nnz / target))
        if scale <= 0:
            raise ValueError("scale must be positive")
        matrix = self.build(scale)
        return CSRMatrix(
            matrix.num_rows,
            matrix.num_cols,
            matrix.rowptr,
            matrix.colidx,
            matrix.values,
            name=self.name,
        )


def _entry(
    name: str,
    rows_m: float,
    nnz_m: float,
    ours: float,
    alappat: float,
    family: str,
    build: Callable[[int, int, int], CSRMatrix],
) -> Table1Entry:
    rows = int(rows_m * 1e6)
    nnz = int(nnz_m * 1e6)
    return Table1Entry(
        name=name,
        rows=rows,
        nnz=nnz,
        gflops_paper=ours,
        gflops_alappat=alappat,
        family=family,
        build=lambda scale: build(max(64, rows // scale), max(1, nnz // scale), hash(name) & 0x7FFFFFFF),
    )


def _blocks(n: int, nnz: int, seed: int) -> CSRMatrix:
    block = max(4, min(256, nnz // n))
    return gen.block_diagonal(max(n, block), block, 1.0, seed=seed)


def _band(frac: float) -> Callable[[int, int, int], CSRMatrix]:
    def build(n: int, nnz: int, seed: int) -> CSRMatrix:
        npr = max(1, nnz // n)
        return gen.banded(n, max(1, int(n * frac)), npr, seed=seed)

    return build


def _stencil(n: int, nnz: int, seed: int) -> CSRMatrix:
    points = 5 if nnz // n < 7 else 27
    if points == 5:
        side = max(16, int(round((nnz / points) ** 0.5)))
        return gen.stencil_2d(side, side, 5)
    side = max(8, int(round((nnz / points) ** (1.0 / 3.0))))
    return gen.stencil_3d(side, side, side, 27)


def _powerlaw(n: int, nnz: int, seed: int) -> CSRMatrix:
    return gen.power_law(n, max(1.5, nnz / n), 2.0, seed=seed)


def _random(n: int, nnz: int, seed: int) -> CSRMatrix:
    return gen.random_uniform(n, max(1, nnz // n), seed=seed)


def _diagrand(n: int, nnz: int, seed: int) -> CSRMatrix:
    npr = max(2, nnz // n)
    return gen.diagonal_plus_random(n, npr - npr // 3, npr // 3, seed=seed)


#: Table 1 of the paper: rows, nonzeros and Gflop/s (ours / Alappat et al.).
TABLE1: tuple[Table1Entry, ...] = (
    _entry("pdb1HYS", 0.036, 4.3, 82.9, 40.2, "block_diagonal", _blocks),
    _entry("Hamrle3", 1.447, 5.5, 15.9, 9.4, "power_law", _powerlaw),
    _entry("G3_circuit", 1.585, 7.7, 10.8, 11.2, "stencil", _stencil),
    _entry("shipsec1", 0.141, 7.8, 94.0, 16.7, "block_diagonal", _blocks),
    _entry("pwtk", 0.218, 11.5, 87.3, 94.5, "banded", _band(0.01)),
    _entry("kkt_power", 2.063, 14.6, 8.6, 14.3, "diag_random", _diagrand),
    _entry("Si41Ge41H72", 0.186, 15.0, 71.6, 70.3, "banded", _band(0.05)),
    _entry("bundle_adj", 0.513, 20.2, 7.6, 66.6, "power_law", _powerlaw),
    _entry("msdoor", 0.416, 20.2, 50.6, 53.3, "banded", _band(0.02)),
    _entry("Fault_639", 0.639, 28.6, 75.7, 77.5, "banded", _band(0.01)),
    _entry("af_shell10", 1.508, 52.7, 94.0, 92.3, "banded", _band(0.005)),
    _entry("Serena", 1.391, 64.5, 65.6, 70.5, "banded", _band(0.02)),
    _entry("bone010", 0.987, 71.7, 110.8, 118.9, "banded", _band(0.01)),
    _entry("audikw_1", 0.944, 77.7, 45.1, 102.8, "banded", _band(0.05)),
    _entry("channel-500x100x100-b050", 4.802, 85.4, 42.1, 47.0, "stencil", _stencil),
    _entry("nlpkkt120", 3.542, 96.8, 75.7, 77.2, "diag_random", _diagrand),
    _entry("delaunay_n24", 16.777, 100.6, 5.8, 22.7, "random", _random),
    _entry("ML_Geer", 1.504, 110.9, 117.8, 120.5, "banded", _band(0.01)),
)


def table1_entry(name: str) -> Table1Entry:
    """Look up a Table-1 row by matrix name."""
    for entry in TABLE1:
        if entry.name == name:
            return entry
    raise KeyError(f"no Table-1 entry named {name!r}")
