"""The synthetic evaluation collection.

The paper selects 490 square, non-complex SuiteSparse matrices with 1 M to
1 B nonzeros; under 48 threads their working sets range from "fits the
aggregate L2" (class 1) to "x alone exceeds a cache partition" (class 3b).
Offline, an equivalent collection is generated: deterministic synthetic
matrices *stratified by class* so the evaluation spans the same
working-set/cache ratios on the scaled machine, with the SuiteSparse-like
spread of nonzeros per row (mu_K) and row-length variation (CV_K).

Matrices are described by lightweight :class:`MatrixSpec` objects and
materialised on demand, so sweeps never hold the whole collection in
memory.  Three sizes ship: ``full`` (490, the headline sweep), ``small``
(48, the benchmark default), ``tiny`` (12, test-suite scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..machine.a64fx import A64FX, scaled_machine
from ..spmv.csr import CSRMatrix
from . import generators as gen

#: Class strata and their shares of the collection: a mix that, like the
#: paper's Fig. 4, is dominated by classes (1) and (2) with a class-(3) tail.
_CLASS_SHARES: tuple[tuple[str, float], ...] = (
    ("1", 0.20),
    ("2", 0.40),
    ("3a", 0.25),
    ("3b", 0.15),
)

#: Generator families eligible per class (stencils have fixed nnz/row, so
#: their dimensions cannot always be steered into a target class).
_FAMILIES: tuple[str, ...] = (
    "banded",
    "block_diagonal",
    "stencil_2d",
    "stencil_3d",
    "random_uniform",
    "power_law",
    "rmat",
    "diagonal_plus_random",
)

_SIZES = {"full": 490, "small": 48, "tiny": 12}


@dataclass(frozen=True)
class MatrixSpec:
    """A named, lazily materialised matrix."""

    name: str
    family: str
    target_class: str
    build: Callable[[], CSRMatrix]

    def materialize(self) -> CSRMatrix:
        matrix = self.build()
        return CSRMatrix(
            matrix.num_rows,
            matrix.num_cols,
            matrix.rowptr,
            matrix.colidx,
            matrix.values,
            name=self.name,
        )


def _class_box(
    target: str, machine: A64FX, rng: np.random.Generator
) -> tuple[int, int]:
    """Sample (n, nnz) inside the target class's region.

    Per-CMG working set is ``~3*nnz + 12*n`` bytes (x replicated, the rest
    split over 4 CMGs); the reusable data is ``~12*n`` and x is ``8*n``.
    Boundaries are taken against one L2 segment and the 5-way partition.
    """
    seg = machine.l2.capacity_bytes
    n0_lines, _ = machine.l2.partition_lines(5)
    p0 = n0_lines * machine.line_size
    n_reusable = p0 // 12  # above this, x+y+rowptr exceed partition 0
    n_xfit = p0 // 8  # above this, x itself exceeds partition 0

    def log_uniform(lo: float, hi: float) -> int:
        return int(np.exp(rng.uniform(np.log(lo), np.log(hi))))

    if target == "1":
        # sized 75-105 % of one segment per CMG: like the paper's class-1
        # matrices, they hug the capacity boundary, so baselines still show
        # real traffic (partial retention) rather than a silent cache
        n = log_uniform(1_000, max(2_000, n_reusable // 2))
        hi = max(40_000, int((1.05 * seg - 12 * n) / 3))
        nnz = log_uniform(max(20_000, int((0.75 * seg - 12 * n) / 3)), hi)
    elif target == "2":
        # the paper's class-2 population: moderate rows-to-nonzeros ratio so
        # the retained vectors (x, y, rowptr) are a visible share of traffic
        npr = log_uniform(8, 45)
        n = log_uniform(max(2_000, n_reusable // 3), max(4_000, int(n_reusable * 0.98)))
        nnz = min(n * npr, 450_000)
        lo = max(90_000, int(1.35 * (seg - 12 * n) / 3))
        nnz = max(nnz, lo)
    elif target == "3a":
        n = log_uniform(int(n_reusable * 1.1), int(n_xfit * 0.95))
        nnz = log_uniform(120_000, 300_000)
    elif target == "3b":
        # x well beyond a partition so the x miss curve is flat there, like
        # the paper's multi-million-column meshes
        n = log_uniform(int(n_xfit * 2.5), n_xfit * 6)
        nnz = log_uniform(max(220_000, 5 * n // 2), max(240_000, 5 * n // 2) + 260_000)
    else:  # pragma: no cover - internal
        raise ValueError(f"unknown class {target!r}")
    return n, nnz


def _spec_for(
    index: int,
    target_class: str,
    machine: A64FX,
    rng: np.random.Generator,
    max_nnz: int | None = None,
) -> MatrixSpec:
    seed = int(rng.integers(0, 2**31))
    n, nnz = _class_box(target_class, machine, rng)
    if max_nnz is not None and nnz > max_nnz:
        nnz = max_nnz
        n = min(n, max(64, nnz // 3))
    # duplicate coordinates collapse during assembly; aim ~20% above target
    # so the realised nonzero count lands in the intended class stratum
    npr = max(1, round(nnz * 1.2) // n)
    # families that can realise this nnz/row ratio.  Classes (2)/(3a) lean
    # toward structures with scattered x accesses (band + random fill),
    # which is where the sector cache converts demand misses into hits —
    # the paper's speedup population; class (1) and the rest stay
    # stream-dominated like the bulk of SuiteSparse.
    if target_class in ("2", "3a"):
        candidates = ["diagonal_plus_random", "diagonal_plus_random", "banded"]
        if npr >= 16:
            candidates += ["block_diagonal", "power_law"]
        elif npr >= 6:
            candidates += ["stencil_2d", "stencil_3d", "power_law", "random_uniform"]
        else:
            candidates += ["stencil_2d", "power_law", "rmat"]
    elif npr >= 16:
        candidates = ["banded", "banded", "block_diagonal", "power_law", "diagonal_plus_random"]
        if npr in range(20, 32):
            candidates.append("stencil_3d")
    elif npr >= 6:
        candidates = [
            "banded", "banded", "stencil_2d", "stencil_3d",
            "random_uniform", "power_law", "rmat", "diagonal_plus_random",
        ]
    else:
        candidates = [
            "stencil_2d", "diagonal_plus_random", "diagonal_plus_random",
            "random_uniform", "power_law", "rmat",
        ]
    family = str(rng.choice(candidates))

    if family == "banded":
        # wide bands for the speedup classes: x reuse spans a window that a
        # partition can retain but a polluted cache cannot
        lo_frac, hi_frac = (0.05, 0.35) if target_class in ("2", "3a") else (0.002, 0.08)
        bw = max(npr, int(n * rng.uniform(lo_frac, hi_frac)))
        build = lambda: gen.banded(n, bw, npr, seed=seed)
    elif family == "block_diagonal":
        block = max(4, npr)
        rows = max(block, (n // block) * block)
        build = lambda: gen.block_diagonal(rows, block, 1.0, seed=seed)
    elif family == "stencil_2d":
        points = 5 if npr <= 6 else 9
        side = max(16, int(round(np.sqrt(n))))
        build = lambda: gen.stencil_2d(side, side, points)
    elif family == "stencil_3d":
        points = 7 if npr <= 15 else 27
        side = max(8, int(round(n ** (1.0 / 3.0))))
        build = lambda: gen.stencil_3d(side, side, side, points)
    elif family == "random_uniform":
        build = lambda: gen.random_uniform(n, npr, seed=seed)
    elif family == "power_law":
        exponent = float(rng.uniform(1.6, 2.6))
        build = lambda: gen.power_law(n, float(npr), exponent, seed=seed)
    elif family == "rmat":
        scale = max(8, int(round(np.log2(n))))
        ef = max(1, nnz // (1 << scale))
        build = lambda: gen.rmat(scale, ef, seed=seed)
    else:  # diagonal_plus_random
        rand_part = max(1, npr // 3)
        build = lambda: gen.diagonal_plus_random(n, npr - rand_part, rand_part, seed=seed)
    return MatrixSpec(
        name=f"{family}_{index:03d}", family=family, target_class=target_class, build=build
    )


def collection(
    size: str = "small",
    seed: int = 20231112,
    machine: A64FX | None = None,
    max_nnz: int | None = None,
) -> list[MatrixSpec]:
    """The deterministic synthetic collection of the given size.

    The default seed is fixed so every run, bench and document refers to
    the same matrices.  ``machine`` defaults to the scale-16 A64FX and
    anchors the class boundaries.
    """
    if size not in _SIZES:
        raise ValueError(f"size must be one of {sorted(_SIZES)}, got {size!r}")
    machine = machine or scaled_machine(16)
    count = _SIZES[size]
    if size == "tiny" and max_nnz is None:
        max_nnz = 30_000
    if size == "small" and max_nnz is None:
        max_nnz = 320_000
    rng = np.random.default_rng(seed)
    shares = np.array([s for _, s in _CLASS_SHARES])
    classes = [c for c, _ in _CLASS_SHARES]
    targets = rng.choice(classes, size=count, p=shares / shares.sum())
    return [
        _spec_for(i, str(target), machine, rng, max_nnz=max_nnz)
        for i, target in enumerate(targets)
    ]


def iter_matrices(specs: list[MatrixSpec]) -> Iterator[CSRMatrix]:
    """Materialise specs one at a time (bounded memory)."""
    for spec in specs:
        yield spec.materialize()
