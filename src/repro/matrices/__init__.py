"""Matrix substrate: generators, collections, reordering, stats, I/O."""

from .collection import MatrixSpec, collection, iter_matrices
from .generators import (
    banded,
    block_diagonal,
    diagonal_plus_random,
    power_law,
    random_uniform,
    rmat,
    stencil_2d,
    stencil_3d,
)
from .mmio import read_matrix_market, write_matrix_market
from .rcm import rcm_permutation, rcm_reorder
from .stats import MatrixStats, matrix_stats, meets_method_b_regularity
from .table1 import TABLE1, Table1Entry, table1_entry

__all__ = [
    "MatrixSpec",
    "MatrixStats",
    "TABLE1",
    "Table1Entry",
    "banded",
    "block_diagonal",
    "collection",
    "diagonal_plus_random",
    "iter_matrices",
    "matrix_stats",
    "meets_method_b_regularity",
    "power_law",
    "random_uniform",
    "rcm_permutation",
    "rcm_reorder",
    "read_matrix_market",
    "stencil_2d",
    "stencil_3d",
    "table1_entry",
    "write_matrix_market",
]
