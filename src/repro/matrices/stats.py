"""Structural statistics of sparse matrices used throughout the paper.

Section 4.5 conditions model accuracy on the mean (mu_K) and coefficient of
variation (CV_K) of nonzeros per row; locality discussions use the matrix
bandwidth and profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spmv.csr import CSRMatrix


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of a sparsity pattern."""

    num_rows: int
    num_cols: int
    nnz: int
    mean_nnz_per_row: float
    cv_nnz_per_row: float
    max_nnz_per_row: int
    bandwidth: int
    avg_column_distance: float
    working_set_bytes: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_rows}x{self.num_cols}, K={self.nnz}, "
            f"mu_K={self.mean_nnz_per_row:.2f}, CV_K={self.cv_nnz_per_row:.2f}, "
            f"bw={self.bandwidth}"
        )


def matrix_stats(matrix: CSRMatrix) -> MatrixStats:
    """Compute the summary statistics of a matrix."""
    lengths = matrix.row_lengths.astype(np.float64)
    mean = float(lengths.mean()) if matrix.num_rows else 0.0
    std = float(lengths.std()) if matrix.num_rows else 0.0
    cv = std / mean if mean > 0 else 0.0
    if matrix.nnz:
        rows = np.repeat(np.arange(matrix.num_rows, dtype=np.int64), matrix.row_lengths)
        dist = np.abs(matrix.colidx.astype(np.int64) - rows)
        bandwidth = int(dist.max())
        avg_dist = float(dist.mean())
    else:
        bandwidth = 0
        avg_dist = 0.0
    return MatrixStats(
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        nnz=matrix.nnz,
        mean_nnz_per_row=mean,
        cv_nnz_per_row=cv,
        max_nnz_per_row=int(lengths.max()) if matrix.num_rows else 0,
        bandwidth=bandwidth,
        avg_column_distance=avg_dist,
        working_set_bytes=matrix.total_bytes,
    )


def meets_method_b_regularity(stats: MatrixStats) -> bool:
    """The paper's Section 4.5.2 filter: ``mu_K >= 8`` and ``CV_K <= 1``.

    Matrices passing this filter are the ones for which method (B)'s
    average scaling factor is representative.
    """
    return stats.mean_nnz_per_row >= 8.0 and stats.cv_nnz_per_row <= 1.0
