"""Synthetic sparse-matrix generators.

The paper evaluates on 490 SuiteSparse matrices spanning structural FEM
problems, circuit simulation, optimisation (KKT systems), graphs and
meshes.  Offline, those families are reproduced generatively; each
generator targets the structural property that matters for SpMV locality:

* bandwidth (how far column indices stray from the diagonal),
* nonzeros per row (mean and coefficient of variation),
* block structure (dense sub-blocks → spatial locality in x),
* randomness (long reuse distances for x).

All generators are deterministic given a seed and return
:class:`repro.spmv.csr.CSRMatrix`.
"""

from __future__ import annotations

import numpy as np

from ..spmv.csr import CSRMatrix


def banded(
    n: int, bandwidth: int, nnz_per_row: int, seed: int = 0, name: str = ""
) -> CSRMatrix:
    """Band matrix: nonzeros uniform in ``[i - bandwidth, i + bandwidth]``.

    Models FEM stiffness matrices after a good ordering (pwtk, af_shell):
    excellent x locality once the band fits in cache.
    """
    _check(n > 0, "n must be positive")
    _check(bandwidth >= 0, "bandwidth must be non-negative")
    _check(nnz_per_row > 0, "nnz_per_row must be positive")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
    offsets = rng.integers(-bandwidth, bandwidth + 1, rows.shape[0])
    cols = np.clip(rows + offsets, 0, n - 1)
    return CSRMatrix.from_coo(n, n, rows, cols, name=name or f"banded_n{n}_b{bandwidth}")


def block_diagonal(
    n: int, block_size: int, fill: float = 1.0, seed: int = 0, name: str = ""
) -> CSRMatrix:
    """Dense (or nearly dense) blocks along the diagonal.

    Models matrices assembled from dense element blocks (pdb1HYS,
    shipsec1): very high nonzeros per row and near-perfect x reuse inside
    a block.
    """
    _check(n > 0 and block_size > 0, "n and block_size must be positive")
    _check(0.0 < fill <= 1.0, "fill must be in (0, 1]")
    rng = np.random.default_rng(seed)
    num_blocks = -(-n // block_size)
    rows_parts, cols_parts = [], []
    for b in range(num_blocks):
        lo = b * block_size
        hi = min(lo + block_size, n)
        size = hi - lo
        r, c = np.meshgrid(np.arange(lo, hi), np.arange(lo, hi), indexing="ij")
        r, c = r.ravel(), c.ravel()
        if fill < 1.0:
            keep = rng.random(r.shape[0]) < fill
            keep |= r == c  # keep the diagonal so no row is empty
            r, c = r[keep], c[keep]
        rows_parts.append(r)
        cols_parts.append(c)
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return CSRMatrix.from_coo(
        n, n, rows, cols, name=name or f"blockdiag_n{n}_b{block_size}"
    )


def stencil_2d(nx: int, ny: int, points: int = 5, name: str = "") -> CSRMatrix:
    """2-D structured-grid stencil (5- or 9-point) on an nx-by-ny grid.

    Models discretised PDEs (G3_circuit-like regularity): bandwidth ~ nx,
    exactly repeating access pattern.
    """
    _check(nx > 0 and ny > 0, "grid dimensions must be positive")
    if points == 5:
        offsets = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
    elif points == 9:
        offsets = [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1)]
    else:
        raise ValueError("points must be 5 or 9")
    return _stencil_grid((nx, ny), offsets, name or f"stencil{points}_{nx}x{ny}")


def stencil_3d(nx: int, ny: int, nz: int, points: int = 7, name: str = "") -> CSRMatrix:
    """3-D structured-grid stencil (7- or 27-point)."""
    _check(nx > 0 and ny > 0 and nz > 0, "grid dimensions must be positive")
    if points == 7:
        offsets = [(0, 0, 0), (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)]
    elif points == 27:
        offsets = [
            (di, dj, dk)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            for dk in (-1, 0, 1)
        ]
    else:
        raise ValueError("points must be 7 or 27")
    return _stencil_grid((nx, ny, nz), offsets, name or f"stencil{points}_{nx}x{ny}x{nz}")


def _stencil_grid(dims: tuple[int, ...], offsets: list[tuple[int, ...]], name: str) -> CSRMatrix:
    n = int(np.prod(dims))
    coords = np.unravel_index(np.arange(n, dtype=np.int64), dims)
    rows_parts, cols_parts = [], []
    for off in offsets:
        shifted = [c + o for c, o in zip(coords, off)]
        valid = np.ones(n, dtype=bool)
        for s, d in zip(shifted, dims):
            valid &= (s >= 0) & (s < d)
        col = np.ravel_multi_index([s[valid] for s in shifted], dims)
        rows_parts.append(np.arange(n, dtype=np.int64)[valid])
        cols_parts.append(col)
    return CSRMatrix.from_coo(
        n, n, np.concatenate(rows_parts), np.concatenate(cols_parts), name=name
    )


def random_uniform(
    n: int, nnz_per_row: int, seed: int = 0, num_cols: int | None = None, name: str = ""
) -> CSRMatrix:
    """Uniform random columns: the worst case for x locality.

    Models low-locality meshes and graphs (delaunay_n24-like behaviour):
    every x access is effectively a random cache line.
    """
    _check(n > 0 and nnz_per_row > 0, "n and nnz_per_row must be positive")
    num_cols = n if num_cols is None else num_cols
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n, dtype=np.int64), nnz_per_row)
    cols = rng.integers(0, num_cols, rows.shape[0])
    return CSRMatrix.from_coo(n, num_cols, rows, cols, name=name or f"random_n{n}_k{nnz_per_row}")


def power_law(
    n: int,
    avg_nnz_per_row: float,
    exponent: float = 2.0,
    seed: int = 0,
    name: str = "",
) -> CSRMatrix:
    """Power-law row lengths with random columns (circuit/graph matrices).

    Models Hamrle3/kkt_power-like skew: few very dense rows, many sparse
    ones — high coefficient of variation of nonzeros per row, the regime
    where the paper expects method (B) to lose accuracy.
    """
    _check(n > 0 and avg_nnz_per_row > 0, "n and avg_nnz_per_row must be positive")
    _check(exponent > 1.0, "exponent must exceed 1")
    rng = np.random.default_rng(seed)
    raw = rng.pareto(exponent - 1.0, n) + 1.0
    lengths = np.maximum(1, np.round(raw * avg_nnz_per_row / raw.mean()).astype(np.int64))
    lengths = np.minimum(lengths, n)
    rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
    cols = rng.integers(0, n, rows.shape[0])
    return CSRMatrix.from_coo(n, n, rows, cols, name=name or f"powerlaw_n{n}")


def rmat(
    scale: int,
    edge_factor: int = 8,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: int = 0,
    name: str = "",
) -> CSRMatrix:
    """Recursive-matrix (R-MAT/Kronecker) graph generator.

    Models social/web graph adjacency matrices: power-law degrees plus
    community block structure, 2**scale vertices.
    """
    _check(0 < scale < 31, "scale must be in (0, 31)")
    _check(edge_factor > 0, "edge_factor must be positive")
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("probabilities must sum to 1")
    n = 1 << scale
    num_edges = n * edge_factor
    rng = np.random.default_rng(seed)
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        quad_b = (r >= a) & (r < a + b)
        quad_c = (r >= a + b) & (r < a + b + c)
        quad_d = r >= a + b + c
        rows = 2 * rows + (quad_c | quad_d)
        cols = 2 * cols + (quad_b | quad_d)
    # make every row non-empty by adding the diagonal
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return CSRMatrix.from_coo(n, n, rows, cols, name=name or f"rmat_s{scale}")


def diagonal_plus_random(
    n: int,
    band_nnz: int,
    random_nnz: int,
    bandwidth: int | None = None,
    seed: int = 0,
    name: str = "",
) -> CSRMatrix:
    """Narrow band plus uniform random fill (optimisation/KKT-like).

    Mixes a local, cache-friendly component with scattered long-range
    entries — the combination where sector-cache benefit peaks.
    """
    _check(n > 0 and band_nnz >= 0 and random_nnz >= 0, "sizes must be non-negative")
    _check(band_nnz + random_nnz > 0, "matrix would be empty")
    rng = np.random.default_rng(seed)
    bandwidth = max(1, n // 1000) if bandwidth is None else bandwidth
    parts_r, parts_c = [], []
    if band_nnz:
        r = np.repeat(np.arange(n, dtype=np.int64), band_nnz)
        c = np.clip(r + rng.integers(-bandwidth, bandwidth + 1, r.shape[0]), 0, n - 1)
        parts_r.append(r)
        parts_c.append(c)
    if random_nnz:
        r = np.repeat(np.arange(n, dtype=np.int64), random_nnz)
        parts_r.append(r)
        parts_c.append(rng.integers(0, n, r.shape[0]))
    return CSRMatrix.from_coo(
        n, n, np.concatenate(parts_r), np.concatenate(parts_c),
        name=name or f"diagrand_n{n}",
    )


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)
