"""Plain-text table/series rendering for experiment output.

Every experiment driver prints the rows or series the corresponding paper
table/figure reports, via these helpers, so outputs are diffable and
consistently formatted.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left: int = 1,
) -> str:
    """Render an aligned text table; the first ``align_left`` columns are
    left-justified (labels), the rest right-justified (numbers)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts: Sequence[str]) -> str:
        out = []
        for i, part in enumerate(parts):
            out.append(part.ljust(widths[i]) if i < align_left else part.rjust(widths[i]))
        return "  ".join(out)

    body = [line(headers), "  ".join("-" * w for w in widths)]
    body += [line(r) for r in cells]
    if title:
        body.insert(0, title)
    return "\n".join(body)


def render_series(
    name: str, points: Sequence[tuple[object, object]], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as aligned text (one figure series)."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>14}  {_fmt(y):>12}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
