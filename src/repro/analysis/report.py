"""Plain-text and JSON rendering for experiment output.

Every experiment driver prints the rows or series the corresponding paper
table/figure reports, via these helpers, so outputs are diffable and
consistently formatted.  :func:`canonical_json` is the shared machine
format: model objects exposing ``to_dict()`` (:class:`~repro.core.advisor.Recommendation`,
:class:`~repro.experiments.common.MatrixRecord`, ...) serialize to the same
bytes whether emitted by a report or by the advisor service
(:mod:`repro.service`).
"""

from __future__ import annotations

import json
from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left: int = 1,
) -> str:
    """Render an aligned text table; the first ``align_left`` columns are
    left-justified (labels), the rest right-justified (numbers)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts: Sequence[str]) -> str:
        out = []
        for i, part in enumerate(parts):
            out.append(part.ljust(widths[i]) if i < align_left else part.rjust(widths[i]))
        return "  ".join(out)

    body = [line(headers), "  ".join("-" * w for w in widths)]
    body += [line(r) for r in cells]
    if title:
        body.insert(0, title)
    return "\n".join(body)


def render_series(
    name: str, points: Sequence[tuple[object, object]], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as aligned text (one figure series)."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>14}  {_fmt(y):>12}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def jsonable(value: object) -> object:
    """Recursively convert model objects to plain JSON-compatible values.

    Objects with a ``to_dict()`` method serialize through it; NumPy
    scalars (anything with ``.item()``) collapse to native Python numbers
    so the output is independent of the producing dtype.
    """
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return jsonable(to_dict())
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"cannot serialize {type(value).__name__} to JSON")


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, compact separators.

    Two equal payloads always produce identical bytes, which is what the
    service's response cache, its coalescing tests, and diffable reports
    all rely on.
    """
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def render_json(value: object) -> str:
    """Human-oriented JSON report (sorted keys, indented)."""
    return json.dumps(jsonable(value), sort_keys=True, indent=2)
