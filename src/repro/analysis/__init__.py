"""Evaluation utilities: error stats, boxplot summaries, curves, rendering."""

from .boxstats import BoxStats, box_stats, render_box_table
from .curves import MissRatioCurve, miss_ratio_curve, partition_efficiency
from .mape import ErrorStats, absolute_percentage_errors, error_stats
from .report import canonical_json, jsonable, render_json, render_series, render_table

__all__ = [
    "BoxStats",
    "ErrorStats",
    "MissRatioCurve",
    "absolute_percentage_errors",
    "box_stats",
    "canonical_json",
    "error_stats",
    "jsonable",
    "miss_ratio_curve",
    "partition_efficiency",
    "render_box_table",
    "render_json",
    "render_series",
    "render_table",
]
