"""Evaluation utilities: error stats, boxplot summaries, curves, rendering."""

from .boxstats import BoxStats, box_stats, render_box_table
from .curves import MissRatioCurve, miss_ratio_curve, partition_efficiency
from .mape import ErrorStats, absolute_percentage_errors, error_stats
from .report import render_series, render_table

__all__ = [
    "BoxStats",
    "ErrorStats",
    "MissRatioCurve",
    "absolute_percentage_errors",
    "box_stats",
    "error_stats",
    "miss_ratio_curve",
    "partition_efficiency",
    "render_box_table",
    "render_series",
    "render_table",
]
