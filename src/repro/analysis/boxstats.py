"""Boxplot summary statistics and ASCII rendering.

Figures 2 and 3 of the paper are boxplot distributions over the matrix
collection (quartiles, medians, 1.5-IQR whiskers, outliers).  The harness
prints the same five-number summaries as aligned text so the figures can
be compared series-by-series without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus outliers (Tukey 1.5-IQR fences)."""

    median: float
    q1: float
    q3: float
    whisker_lo: float
    whisker_hi: float
    outliers: tuple[float, ...]
    count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"median={self.median:+.2f} IQR=[{self.q1:+.2f}, {self.q3:+.2f}] "
            f"whiskers=[{self.whisker_lo:+.2f}, {self.whisker_hi:+.2f}] "
            f"outliers={len(self.outliers)}"
        )


def box_stats(values: np.ndarray) -> BoxStats:
    """Tukey boxplot statistics of a sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q1, median, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = values[(values >= lo_fence) & (values <= hi_fence)]
    outliers = tuple(float(v) for v in np.sort(values[(values < lo_fence) | (values > hi_fence)]))
    return BoxStats(
        median=float(median),
        q1=float(q1),
        q3=float(q3),
        whisker_lo=float(inside.min()),
        whisker_hi=float(inside.max()),
        outliers=outliers,
        count=int(values.size),
    )


def render_box_table(rows: list[tuple[str, BoxStats]], value_label: str) -> str:
    """Aligned text table of labelled boxplot summaries."""
    header = (
        f"{'configuration':<24} {'median':>8} {'q1':>8} {'q3':>8} "
        f"{'lo':>8} {'hi':>8} {'outl':>5}   ({value_label})"
    )
    lines = [header, "-" * len(header)]
    for label, stats in rows:
        lines.append(
            f"{label:<24} {stats.median:>8.2f} {stats.q1:>8.2f} {stats.q3:>8.2f} "
            f"{stats.whisker_lo:>8.2f} {stats.whisker_hi:>8.2f} {len(stats.outliers):>5d}"
        )
    return "\n".join(lines)
