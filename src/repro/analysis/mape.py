"""Prediction-error statistics (Eq. 3 of the paper).

MAPE = (100/N) * sum(|measured_i - predicted_i| / measured_i); the paper
reports it with the standard deviation of the absolute percentage error
(Tables 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """MAPE and APE standard deviation over a set of matrices."""

    mape: float
    std: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mape:.2f} % +- {self.std:.2f} % (n={self.count})"


def absolute_percentage_errors(
    measured: np.ndarray, predicted: np.ndarray
) -> np.ndarray:
    """Per-sample |x - xhat| / x * 100.  Measured zeros are rejected.

    The paper excludes matrices whose miss counts are dominated by noise
    (i.e. near zero) before aggregating; callers filter first.
    """
    measured = np.asarray(measured, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if measured.shape != predicted.shape:
        raise ValueError("measured and predicted must be aligned")
    if np.any(measured == 0):
        raise ValueError("measured values must be nonzero for percentage errors")
    return np.abs(measured - predicted) / np.abs(measured) * 100.0


def error_stats(measured: np.ndarray, predicted: np.ndarray) -> ErrorStats:
    """MAPE and APE std over aligned measurement/prediction arrays."""
    ape = absolute_percentage_errors(measured, predicted)
    if ape.size == 0:
        return ErrorStats(mape=0.0, std=0.0, count=0)
    return ErrorStats(mape=float(ape.mean()), std=float(ape.std()), count=int(ape.size))
