"""Miss-ratio curves and working-set analysis.

Reuse-distance profiles answer miss counts for *every* capacity at once
(paper Section 2.2); this module turns that into the standard artefacts of
cache studies: miss-ratio curves, working-set knees (capacities where the
marginal benefit of more cache collapses), and a text sparkline renderer
so curves print alongside the tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reuse.histogram import ReuseProfile

_SPARK = " .:-=+*#%@"


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio as a function of cache capacity (in lines)."""

    capacities: np.ndarray
    miss_ratios: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "capacities", np.ascontiguousarray(self.capacities, dtype=np.int64)
        )
        object.__setattr__(
            self, "miss_ratios", np.ascontiguousarray(self.miss_ratios, dtype=np.float64)
        )
        if self.capacities.shape != self.miss_ratios.shape:
            raise ValueError("capacities and miss_ratios must be aligned")
        if np.any(np.diff(self.capacities) <= 0):
            raise ValueError("capacities must be strictly increasing")

    def ratio_at(self, capacity: int) -> float:
        """Miss ratio at an arbitrary capacity (step interpolation)."""
        idx = int(np.searchsorted(self.capacities, capacity, side="right")) - 1
        if idx < 0:
            return 1.0
        return float(self.miss_ratios[idx])

    def knees(self, drop_threshold: float = 0.05) -> list[int]:
        """Capacities where the miss ratio falls by >= ``drop_threshold``.

        These are the working-set sizes: giving the data less cache than a
        knee is wasteful, giving it more is pointless — the quantity a
        sector-cache (or any partitioning) tuner needs.
        """
        if drop_threshold <= 0:
            raise ValueError("drop_threshold must be positive")
        drops = self.miss_ratios[:-1] - self.miss_ratios[1:]
        return [int(c) for c in self.capacities[1:][drops >= drop_threshold]]

    def sparkline(self, width: int = 64) -> str:
        """Render the curve as a one-line text sparkline (high = misses)."""
        if width <= 0:
            raise ValueError("width must be positive")
        idx = np.linspace(0, self.miss_ratios.shape[0] - 1, width).round().astype(int)
        sampled = self.miss_ratios[idx]
        chars = (sampled * (len(_SPARK) - 1)).round().astype(int)
        return "".join(_SPARK[c] for c in chars)


def miss_ratio_curve(
    profile: ReuseProfile,
    max_capacity: int,
    num_points: int = 128,
    log_spaced: bool = True,
) -> MissRatioCurve:
    """Evaluate a reuse profile into a miss-ratio curve up to a capacity."""
    if max_capacity <= 0:
        raise ValueError("max_capacity must be positive")
    if num_points <= 1:
        raise ValueError("num_points must exceed 1")
    if log_spaced:
        capacities = np.unique(
            np.geomspace(1, max_capacity, num_points).round().astype(np.int64)
        )
    else:
        capacities = np.unique(
            np.linspace(1, max_capacity, num_points).round().astype(np.int64)
        )
    total = max(profile.num_accesses, 1)
    ratios = profile.miss_curve(capacities) / total
    return MissRatioCurve(capacities=capacities, miss_ratios=ratios)


def partition_efficiency(
    curve0: MissRatioCurve,
    curve1: MissRatioCurve,
    total_lines: int,
    sector1_fractions: np.ndarray,
) -> np.ndarray:
    """Combined miss ratio for a range of way splits of two partitions.

    ``curve0``/``curve1`` are the miss-ratio curves of the data assigned to
    sector 0 / sector 1 (weighted by their access counts being equal is not
    assumed — the caller applies weights).  Returns one combined ratio per
    requested sector-1 fraction, the continuous generalisation of Eq. (2).
    """
    fractions = np.asarray(sector1_fractions, dtype=np.float64)
    if np.any((fractions < 0) | (fractions > 1)):
        raise ValueError("fractions must lie in [0, 1]")
    out = np.empty(fractions.shape[0], dtype=np.float64)
    for i, f in enumerate(fractions):
        n1 = int(round(total_lines * float(f)))
        n0 = total_lines - n1
        out[i] = curve0.ratio_at(n0) + curve1.ratio_at(n1)
    return out
