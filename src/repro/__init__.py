"""repro: reuse-distance cache-miss modelling of CSR SpMV with the A64FX
sector cache, plus the simulated memory-hierarchy testbed used to evaluate
it (reproduction of Breiter, Trotter & Fuerlinger, SC-W 2023).

Public API highlights
---------------------
* :class:`repro.spmv.CSRMatrix` and the SpMV kernels,
* :class:`repro.core.CacheMissModel` — the paper's model (methods A and B),
* :class:`repro.cachesim.SpMVCacheSim` — the simulated A64FX testbed,
* :class:`repro.machine.A64FX` / :func:`repro.machine.scaled_machine`,
* :mod:`repro.matrices` — generators and the synthetic collection,
* :mod:`repro.experiments` — drivers for every table and figure.
"""

from .cachesim import CacheEvents, SimConfig, SpMVCacheSim
from .core import CacheMissModel, MatrixClass, MethodA, MethodB, classify
from .machine import A64FX, full_machine, scaled_machine
from .machine.perfmodel import PerformanceEstimate, PerformanceModel
from .matrices import collection, iter_matrices, matrix_stats
from .spmv import (
    CSRMatrix,
    SectorPolicy,
    listing1_policy,
    no_sector_cache,
    spmv,
    spmv_reference,
)

__version__ = "1.0.0"

__all__ = [
    "A64FX",
    "CSRMatrix",
    "CacheEvents",
    "CacheMissModel",
    "MatrixClass",
    "MethodA",
    "MethodB",
    "PerformanceEstimate",
    "PerformanceModel",
    "SectorPolicy",
    "SimConfig",
    "SpMVCacheSim",
    "classify",
    "collection",
    "full_machine",
    "iter_matrices",
    "listing1_policy",
    "matrix_stats",
    "no_sector_cache",
    "scaled_machine",
    "spmv",
    "spmv_reference",
]
