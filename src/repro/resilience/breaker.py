"""A per-endpoint circuit breaker (closed / open / half-open).

The daemon keeps one breaker per model endpoint in front of the process
pool.  Semantics:

* **closed** — evaluations flow; ``failure_threshold`` *consecutive*
  server-side failures (worker crash, timeout, 5xx) trip it open.
  Client errors (bad requests) never count.
* **open** — :meth:`allow` refuses for ``recovery_seconds``; the daemon
  answers from the degraded path (or sheds load) without touching the
  pool, which is what lets a crashing worker set heal instead of being
  hammered.
* **half-open** — after the recovery window, up to
  ``half_open_max_probes`` trial evaluations are let through; one
  success closes the breaker, one failure re-opens it (and restarts the
  recovery clock).

The clock is injected so state transitions are deterministic under test;
every transition is counted (``closed->open``, ``open->half_open``,
``half_open->closed``, ``half_open->open``) and exported via
``/metrics`` and the Prometheus exposition.

Single-owner by design: the daemon drives each breaker from the asyncio
event loop, so there is no internal locking (same stance as
:class:`repro.obs.Tracer`).
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the state for the Prometheus exposition.
STATE_VALUES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with counted transitions."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if recovery_seconds <= 0:
            raise ValueError("recovery_seconds must be positive")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_max_probes = half_open_max_probes
        self._clock = clock
        #: observer of every state change (old, new) — the daemon hangs
        #: its structured event log here; exceptions are not tolerated
        #: (the callback runs inside the breaker's state machine)
        self.on_transition = on_transition
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.rejections = 0
        self.transitions: dict[str, int] = {}

    # -- state ---------------------------------------------------------
    def _transition(self, state: str) -> None:
        previous = self._state
        key = f"{previous}->{state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self._state = state
        if self.on_transition is not None:
            self.on_transition(previous, state)
        if state == OPEN:
            self._opened_at = self._clock()
        if state == HALF_OPEN:
            self._probes_in_flight = 0
        if state == CLOSED:
            self.consecutive_failures = 0

    @property
    def state(self) -> str:
        """The current state; lazily moves open -> half-open on expiry."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_seconds
        ):
            self._transition(HALF_OPEN)
        return self._state

    def allow(self) -> bool:
        """May one evaluation proceed right now?

        In half-open state an affirmative answer *claims* a probe slot;
        callers must follow up with :meth:`record_success` or
        :meth:`record_failure` for the state machine to advance.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._probes_in_flight < self.half_open_max_probes:
            self._probes_in_flight += 1
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self._state == HALF_OPEN:
            self._transition(OPEN)
        elif self._state == CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(OPEN)

    def retry_after_seconds(self) -> float:
        """Seconds until the recovery window reopens (0 when not open)."""
        if self.state != OPEN:
            return 0.0
        return max(
            0.0, self.recovery_seconds - (self._clock() - self._opened_at)
        )

    def snapshot(self) -> dict:
        """The ``/metrics`` view of this breaker."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "rejections": self.rejections,
            "transitions": dict(sorted(self.transitions.items())),
        }
