"""Degraded-mode answers from Method B's closed forms alone.

When the advisor daemon cannot reach its process pool — circuit breaker
open, pool saturated, or a ``saturate`` fault injected — it still owes
every request an answer.  The paper makes a cheap one available: all of
Section 3.1 (the streaming-miss line counts and the class taxonomy) and
the Section-3.2.2 scaling factors ``s1``/``s2`` are closed forms over
``(num_rows, num_cols, nnz)`` — no trace, no stack pass, microseconds of
arithmetic.  This module evaluates the miss model with the stack-pass
term replaced by its analytic envelope:

* the streamed arrays contribute exactly their line counts when they
  cannot be retained (identically to the full Method B);
* the ``x`` vector — whose misses Method B prices with a reuse-distance
  profile — is priced by the fit criterion instead: scaling distances by
  ``s`` against capacity ``C`` is the same comparison as unscaled
  distances against ``C/s``, so ``x`` is approximated as fully retained
  when ``s * x_lines <= C`` and fully streamed otherwise.

``classify`` answers are *exact* (the taxonomy is already closed-form);
``predict``/``advise`` answers are approximations — the response envelope
carries ``"degraded": true`` plus a reason, and the daemon never writes
them to the result cache.  ``sweep`` has no analytic surrogate (it
measures the simulator) and degrades to a structured 503 instead.

Everything here works on :class:`MatrixDims` — the three integers that
determine every byte count — so named collection matrices only pay one
materialization ever (dims are memoized) and inline matrices pay none.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.advisor import PolicyChoice, Recommendation
from ..core.analytic import StreamMisses, method_b_scale_factors, stream_misses
from ..core.classification import MatrixClass, classify
from ..cachesim.events import CacheEvents
from ..machine.a64fx import A64FX
from ..machine.perfmodel import PerformanceModel
from ..spmv.sector_policy import (
    SectorPolicy,
    isolate_x_policy,
    listing1_policy,
    no_sector_cache,
)

# Mirrors repro.spmv.csr element sizes (8-byte values/rowptr/vectors,
# 4-byte column indices); asserted against CSRMatrix in the tests.
_VALUE_BYTES = 8
_COLIDX_BYTES = 4
_ROWPTR_BYTES = 8
_VECTOR_BYTES = 8


@dataclass(frozen=True)
class MatrixDims:
    """The three integers every closed-form term depends on.

    Exposes the same ``*_bytes`` properties as
    :class:`~repro.spmv.csr.CSRMatrix`, so :func:`repro.core.classification.classify`
    and :func:`repro.core.analytic.stream_misses` accept it unchanged.
    """

    num_rows: int
    num_cols: int
    nnz: int

    def __post_init__(self) -> None:
        if self.num_rows < 0 or self.num_cols < 0 or self.nnz < 0:
            raise ValueError("matrix dimensions must be non-negative")

    @property
    def values_bytes(self) -> int:
        return _VALUE_BYTES * self.nnz

    @property
    def colidx_bytes(self) -> int:
        return _COLIDX_BYTES * self.nnz

    @property
    def rowptr_bytes(self) -> int:
        return _ROWPTR_BYTES * (self.num_rows + 1)

    @property
    def x_bytes(self) -> int:
        return _VECTOR_BYTES * self.num_cols

    @property
    def y_bytes(self) -> int:
        return _VECTOR_BYTES * self.num_rows

    @property
    def matrix_bytes(self) -> int:
        return self.values_bytes + self.colidx_bytes + self.rowptr_bytes

    @property
    def total_bytes(self) -> int:
        return self.matrix_bytes + self.x_bytes + self.y_bytes

    @classmethod
    def of(cls, matrix) -> "MatrixDims":
        """Dims of anything CSR-shaped (a :class:`CSRMatrix`, typically)."""
        return cls(int(matrix.num_rows), int(matrix.num_cols), int(matrix.nnz))


def _num_cmgs(machine: A64FX, num_threads: int) -> int:
    return -(-num_threads // machine.cores_per_cmg)


def _x_lines(dims: MatrixDims, line: int) -> int:
    return -(-dims.x_bytes // line)


def _x_misses(dims: MatrixDims, scale: float, capacity_lines: int, line: int) -> int:
    """Analytic surrogate of ``MethodB.x_misses``: all-or-nothing retention."""
    lines = _x_lines(dims, line)
    return 0 if lines * scale <= capacity_lines else lines


def predict_policy(
    dims: MatrixDims, machine: A64FX, num_threads: int, policy: SectorPolicy
) -> dict[str, int]:
    """Per-array L2 miss counts of one policy, stack pass replaced by fit tests.

    The branching mirrors :meth:`repro.core.method_b.MethodB.predict`
    term for term; only the x entry differs (fit criterion instead of the
    reuse profile query).
    """
    policy.validate(machine)
    streams = stream_misses(dims, machine.line_size)
    s1, s2 = method_b_scale_factors(dims)
    line = machine.line_size
    cmgs = _num_cmgs(machine, num_threads)
    per_array: dict[str, int] = {}
    if policy.l2_enabled:
        n0, n1 = machine.l2.partition_lines(policy.l2_sector1_ways)
        if streams.matrix_data // cmgs > n1:
            per_array["values"] = streams.values
            per_array["colidx"] = streams.colidx
        reusable = dims.x_bytes + (dims.y_bytes + dims.rowptr_bytes) // cmgs
        if reusable > n0 * line:
            per_array["rowptr"] = streams.rowptr
            per_array["y"] = streams.y
        per_array["x"] = _x_misses(dims, s1, n0, line)
    else:
        total = machine.l2.capacity_lines
        working = dims.x_bytes + (dims.total_bytes - dims.x_bytes) // cmgs
        if working > total * line:
            per_array["values"] = streams.values
            per_array["colidx"] = streams.colidx
            per_array["rowptr"] = streams.rowptr
            per_array["y"] = streams.y
            per_array["x"] = _x_misses(dims, s2, total, line)
        else:
            per_array["x"] = 0
    return {k: int(v) for k, v in per_array.items() if v}


def degraded_classify(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    way_options: list[int], name: str,
) -> dict:
    """The ``classify`` wire result — exact, the taxonomy is closed-form."""
    cmgs = _num_cmgs(machine, num_threads)
    return {
        "name": name,
        "num_cmgs": cmgs,
        "classes": {
            str(ways): classify(dims, machine, ways, cmgs).value
            for ways in way_options
        },
    }


def degraded_predict(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    policies: list[dict], name: str,
) -> dict:
    """The ``predict`` wire result with analytic x terms (same shape)."""
    predictions = []
    for entry in policies:
        policy = SectorPolicy.from_dict(entry)
        per_array = predict_policy(dims, machine, num_threads, policy)
        predictions.append({
            "policy": policy.to_dict(),
            "l2_misses": sum(per_array.values()),
            "per_array": per_array,
        })
    return {"name": name, "method": "B", "predictions": predictions}


def _choice(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    perf: PerformanceModel, policy: SectorPolicy,
) -> PolicyChoice:
    """Mirror of ``SectorAdvisor._choice`` over analytic miss counts."""
    streams = stream_misses(dims, machine.line_size)
    per_array = predict_policy(dims, machine, num_threads, policy)
    misses = sum(per_array.values())
    prefetchable = sum(
        per_array.get(a, 0) for a in ("values", "colidx", "rowptr", "y")
    )
    events = CacheEvents(
        l1_refill=streams.total + dims.nnz // 8,
        l2_refill=misses,
        l2_refill_demand=per_array.get("x", 0),
        l2_refill_prefetch=prefetchable,
        l2_writeback=streams.y if misses else 0,
    )
    est = perf.estimate_from_counts(dims.nnz, events, num_threads)
    return PolicyChoice(
        policy=policy, predicted_l2_misses=misses, predicted_seconds=est.seconds
    )


def _isolate_x_choice(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    perf: PerformanceModel, streams: StreamMisses, ways: int,
) -> PolicyChoice:
    n0, _ = machine.l2.partition_lines(ways)
    misses = streams.total + _x_misses(dims, 1.0, n0, machine.line_size)
    events = CacheEvents(
        l1_refill=streams.total + dims.nnz // 8,
        l2_refill=misses,
        l2_refill_demand=max(0, misses - streams.total),
        l2_refill_prefetch=min(misses, streams.total),
        l2_writeback=streams.y,
    )
    est = perf.estimate_from_counts(dims.nnz, events, num_threads)
    return PolicyChoice(
        policy=isolate_x_policy(ways),
        predicted_l2_misses=misses,
        predicted_seconds=est.seconds,
    )


def degraded_advise(
    dims: MatrixDims,
    machine: A64FX,
    num_threads: int,
    way_options: list[int],
    consider_isolate_x: bool = True,
    min_sector1_ways_with_prefetch: int = 4,
) -> dict:
    """An approximate ``advise`` wire result (``Recommendation`` shape).

    The candidate field, ranking rule and tie-break mirror
    :meth:`repro.core.advisor.SectorAdvisor.recommend`; only the miss
    counts feeding the performance model are the analytic surrogates.
    """
    if not way_options:
        raise ValueError("way_options must not be empty")
    perf = PerformanceModel(machine)
    streams = stream_misses(dims, machine.line_size)
    cls = classify(dims, machine, max(way_options), _num_cmgs(machine, num_threads))
    min_ways = min_sector1_ways_with_prefetch

    baseline = _choice(dims, machine, num_threads, perf, no_sector_cache())
    candidates = [baseline]
    for ways in way_options:
        if ways < min_ways:
            continue
        candidates.append(
            _choice(dims, machine, num_threads, perf, listing1_policy(ways))
        )
    if consider_isolate_x and cls in (MatrixClass.CLASS3A, MatrixClass.CLASS3B):
        for ways in way_options:
            if ways < min_ways:
                continue
            candidates.append(
                _isolate_x_choice(dims, machine, num_threads, perf, streams, ways)
            )
    best = min(
        candidates,
        key=lambda c: (c.predicted_seconds, c.policy.l2_sector1_ways),
    )
    return Recommendation(
        best=best,
        baseline=baseline,
        candidates=tuple(candidates),
        matrix_class=cls,
    ).to_dict()


# ----------------------------------------------------------------------
# canonical-task adapter (what the daemon calls)
# ----------------------------------------------------------------------

#: (collection, scale, name) -> MatrixDims; named specs are materialized
#: once ever to learn their dims, inline matrices never are.
_named_dims: dict[tuple[str, int, str], MatrixDims] = {}


def dims_from_task(task: dict, machine: A64FX) -> MatrixDims:
    """Dims of a canonical task's matrix without a pool evaluation."""
    spec = task["matrix"]
    if spec["kind"] == "csr":
        rowptr = spec["rowptr"]
        nnz = int(rowptr[-1]) if rowptr else 0
        return MatrixDims(spec["num_rows"], spec["num_cols"], nnz)
    if spec["kind"] == "coo":
        return MatrixDims(spec["num_rows"], spec["num_cols"], len(spec["rows"]))
    key = (spec["collection"], task["setup"]["scale"], spec["name"])
    dims = _named_dims.get(key)
    if dims is None:
        from ..matrices.collection import collection

        for candidate in collection(spec["collection"], machine=machine):
            if candidate.name == spec["name"]:
                dims = MatrixDims.of(candidate.materialize())
                break
        else:
            raise KeyError(f"matrix {spec['name']!r} not in the "
                           f"{spec['collection']!r} collection")
        _named_dims[key] = dims
    return dims


def answer_task(task: dict, machine: A64FX, name: str) -> dict | None:
    """The degraded wire result of a canonical task, or ``None``.

    ``None`` means the endpoint has no analytic surrogate (``sweep``);
    the daemon turns that into a structured 503.
    """
    endpoint = task["endpoint"]
    if endpoint == "sweep":
        return None
    dims = dims_from_task(task, machine)
    num_threads = task["setup"]["num_threads"]
    if endpoint == "classify":
        return degraded_classify(dims, machine, num_threads,
                                 task["way_options"], name)
    if endpoint == "predict":
        return degraded_predict(dims, machine, num_threads,
                                task["policies"], name)
    if endpoint == "advise":
        return degraded_advise(
            dims, machine, num_threads, task["way_options"],
            consider_isolate_x=task["consider_isolate_x"],
            min_sector1_ways_with_prefetch=task["min_sector1_ways_with_prefetch"],
        )
    raise ValueError(f"unknown endpoint {endpoint!r}")
