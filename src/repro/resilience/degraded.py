"""Degraded-mode answers from Method B's closed forms alone.

When the advisor daemon cannot reach its process pool — circuit breaker
open, pool saturated, or a ``saturate`` fault injected — it still owes
every request an answer.  The closed forms live in
:mod:`repro.ladder.tier0` (they are the fidelity ladder's tier 0); this
module is the resilience-facing surface over that one implementation, so
degraded answers and ladder tier-0 answers can never drift apart.

``classify`` answers are *exact* (the taxonomy is closed-form);
``predict``/``advise`` answers are approximations — the response envelope
carries ``"degraded": true`` plus a reason, and the daemon never writes
them to the result cache.  ``sweep`` has no analytic surrogate (it
measures the simulator) and degrades to a structured 503 instead.
"""

from __future__ import annotations

from ..ladder.tier0 import (
    MatrixDims,
    answer_task,
    closed_classify as degraded_classify,
    closed_predict as degraded_predict,
    dims_from_task,
    predict_policy,
)
from ..ladder.tier0 import closed_advise as _closed_advise
from ..machine.a64fx import A64FX

__all__ = [
    "MatrixDims",
    "answer_task",
    "degraded_advise",
    "degraded_classify",
    "degraded_predict",
    "dims_from_task",
    "predict_policy",
]


def degraded_advise(
    dims: MatrixDims,
    machine: A64FX,
    num_threads: int,
    way_options: list[int],
    consider_isolate_x: bool = True,
    min_sector1_ways_with_prefetch: int = 4,
) -> dict:
    """An approximate ``advise`` wire result (``Recommendation`` shape)."""
    return _closed_advise(
        dims, machine, num_threads, way_options,
        consider_isolate_x=consider_isolate_x,
        min_sector1_ways_with_prefetch=min_sector1_ways_with_prefetch,
    ).to_dict()
