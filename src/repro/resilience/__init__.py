"""Fault injection and self-healing for the advisor service and sweep pool.

The ROADMAP's production framing ("heavy traffic, millions of users")
needs more than the fault *detection* the pool and daemon already have —
it needs the failures to be provocable on demand and the recovery to be
testable.  This package supplies both halves, stdlib-only:

* :mod:`~repro.resilience.faults` — a deterministic, seeded
  :class:`FaultPlan` installable like :class:`repro.obs.Tracer` and
  consulted at named sites (``worker.evaluate``, ``cache.disk_read``,
  ``pool.submit``, ``pool.worker``); plans travel as the daemon's
  ``"faults"`` request flag (gated by ``--allow-fault-injection``) or
  ambiently across ``fork`` into pool workers.
* :mod:`~repro.resilience.schema` — the ``repro.resilience.plan/v1``
  JSON validator and its CLI (``python -m repro.resilience.schema``).
* :mod:`~repro.resilience.retry` — capped exponential backoff with full
  jitter and a deadline-budgeted retry driver (everything injectable:
  rng, clock, sleep), used by :class:`repro.service.ServiceClient`.
* :mod:`~repro.resilience.breaker` — a per-endpoint closed/open/half-open
  circuit breaker with counted transitions, exported via ``/metrics``.
* :mod:`~repro.resilience.degraded` — approximate ``classify``/
  ``predict``/``advise`` answers from Method B's closed forms alone
  (scaling factors s1/s2 + streaming-miss terms), the daemon's
  degraded-mode response when the pool is unavailable.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES, CircuitBreaker
from .degraded import MatrixDims, degraded_advise, degraded_classify, degraded_predict
from .faults import (
    KINDS,
    KNOWN_SITES,
    PLAN_SCHEMA_ID,
    FaultInjected,
    FaultPlan,
    FaultRule,
    fire,
    get_plan,
    install,
    installed,
    perform,
)
from .retry import BackoffPolicy, DeadlineExceeded, call_with_retries
from .schema import validate_plan

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "KINDS",
    "KNOWN_SITES",
    "OPEN",
    "PLAN_SCHEMA_ID",
    "STATE_VALUES",
    "BackoffPolicy",
    "CircuitBreaker",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "MatrixDims",
    "call_with_retries",
    "degraded_advise",
    "degraded_classify",
    "degraded_predict",
    "fire",
    "get_plan",
    "install",
    "installed",
    "perform",
    "validate_plan",
]
