"""Deterministic fault injection at named sites (stdlib-only).

A :class:`FaultPlan` is a seeded schedule of faults to fire at *sites* —
named choke points the service and the sweep pool consult on every pass::

    worker.evaluate   the service pool worker, before dispatching a task
    cache.disk_read   the daemon's disk-tier read (corruption)
    pool.submit       the daemon's pool admission (saturation)
    pool.worker       the sweep engine's per-matrix worker body

Like :class:`repro.obs.Tracer`, a plan is *ambient and process-local*:
:func:`install` (or the :func:`installed` context manager) makes it
visible to :func:`fire`, and the instrumented sites cost one module
lookup when no plan is installed.  Ambient state is inherited across
``fork``, which is how a plan installed before a pooled sweep reaches the
sweep workers; the advisor daemon instead ships the plan *inside* the
task (the ``"faults"`` request flag) and the pool worker installs it for
the duration of one evaluation.

Determinism: each rule owns a :class:`random.Random` seeded from
``"<plan seed>:<rule index>"`` plus hit/fire counters, so the same plan
replayed over the same sequence of site hits fires identically.  Note
that counters are per *process* — a plan inherited by N forked workers
fires independently in each.

The JSON form (``repro.resilience.plan/v1``) is validated by
:mod:`repro.resilience.schema` and by the daemon before it accepts a
``"faults"`` request flag.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

#: Fault kinds a rule may request.
KINDS = ("crash", "delay", "error", "corrupt", "saturate")

#: Sites wired into the codebase (plans may name others; they never fire).
KNOWN_SITES = ("worker.evaluate", "cache.disk_read", "pool.submit", "pool.worker")

PLAN_SCHEMA_ID = "repro.resilience.plan/v1"


class FaultInjected(RuntimeError):
    """The exception raised by an ``error``-kind fault."""


@dataclass
class FaultRule:
    """One scheduled fault: where, what, and when it fires.

    ``after`` site hits are let through untouched before the rule becomes
    eligible; an eligible hit fires with ``probability`` (1.0 = always,
    drawn from the rule's seeded rng) until ``max_fires`` is exhausted
    (``None`` = unlimited).
    """

    site: str
    kind: str
    delay_seconds: float = 0.0
    probability: float = 1.0
    after: int = 0
    max_fires: int | None = None
    hits: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if not self.site:
            raise ValueError("site must be a non-empty string")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be positive (or None)")

    def to_dict(self) -> dict:
        payload: dict = {"site": self.site, "kind": self.kind}
        if self.delay_seconds:
            payload["delay_seconds"] = self.delay_seconds
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.after:
            payload["after"] = self.after
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        return payload


class FaultPlan:
    """A seeded, deterministic schedule of faults over named sites."""

    def __init__(self, rules: list[FaultRule], seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = int(seed)
        # string seeds hash via sha512 inside random.Random — deterministic
        # across processes (unlike tuple/object seeds, which are rejected)
        self._rngs = [random.Random(f"{self.seed}:{i}")
                      for i in range(len(self.rules))]
        self._lock = threading.Lock()

    def fire(self, site: str) -> FaultRule | None:
        """Record a hit at ``site``; the first rule that fires, or None."""
        with self._lock:
            for rule, rng in zip(self.rules, self._rngs):
                if rule.site != site:
                    continue
                rule.hits += 1
                if rule.hits <= rule.after:
                    continue
                if rule.max_fires is not None and rule.fires >= rule.max_fires:
                    continue
                if rule.probability < 1.0 and rng.random() >= rule.probability:
                    continue
                rule.fires += 1
                return rule
        return None

    def fired_counts(self) -> dict[str, int]:
        """``{"site:kind": fires}`` for every rule that fired (metrics)."""
        counts: dict[str, int] = {}
        with self._lock:
            for rule in self.rules:
                if rule.fires:
                    key = f"{rule.site}:{rule.kind}"
                    counts[key] = counts.get(key, 0) + rule.fires
        return counts

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA_ID,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from its JSON form (validate with the schema first
        for friendly errors; this constructor raises ``ValueError``)."""
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        schema = payload.get("schema", PLAN_SCHEMA_ID)
        if schema != PLAN_SCHEMA_ID:
            raise ValueError(f"expected schema {PLAN_SCHEMA_ID!r}, got {schema!r}")
        rules = []
        for entry in payload.get("rules", []):
            if not isinstance(entry, dict):
                raise ValueError("each rule must be an object")
            rules.append(FaultRule(
                site=str(entry.get("site", "")),
                kind=str(entry.get("kind", "")),
                delay_seconds=float(entry.get("delay_seconds", 0.0)),
                probability=float(entry.get("probability", 1.0)),
                after=int(entry.get("after", 0)),
                max_fires=(None if entry.get("max_fires") is None
                           else int(entry["max_fires"])),
            ))
        return cls(rules, seed=int(payload.get("seed", 0)))


# ----------------------------------------------------------------------
# process-local ambient plan (mirrors repro.obs.tracer's install pattern)
# ----------------------------------------------------------------------

_ambient: FaultPlan | None = None


def get_plan() -> FaultPlan | None:
    """The installed ambient plan, or None when fault injection is off."""
    return _ambient


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or, with None, remove) the ambient plan; returns the old one."""
    global _ambient
    previous = _ambient
    _ambient = plan
    return previous


@contextlib.contextmanager
def installed(plan: FaultPlan | None):
    """Ambient-install a plan for the duration of a block."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def fire(site: str) -> FaultRule | None:
    """A hit at ``site`` on the ambient plan; None when none is installed."""
    plan = _ambient
    if plan is None:
        return None
    return plan.fire(site)


#: Exit code of an injected worker crash (visible in pool diagnostics).
CRASH_EXIT_CODE = 70  # EX_SOFTWARE


def perform(rule: FaultRule | None, sleep: Callable[[float], None] = time.sleep) -> None:
    """Execute a fired rule at a code site.

    ``delay`` sleeps and returns (the site then proceeds normally, so a
    parent-side timeout can trip); ``crash`` kills the process the way a
    segfault would (no cleanup, no exception); every other kind raises
    :class:`FaultInjected`, which fault-isolated callers turn into a
    structured error.  Sites with richer semantics (``corrupt`` reads,
    ``saturate`` admission) special-case those kinds *before* calling
    this.  A ``None`` rule (nothing fired) is a no-op.
    """
    if rule is None:
        return
    if rule.kind == "delay":
        sleep(rule.delay_seconds)
        return
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    raise FaultInjected(f"injected {rule.kind!r} fault at site {rule.site!r}")
