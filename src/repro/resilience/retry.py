"""Capped exponential backoff with full jitter, and a retry driver.

The schedule is the standard AWS-architecture-blog shape::

    raw(attempt)  = min(cap, base * multiplier ** (attempt - 1))
    delay(attempt) = uniform(0, raw)            # jitter="full" (default)
                   | raw/2 + uniform(0, raw/2)  # jitter="equal"
                   | raw                        # jitter="none"

Everything nondeterministic is injected — the rng, the clock and the
sleep function — so tests replay exact schedules with a fake clock and a
seeded rng, and :class:`~repro.service.client.ServiceClient` retries are
reproducible under test.

:func:`call_with_retries` drives a callable through the schedule while
honouring a *deadline budget*: once the budget would be exceeded (either
already spent, or by the next sleep), the last error is raised instead of
sleeping — a caller with 2 s left never waits 4 s for a retry.
"""

from __future__ import annotations

import random
import time
from typing import Callable

_JITTER_MODES = ("full", "equal", "none")


class BackoffPolicy:
    """Deterministic-under-seed capped exponential backoff schedule."""

    def __init__(
        self,
        base_seconds: float = 0.05,
        cap_seconds: float = 2.0,
        multiplier: float = 2.0,
        jitter: str = "full",
        rng: random.Random | None = None,
    ) -> None:
        if base_seconds <= 0:
            raise ValueError("base_seconds must be positive")
        if cap_seconds < base_seconds:
            raise ValueError("cap_seconds must be >= base_seconds")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if jitter not in _JITTER_MODES:
            raise ValueError(f"jitter must be one of {_JITTER_MODES}, got {jitter!r}")
        self.base_seconds = base_seconds
        self.cap_seconds = cap_seconds
        self.multiplier = multiplier
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random()

    def raw_delay(self, attempt: int) -> float:
        """The un-jittered (capped) delay before retry number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return min(
            self.cap_seconds,
            self.base_seconds * self.multiplier ** (attempt - 1),
        )

    def delay(self, attempt: int) -> float:
        """The jittered delay before retry number ``attempt`` (1-based)."""
        raw = self.raw_delay(attempt)
        if self.jitter == "none":
            return raw
        if self.jitter == "equal":
            return raw / 2.0 + self.rng.uniform(0.0, raw / 2.0)
        return self.rng.uniform(0.0, raw)


class DeadlineExceeded(Exception):
    """Retrying stopped because the deadline budget ran out.

    Raised ``from`` the last underlying error, which also rides in
    :attr:`last_error` for callers that need the terminal cause.
    """

    def __init__(self, message: str, last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error


def call_with_retries(
    fn: Callable[[], object],
    retries: int = 0,
    backoff: BackoffPolicy | None = None,
    retryable: Callable[[BaseException], bool] | None = None,
    deadline_seconds: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn`` with up to ``retries`` retries under a deadline budget.

    ``retryable(exc)`` decides which failures are worth another attempt
    (default: any ``Exception``); anything else propagates immediately.
    With a ``deadline_seconds`` budget, a retry whose backoff sleep would
    overrun the budget is abandoned: the last error is re-raised wrapped
    in :class:`DeadlineExceeded` so callers can tell "gave up on time"
    from "gave up on attempts".
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if backoff is None:
        backoff = BackoffPolicy()
    started = clock()
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - filtered by `retryable`
            if retryable is not None and not retryable(exc):
                raise
            attempt += 1
            if attempt > retries:
                raise
            pause = backoff.delay(attempt)
            if deadline_seconds is not None:
                remaining = deadline_seconds - (clock() - started)
                if remaining <= 0 or pause > remaining:
                    raise DeadlineExceeded(
                        f"retry deadline of {deadline_seconds:.3g}s exhausted "
                        f"after {attempt} attempt(s)",
                        last_error=exc,
                    ) from exc
            sleep(pause)
