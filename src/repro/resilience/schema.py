"""Structural validation of fault-plan payloads (stdlib-only).

A fault plan's JSON form (``repro.resilience.plan/v1``) looks like::

    {"schema": "repro.resilience.plan/v1",
     "seed": 42,
     "rules": [{"site": "worker.evaluate", "kind": "crash", "max_fires": 1},
               {"site": "cache.disk_read", "kind": "corrupt"},
               {"site": "worker.evaluate", "kind": "delay",
                "delay_seconds": 0.5, "probability": 0.25, "after": 2}]}

:func:`validate_plan` checks that shape (a hand-rolled JSON schema — the
container has no ``jsonschema``, mirroring :mod:`repro.obs.schema`) and
returns a list of human-readable problems, empty when the payload is
valid.  The daemon runs it on every ``"faults"`` request flag, and the CI
chaos-smoke job runs it as a CLI::

    python -m repro.resilience.schema plan.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .faults import KINDS, KNOWN_SITES, PLAN_SCHEMA_ID

_RULE_FIELDS = frozenset(
    {"site", "kind", "delay_seconds", "probability", "after", "max_fires"}
)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_rule(rule: object, path: str, problems: list[str]) -> None:
    if not isinstance(rule, dict):
        problems.append(f"{path}: rule must be an object, got {type(rule).__name__}")
        return
    unknown = set(rule) - _RULE_FIELDS
    if unknown:
        problems.append(f"{path}: unknown fields {sorted(unknown)}")
    site = rule.get("site")
    if not isinstance(site, str) or not site:
        problems.append(f"{path}.site: must be a non-empty string")
    elif site not in KNOWN_SITES:
        # not an error: unknown sites validate but never fire
        problems.append(
            f"{path}.site: warning: {site!r} is not a wired site "
            f"(known: {', '.join(KNOWN_SITES)})"
        )
    kind = rule.get("kind")
    if kind not in KINDS:
        problems.append(f"{path}.kind: must be one of {', '.join(KINDS)}")
    delay = rule.get("delay_seconds", 0.0)
    if not _is_number(delay) or delay < 0:
        problems.append(f"{path}.delay_seconds: must be a non-negative number")
    elif kind == "delay" and delay == 0:
        problems.append(f"{path}.delay_seconds: a delay rule needs a positive delay")
    probability = rule.get("probability", 1.0)
    if not _is_number(probability) or not 0.0 <= probability <= 1.0:
        problems.append(f"{path}.probability: must be a number in [0, 1]")
    after = rule.get("after", 0)
    if not isinstance(after, int) or isinstance(after, bool) or after < 0:
        problems.append(f"{path}.after: must be a non-negative integer")
    max_fires = rule.get("max_fires")
    if max_fires is not None and (
        not isinstance(max_fires, int) or isinstance(max_fires, bool) or max_fires < 1
    ):
        problems.append(f"{path}.max_fires: must be a positive integer or null")


def validate_plan(payload: object, strict_sites: bool = False) -> list[str]:
    """Problems with a fault-plan payload; empty when valid.

    Unknown sites produce ``warning:`` entries only when ``strict_sites``
    — a plan naming a site nothing consults is harmless (it never fires)
    but usually a typo worth surfacing in the CLI.
    """
    if not isinstance(payload, dict):
        return ["payload: must be a JSON object"]
    problems: list[str] = []
    if payload.get("schema") != PLAN_SCHEMA_ID:
        problems.append(
            f"schema: expected {PLAN_SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        problems.append("seed: must be an integer")
    unknown = set(payload) - {"schema", "seed", "rules"}
    if unknown:
        problems.append(f"payload: unknown fields {sorted(unknown)}")
    rules = payload.get("rules")
    if not isinstance(rules, list):
        problems.append("rules: must be a list")
    else:
        if not rules:
            problems.append("rules: must not be empty")
        for i, rule in enumerate(rules):
            _validate_rule(rule, f"rules[{i}]", problems)
    if not strict_sites:
        problems = [p for p in problems if ": warning:" not in p]
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="fault-plan JSON file to validate")
    args = parser.parse_args(argv)
    try:
        payload = json.loads(open(args.path).read())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    problems = validate_plan(payload, strict_sites=True)
    warnings = [p for p in problems if ": warning:" in p]
    errors = [p for p in problems if ": warning:" not in p]
    for problem in warnings:
        print(f"warning: {problem.replace(' warning:', '')}", file=sys.stderr)
    for problem in errors:
        print(f"invalid: {problem}", file=sys.stderr)
    if errors:
        return 1
    rules = payload["rules"]
    sites = sorted({rule.get("site") for rule in rules if isinstance(rule, dict)})
    print(f"OK: {args.path} is a valid {PLAN_SCHEMA_ID} plan "
          f"({len(rules)} rules over sites: {', '.join(sites)})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
