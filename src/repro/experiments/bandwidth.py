"""Section 4.4's bandwidth-utilisation analysis.

The paper reports that the top-20 matrices by memory-bandwidth utilisation
(513-783 GB/s without the sector cache) are disjoint from the top-20 by
speedup (74-376 GB/s), concluding that the speedup population is limited
by demand-miss latency rather than bandwidth.  This driver regenerates
that comparison from the measurement bundles, using the paper's bandwidth
formula (events x line size / time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.report import render_table
from ..machine.a64fx import A64FX
from .common import MatrixRecord


@dataclass(frozen=True)
class BandwidthEntry:
    name: str
    bandwidth_gbs: float
    speedup: float
    gflops: float


def bandwidth_utilisation(
    record: MatrixRecord, machine: A64FX, l2w: int = 0, l1w: int = 0
) -> float:
    """Modelled bandwidth of a configuration in GB/s (Section 4.4 formula)."""
    events = record.events(l2w, l1w)
    seconds = record.perf[f"{l2w},{l1w}"]["seconds"]
    return events.bandwidth(machine.line_size, seconds) / 1e9


def top_by_bandwidth(
    records: list[MatrixRecord], machine: A64FX, count: int = 20
) -> list[BandwidthEntry]:
    """Top matrices by baseline bandwidth utilisation."""
    entries = [
        BandwidthEntry(
            name=r.name,
            bandwidth_gbs=bandwidth_utilisation(r, machine),
            speedup=r.speedup(5, 0),
            gflops=r.gflops(0, 0),
        )
        for r in records
    ]
    return sorted(entries, key=lambda e: -e.bandwidth_gbs)[:count]


def top_by_speedup(
    records: list[MatrixRecord], machine: A64FX, count: int = 20
) -> list[BandwidthEntry]:
    """Top matrices by 5-way sector-cache speedup."""
    entries = [
        BandwidthEntry(
            name=r.name,
            bandwidth_gbs=bandwidth_utilisation(r, machine),
            speedup=r.speedup(5, 0),
            gflops=r.gflops(0, 0),
        )
        for r in records
    ]
    return sorted(entries, key=lambda e: -e.speedup)[:count]


def section44_summary(
    records: list[MatrixRecord], machine: A64FX, count: int = 20
) -> dict[str, float]:
    """The claim's quantities: bandwidth ranges of both top-20 sets."""
    by_bw = top_by_bandwidth(records, machine, count)
    by_sp = top_by_speedup(records, machine, count)
    bw_range = [e.bandwidth_gbs for e in by_bw]
    sp_range = [e.bandwidth_gbs for e in by_sp]
    overlap = len({e.name for e in by_bw} & {e.name for e in by_sp})
    return {
        "top_bandwidth_min_gbs": float(np.min(bw_range)),
        "top_bandwidth_max_gbs": float(np.max(bw_range)),
        "top_speedup_bandwidth_min_gbs": float(np.min(sp_range)),
        "top_speedup_bandwidth_max_gbs": float(np.max(sp_range)),
        "overlap_count": float(overlap),
    }


def render_section44(
    records: list[MatrixRecord], machine: A64FX, count: int = 10
) -> str:
    rows = []
    for label, entries in (
        ("top by bandwidth", top_by_bandwidth(records, machine, count)),
        ("top by speedup", top_by_speedup(records, machine, count)),
    ):
        for e in entries:
            rows.append(
                (label, e.name, f"{e.bandwidth_gbs:.0f}", f"{e.speedup:.3f}", f"{e.gflops:.1f}")
            )
    return render_table(
        ["set", "matrix", "GB/s", "speedup@5", "Gflop/s"],
        rows,
        title="Section 4.4: bandwidth utilisation vs sector-cache speedup",
        align_left=2,
    )
