"""Figure 2: distribution of L2 cache-miss change per sector configuration.

Boxplots over the collection of the relative difference in L2 cache misses
(48-thread SpMV) between each sector configuration — L2 ways 2-6 for the
non-reusable data, combined with L1 sector off or 1-3 ways — and the
baseline without the sector cache.  Negative = fewer misses.
"""

from __future__ import annotations

import numpy as np

from ..analysis.boxstats import BoxStats, box_stats, render_box_table
from .common import MatrixRecord

L2_WAYS = (2, 3, 4, 5, 6)
L1_WAYS = (0, 1, 2, 3)


def figure2_series(
    records: list[MatrixRecord],
    l2_ways: tuple[int, ...] = L2_WAYS,
    l1_ways: tuple[int, ...] = L1_WAYS,
) -> dict[tuple[int, int], BoxStats]:
    """Boxplot stats of the L2 miss change, keyed by (L2 ways, L1 ways)."""
    out = {}
    for l1w in l1_ways:
        for l2w in l2_ways:
            changes = np.array([r.miss_change_percent(l2w, l1w) for r in records])
            out[(l2w, l1w)] = box_stats(changes)
    return out


def render_figure2(series: dict[tuple[int, int], BoxStats]) -> str:
    rows = []
    for (l2w, l1w), stats in sorted(series.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        l1_label = "none" if l1w == 0 else str(l1w)
        rows.append((f"L2 ways {l2w}, L1 ways {l1_label}", stats))
    return (
        "Figure 2: difference in L2 cache misses vs no-sector baseline [%]\n"
        + render_box_table(rows, "negative = fewer misses")
    )


def best_l2_ways(series: dict[tuple[int, int], BoxStats]) -> int:
    """The L2 way count with the lowest median miss change (L1 off).

    The paper finds 4-5 ways best (Section 4.3).
    """
    candidates = {l2w: s for (l2w, l1w), s in series.items() if l1w == 0}
    return min(candidates, key=lambda w: candidates[w].median)
