"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments --exp table1
    python -m repro.experiments --exp figure2 --collection small
    python -m repro.experiments --exp all --collection full --cache .repro_cache
    python -m repro.experiments --exp figure3 --collection full --jobs 8
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..obs.report import render_report
from ..obs.schema import TRACE_SCHEMA_ID
from ..obs.tracer import Tracer, installed
from .cluster import render_cluster, run_cluster
from .common import ExperimentSetup, collection_records
from .figure2 import figure2_series, render_figure2
from .ladder import render_ladder, run_ladder
from .optimize import render_optimize, run_optimize
from .figure3 import figure3_series, headline_numbers, render_figure3
from .figure4 import class_summary, figure4_points, render_figure4
from .figure5 import correlation, figure5_points, render_figure5
from .table1 import render_table1, run_table1
from .tables23 import (
    accuracy_rows,
    l1_accuracy,
    method_overhead,
    render_accuracy_table,
)

EXPERIMENTS = ("table1", "table2", "table3", "figure2", "figure3", "figure4", "figure5", "overhead")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    # "ladder", "optimize", "cluster" and "delta" are opt-in (not part of
    # "all"): they explore the fidelity trade-off / reordering search /
    # sharded service / incremental reuse engine rather than reproducing
    # a paper artifact
    parser.add_argument("--exp",
                        choices=EXPERIMENTS + ("all", "ladder", "optimize",
                                               "cluster", "delta"),
                        default="all")
    parser.add_argument("--collection", choices=("tiny", "small", "full"), default="small")
    parser.add_argument("--limit", type=int, default=None, help="cap the matrix count")
    parser.add_argument("--cache", default=".repro_cache", help="'' disables caching")
    parser.add_argument("--scale", type=int, default=16, help="machine scale factor")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the matrix sweep (1 = serial)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-matrix wall-clock budget in seconds (parallel sweeps only)",
    )
    parser.add_argument(
        "--retry-failures", action="store_true",
        help="re-queue matrices with a <cache_key>.failure.json record from a "
             "previous sweep instead of skipping them (the record is deleted "
             "on success)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a hierarchical span trace of the run, write it to PATH "
             "as JSON, and print a self-time report",
    )
    parser.add_argument(
        "--accuracy", type=float, default=None, metavar="BOUND",
        help="fidelity-ladder accuracy SLO for --exp ladder (floored "
             "relative error; omitted = legacy fixed fidelity)",
    )
    parser.add_argument(
        "--max-tier", type=int, default=3, choices=(0, 1, 2, 3),
        help="fidelity-ladder escalation cap for --exp ladder",
    )
    parser.add_argument(
        "--budget", type=float, default=30.0, metavar="SECONDS",
        help="reordering-search cost budget for --exp optimize",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="reordering-search tie-break seed for --exp optimize",
    )
    parser.add_argument(
        "--replicas", type=int, default=3,
        help="replica daemons behind the gateway for --exp cluster",
    )
    parser.add_argument(
        "--window", type=int, default=8,
        help="batch in-flight window for --exp cluster",
    )
    parser.add_argument(
        "--delta-budget", type=int, default=None, metavar="ELEMENTS",
        help="patch-work ceiling for --exp delta (summed dirty "
             "reuse-window elements; default 65536)",
    )
    parser.add_argument(
        "--delta-edits", type=int, default=64,
        help="edit-batch size for --exp delta",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.accuracy is not None and args.accuracy <= 0:
        parser.error("--accuracy must be positive")
    if args.budget <= 0:
        parser.error("--budget must be positive")
    if args.seed < 0:
        parser.error("--seed must be non-negative")
    if args.jobs < 1:
        parser.error("--jobs must be positive")
    if args.replicas < 1:
        parser.error("--replicas must be positive")
    if args.window < 1:
        parser.error("--window must be positive")
    if args.delta_budget is not None and args.delta_budget < 0:
        parser.error("--delta-budget must be non-negative")
    if args.delta_edits < 1:
        parser.error("--delta-edits must be positive")

    cache = args.cache or None
    wanted = EXPERIMENTS if args.exp == "all" else (args.exp,)

    if not args.trace:
        return _run(args, cache, wanted)

    started = time.perf_counter()
    with Tracer(memory="rss") as tracer, installed(tracer):
        # one root span over the whole run partitions the wall time: every
        # phase's self time is a slice of this span by construction
        with tracer.span(
            "repro.experiments",
            exp=args.exp, collection=args.collection, jobs=args.jobs,
        ):
            status = _run(args, cache, wanted)
    wall_seconds = time.perf_counter() - started
    merged = tracer.tree().merged()
    payload = {
        "schema": TRACE_SCHEMA_ID,
        "wall_seconds": wall_seconds,
        "tree": merged.to_dict(),
    }
    Path(args.trace).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(render_report(merged, wall_seconds))
    print(f"trace written to {args.trace}")
    return status


def _run(args: argparse.Namespace, cache: str | None, wanted: tuple[str, ...]) -> int:
    if "ladder" in wanted:
        setup = ExperimentSetup(scale=args.scale, num_threads=48)
        rows = run_ladder(
            args.collection, setup, accuracy=args.accuracy,
            max_tier=args.max_tier, limit=args.limit, verbose=args.verbose,
        )
        print(render_ladder(rows, args.accuracy, args.max_tier))
        print()

    if "optimize" in wanted:
        from ..optimize import SearchConfig

        setup = ExperimentSetup(scale=args.scale, num_threads=48)
        config = SearchConfig(budget_seconds=args.budget, seed=args.seed)
        rows = run_optimize(
            args.collection, setup, config,
            limit=args.limit, verbose=args.verbose,
        )
        print(render_optimize(rows, config))
        print()

    if "delta" in wanted:
        from ..delta import DEFAULT_BUDGET
        from .delta import render_delta, run_delta

        setup = ExperimentSetup(scale=args.scale, num_threads=1)
        budget = (DEFAULT_BUDGET if args.delta_budget is None
                  else args.delta_budget)
        rows = run_delta(setup, edits=args.delta_edits, budget=budget,
                         seed=args.seed, verbose=args.verbose)
        print(render_delta(rows))
        print()

    if "cluster" in wanted:
        setup = ExperimentSetup(scale=args.scale, num_threads=48)
        summary = run_cluster(
            args.collection, setup, replicas=args.replicas,
            window=args.window, limit=args.limit, verbose=args.verbose,
        )
        print(render_cluster(summary))
        print()

    if "table1" in wanted:
        print(render_table1(run_table1()))
        print()

    parallel_setup = ExperimentSetup(scale=args.scale, num_threads=48)
    needs_parallel = {"table3", "figure2", "figure3", "figure4", "figure5", "overhead"}
    if needs_parallel & set(wanted):
        records = collection_records(
            args.collection, parallel_setup, cache, limit=args.limit,
            verbose=args.verbose, jobs=args.jobs, timeout=args.timeout,
            retry_failures=args.retry_failures,
        )
        if not records:
            print(
                "error: no matrices measured (every matrix failed or timed out); "
                "see the <cache_key>.failure.json records in the cache directory",
                file=sys.stderr,
            )
            return 1
        machine = parallel_setup.machine()
        if "figure2" in wanted:
            print(render_figure2(figure2_series(records)))
            print()
        if "figure3" in wanted:
            print(render_figure3(figure3_series(records)))
            print("headline:", headline_numbers(records))
            print()
        if "figure4" in wanted:
            points = figure4_points(records)
            print(render_figure4(points))
            print("per-class summary:", class_summary(points))
            print()
        if "figure5" in wanted:
            points = figure5_points(records, machine)
            print(render_figure5(points))
            print(f"correlation(demand-miss change, speedup) = {correlation(points):.3f}")
            print()
        if "table3" in wanted:
            rows = accuracy_rows(records, machine, parallel=True)
            print(render_accuracy_table(
                rows, "Table 3: L2 miss prediction error, parallel SpMV (48 threads)"
            ))
            print(l1_accuracy(records, machine, parallel=True))
            print()
        if "overhead" in wanted:
            print("Section 4.5.1 overhead:", method_overhead(records))
            print()

    if "table2" in wanted:
        sequential = ExperimentSetup(scale=args.scale, num_threads=1)
        records = collection_records(
            args.collection, sequential, cache, limit=args.limit,
            verbose=args.verbose, jobs=args.jobs, timeout=args.timeout,
            retry_failures=args.retry_failures,
        )
        machine = sequential.machine()
        rows = accuracy_rows(records, machine, parallel=False)
        print(render_accuracy_table(
            rows, "Table 2: L2 miss prediction error, sequential SpMV"
        ))
        print(l1_accuracy(records, machine, parallel=False))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
