"""Shared experiment infrastructure.

All tables and figures of the paper derive from the same per-matrix
measurements: simulated PMU events for a grid of sector configurations,
model predictions by methods (A) and (B), and performance estimates.
:func:`measure_matrix` computes one matrix's bundle; :func:`run_collection`
sweeps a collection with JSON on-disk caching so drivers and benches share
work across invocations.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..cachesim.events import CacheEvents
from ..cachesim.hierarchy import SimConfig, SpMVCacheSim
from ..core.classification import classify
from ..core.model import CacheMissModel
from ..machine.a64fx import A64FX, scaled_machine
from ..machine.perfmodel import PerformanceModel
from ..matrices.collection import MatrixSpec, collection
from ..matrices.stats import matrix_stats
from ..obs.tracer import Tracer, get_tracer, peak_rss_bytes
from ..obs.tracer import span as obs_span
from ..spmv.csr import CSRMatrix
from ..spmv.sector_policy import SectorPolicy, no_sector_cache

#: L2 way splits evaluated everywhere (0 = sector cache off).
L2_WAY_OPTIONS: tuple[int, ...] = (0, 2, 3, 4, 5, 6, 7)
#: L1 way splits of Figure 2/3 (0 = L1 sector cache off).
L1_WAY_OPTIONS: tuple[int, ...] = (0, 1, 2, 3)


@dataclass(frozen=True)
class ExperimentSetup:
    """Machine, execution and sweep parameters of one experiment family."""

    scale: int = 16
    num_threads: int = 48
    iterations: int = 2
    l1_prefetch_distance: int = 2
    l2_prefetch_distance: int = 4
    l2_way_options: tuple[int, ...] = L2_WAY_OPTIONS
    l1_way_options: tuple[int, ...] = L1_WAY_OPTIONS
    #: single-period steady-state engine (results are byte-identical to the
    #: doubled-trace oracle, so this knob is deliberately NOT in the cache key)
    periodic: bool = True

    def machine(self) -> A64FX:
        return scaled_machine(self.scale)

    def sim_config(self) -> SimConfig:
        return SimConfig(
            num_threads=self.num_threads,
            iterations=self.iterations,
            l1_prefetch_distance=self.l1_prefetch_distance,
            l2_prefetch_distance=self.l2_prefetch_distance,
            periodic=self.periodic,
        )

    def cache_key(self, matrix_name: str) -> str:
        payload = json.dumps(
            ["v6", matrix_name, self.scale, self.num_threads, self.iterations,
             self.l1_prefetch_distance, self.l2_prefetch_distance,
             list(self.l2_way_options), list(self.l1_way_options)],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:20]


def _policy(setup: ExperimentSetup, l2w: int, l1w: int) -> SectorPolicy:
    if l2w == 0 and l1w == 0:
        return no_sector_cache()
    return SectorPolicy(l2_sector1_ways=l2w, l1_sector1_ways=l1w)


def _config_key(l2w: int, l1w: int) -> str:
    return f"{l2w},{l1w}"


@dataclass
class MatrixRecord:
    """One matrix's full measurement/prediction bundle (JSON-serialisable)."""

    name: str
    num_rows: int
    num_cols: int
    nnz: int
    mean_nnz_per_row: float
    cv_nnz_per_row: float
    x_bytes: int
    working_set_bytes: int
    threads: int
    #: Section 3.1 class per L2 way split, e.g. {"5": "2"}
    classes: dict[str, str] = field(default_factory=dict)
    #: simulated events per "(l2w,l1w)" key
    measured: dict[str, dict[str, int]] = field(default_factory=dict)
    #: method A / B predicted L2 misses per L2 way split key
    model_a: dict[str, int] = field(default_factory=dict)
    model_b: dict[str, int] = field(default_factory=dict)
    #: method A / B predicted L1 misses (sector cache off)
    model_a_l1: int = 0
    model_b_l1: int = 0
    #: modelled runtime (seconds) and Gflop/s per "(l2w,l1w)" key
    perf: dict[str, dict[str, float]] = field(default_factory=dict)
    #: wall-clock seconds spent in methods A and B (Section 4.5.1)
    model_a_seconds: float = 0.0
    model_b_seconds: float = 0.0
    #: per-phase wall-clock seconds (classify/simulate/model_a/model_b/total);
    #: all five values come from one tracer's spans, so
    #: ``total >= classify + simulate + model_a + model_b`` always holds
    timings: dict[str, float] = field(default_factory=dict)
    #: peak RSS of the measuring process when the record was produced, in
    #: bytes (0 when unavailable); in a pooled sweep this is the worker's peak
    peak_rss_bytes: int = 0
    #: the measurement phase during which the process peak-RSS high-water
    #: mark grew the most ("" when RSS sampling is unavailable or flat)
    peak_phase: str = ""

    def events(self, l2w: int, l1w: int = 0) -> CacheEvents:
        raw = self.measured[_config_key(l2w, l1w)]
        return CacheEvents(**{k: v for k, v in raw.items()})

    def l2_misses(self, l2w: int, l1w: int = 0) -> int:
        return self.measured[_config_key(l2w, l1w)]["l2_refill"]

    def demand_misses(self, l2w: int, l1w: int = 0) -> int:
        return self.measured[_config_key(l2w, l1w)]["l2_refill_demand"]

    def miss_change_percent(self, l2w: int, l1w: int = 0) -> float:
        base = self.l2_misses(0, 0)
        return 100.0 * (self.l2_misses(l2w, l1w) - base) / base if base else 0.0

    def demand_change_percent(self, l2w: int, l1w: int = 0) -> float:
        base = self.demand_misses(0, 0)
        return (
            100.0 * (self.demand_misses(l2w, l1w) - base) / base if base else 0.0
        )

    def speedup(self, l2w: int, l1w: int = 0) -> float:
        t0 = self.perf[_config_key(0, 0)]["seconds"]
        t1 = self.perf[_config_key(l2w, l1w)]["seconds"]
        return t0 / t1

    def gflops(self, l2w: int = 0, l1w: int = 0) -> float:
        return self.perf[_config_key(l2w, l1w)]["gflops"]

    def matrix_class(self, l2w: int) -> str:
        return self.classes[str(l2w)]

    def to_dict(self) -> dict:
        """JSON-serialisable form (cache records and the service wire format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MatrixRecord":
        return cls(**payload)


def measure_matrix(
    matrix: CSRMatrix, setup: ExperimentSetup, perf_model: PerformanceModel | None = None
) -> MatrixRecord:
    """Simulate, model and estimate one matrix under a setup.

    The four measurement phases run as spans of one tracer — the ambient
    :mod:`repro.obs` tracer when tracing is on (so model/simulator spans
    nest under the phases and end up in the run's trace), or a throwaway
    local tracer otherwise.  The record's ``timings`` are derived from
    those spans, which makes the phase/total accounting consistent by
    construction: ``total`` is the enclosing span, so it always covers at
    least the sum of the phases.
    """
    machine = setup.machine()
    stats = matrix_stats(matrix)
    perf_model = perf_model or PerformanceModel(machine)
    num_cmgs = -(-setup.num_threads // machine.cores_per_cmg)
    record = MatrixRecord(
        name=matrix.name,
        num_rows=matrix.num_rows,
        num_cols=matrix.num_cols,
        nnz=matrix.nnz,
        mean_nnz_per_row=stats.mean_nnz_per_row,
        cv_nnz_per_row=stats.cv_nnz_per_row,
        x_bytes=matrix.x_bytes,
        working_set_bytes=matrix.total_bytes,
        threads=setup.num_threads,
    )
    tracer = get_tracer()
    if tracer is None:
        tracer = Tracer(memory="rss")
    with tracer.span("measure_matrix", matrix=matrix.name) as sp_total:
        with tracer.span("classify") as sp_classify:
            for l2w in setup.l2_way_options:
                record.classes[str(l2w)] = classify(
                    matrix, machine, l2w, num_cmgs
                ).value

        with tracer.span("simulate") as sp_simulate:
            sim = SpMVCacheSim(matrix, machine, setup.sim_config())
            for l1w in setup.l1_way_options:
                for l2w in setup.l2_way_options:
                    if l1w > 0 and l2w == 0:
                        continue  # the paper never enables L1 sectors alone
                    events = sim.events(_policy(setup, l2w, l1w))
                    key = _config_key(l2w, l1w)
                    record.measured[key] = {
                        "l1_refill": events.l1_refill,
                        "l2_refill": events.l2_refill,
                        "l2_refill_demand": events.l2_refill_demand,
                        "l2_refill_prefetch": events.l2_refill_prefetch,
                        "l2_writeback": events.l2_writeback,
                    }
                    est = perf_model.estimate(matrix, events, setup.num_threads)
                    record.perf[key] = {"seconds": est.seconds, "gflops": est.gflops}

        model = CacheMissModel(
            matrix,
            machine,
            num_threads=setup.num_threads,
            iterations=setup.iterations,
            periodic=setup.periodic,
        )
        sweep_policies = [_policy(setup, l2w, 0) for l2w in setup.l2_way_options]
        with tracer.span("model_a") as sp_a:
            for l2w, pred in zip(setup.l2_way_options, model.sweep(sweep_policies, "A")):
                record.model_a[str(l2w)] = pred.l2_misses
            record.model_a_l1 = model.predict_l1(no_sector_cache(), "A").misses
        with tracer.span("model_b") as sp_b:
            for l2w, pred in zip(setup.l2_way_options, model.sweep(sweep_policies, "B")):
                record.model_b[str(l2w)] = pred.l2_misses
            record.model_b_l1 = model.predict_l1(no_sector_cache(), "B").misses

    record.model_a_seconds = sp_a.seconds
    record.model_b_seconds = sp_b.seconds
    phases = {
        "classify": sp_classify,
        "simulate": sp_simulate,
        "model_a": sp_a,
        "model_b": sp_b,
    }
    record.timings = {name: span.seconds for name, span in phases.items()}
    record.timings["total"] = sp_total.seconds
    peak_deltas = {name: span.rss_delta_bytes for name, span in phases.items()}
    if any(peak_deltas.values()):
        record.peak_phase = max(phases, key=lambda name: peak_deltas[name])
    record.peak_rss_bytes = peak_rss_bytes()
    return record


#: Record fields that vary run-to-run (timing, memory) and must be ignored
#: when checking that two sweeps produced identical results.
VOLATILE_FIELDS: tuple[str, ...] = (
    "model_a_seconds",
    "model_b_seconds",
    "timings",
    "peak_rss_bytes",
    "peak_phase",
)


def record_fingerprint(record: MatrixRecord) -> str:
    """Canonical digest of a record's deterministic content.

    Serial, parallel and cached sweeps of the same inputs must agree on
    this digest; the instrumentation fields of :data:`VOLATILE_FIELDS` are
    excluded because wall time and RSS are not reproducible.
    """
    payload = asdict(record)
    for name in VOLATILE_FIELDS:
        payload.pop(name, None)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def cache_entry_path(
    cache_path: Path, setup: ExperimentSetup, matrix_name: str
) -> Path:
    """On-disk location of one matrix's cached measurement bundle."""
    return cache_path / f"{setup.cache_key(matrix_name)}.json"


def failure_entry_path(
    cache_path: Path, setup: ExperimentSetup, matrix_name: str
) -> Path:
    """On-disk location of one matrix's persisted sweep failure."""
    return cache_path / f"{setup.cache_key(matrix_name)}.failure.json"


def load_cached_record(
    cache_path: Path | None, setup: ExperimentSetup, matrix_name: str
) -> MatrixRecord | None:
    """The cached record for a matrix, or None on a cache miss."""
    if cache_path is None:
        return None
    entry = cache_entry_path(cache_path, setup, matrix_name)
    if not entry.exists():
        return None
    return MatrixRecord.from_dict(json.loads(entry.read_text()))


def store_record(
    cache_path: Path | None, setup: ExperimentSetup, record: MatrixRecord
) -> None:
    """Persist a record; serial and parallel sweeps share this writer.

    A stale failure record for the same matrix is removed: the matrix
    evidently measures fine now, so a later sweep must not skip it.
    """
    if cache_path is None:
        return
    entry = cache_entry_path(cache_path, setup, record.name)
    entry.write_text(json.dumps(record.to_dict()))
    failure_entry_path(cache_path, setup, record.name).unlink(missing_ok=True)


def run_collection(
    specs: list[MatrixSpec],
    setup: ExperimentSetup,
    cache_dir: str | Path | None = ".repro_cache",
    verbose: bool = False,
    jobs: int = 1,
    timeout: float | None = None,
    retry_failures: bool = False,
) -> list[MatrixRecord]:
    """Measurement bundles for a list of matrix specs, with disk caching.

    ``jobs > 1`` dispatches cache misses to the process-pool sweep engine
    (:mod:`repro.experiments.pool`): results, ordering and cache records
    are identical to the serial path, and individual matrix failures are
    recorded instead of aborting the sweep.

    Matrices with a persisted ``<cache_key>.failure.json`` record from a
    previous sweep are skipped (so one pathological matrix does not re-pay
    its timeout on every invocation) unless ``retry_failures`` is set, in
    which case they are re-queued and the failure record is deleted on
    success.
    """
    if jobs > 1:
        from .pool import run_collection_parallel

        return run_collection_parallel(
            specs, setup, cache_dir, jobs=jobs, timeout=timeout, verbose=verbose,
            retry_failures=retry_failures,
        ).records
    records = []
    cache_path = Path(cache_dir) if cache_dir else None
    if cache_path:
        cache_path.mkdir(parents=True, exist_ok=True)
    with obs_span("run_collection", matrices=len(specs), jobs=1):
        for i, spec in enumerate(specs):
            cached = load_cached_record(cache_path, setup, spec.name)
            if cached is not None:
                records.append(cached)
                continue
            if (
                cache_path is not None
                and not retry_failures
                and failure_entry_path(cache_path, setup, spec.name).exists()
            ):
                if verbose:
                    print(f"[{i + 1}/{len(specs)}] {spec.name}: skipped (failed "
                          "previously; rerun with --retry-failures)")
                continue
            with obs_span("materialize", matrix=spec.name):
                matrix = spec.materialize()
            started = time.perf_counter()
            record = measure_matrix(matrix, setup)
            if verbose:
                print(
                    f"[{i + 1}/{len(specs)}] {spec.name}: nnz={matrix.nnz} "
                    f"({time.perf_counter() - started:.1f}s)"
                )
            store_record(cache_path, setup, record)
            records.append(record)
    return records


def collection_records(
    size: str = "small",
    setup: ExperimentSetup | None = None,
    cache_dir: str | Path | None = ".repro_cache",
    limit: int | None = None,
    verbose: bool = False,
    jobs: int = 1,
    timeout: float | None = None,
    retry_failures: bool = False,
) -> list[MatrixRecord]:
    """Records for the named synthetic collection (the usual entry point)."""
    setup = setup or ExperimentSetup()
    specs = collection(size, machine=setup.machine())
    if limit is not None:
        specs = specs[:limit]
    return run_collection(
        specs, setup, cache_dir, verbose=verbose, jobs=jobs, timeout=timeout,
        retry_failures=retry_failures,
    )
