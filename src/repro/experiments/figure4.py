"""Figure 4: speedup versus vector size, by matrix class.

Scatter of the 5-L2-way speedup against the number of matrix columns
(i.e. the x-vector size), with each matrix labelled by its Section-3.1
class.  The paper's reading: class (1) hugs 1.0, class (2) holds the
biggest speedups, class (3) tapers off as ever less of x fits the large
partition.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..analysis.report import render_series
from .common import MatrixRecord


def figure4_points(
    records: list[MatrixRecord], l2_ways: int = 5
) -> dict[str, list[tuple[int, float]]]:
    """(columns, speedup) scatter points grouped by matrix class."""
    out: dict[str, list[tuple[int, float]]] = defaultdict(list)
    for r in records:
        out[r.matrix_class(l2_ways)].append((r.num_cols, r.speedup(l2_ways, 0)))
    return {k: sorted(v) for k, v in out.items()}


def render_figure4(points: dict[str, list[tuple[int, float]]]) -> str:
    blocks = ["Figure 4: speedup vs matrix columns, sector cache with 5 L2 ways"]
    for cls in sorted(points):
        blocks.append(
            render_series(f"class ({cls})", points[cls], "columns", "speedup")
        )
    return "\n".join(blocks)


def class_summary(points: dict[str, list[tuple[int, float]]]) -> dict[str, dict[str, float]]:
    """Median / max speedup per class — the paper's qualitative claims."""
    out = {}
    for cls, pts in points.items():
        speedups = np.array([s for _, s in pts])
        out[cls] = {
            "count": float(speedups.size),
            "median": float(np.median(speedups)),
            "max": float(speedups.max()),
            "min": float(speedups.min()),
        }
    return out
