"""Table 1: SpMV performance of 18 named matrices, ours vs. Alappat et al.

The paper's Table 1 lists Gflop/s of CSR SpMV with 48 threads and no
sector cache.  Offline we run the synthetic proxies through the simulated
testbed and the performance model, printing the modelled Gflop/s next to
both published columns.  The published numbers are reference constants —
the reproduction target is the *spread* (5-120 Gflop/s driven by locality)
and the relative ordering, not absolute agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import render_table
from ..machine.perfmodel import PerformanceModel
from ..matrices.table1 import TABLE1, Table1Entry
from .common import ExperimentSetup, measure_matrix


@dataclass(frozen=True)
class Table1Row:
    name: str
    rows_published: int
    nnz_published: int
    gflops_ours: float
    gflops_paper: float
    gflops_alappat: float


def run_table1(
    setup: ExperimentSetup | None = None,
    proxy_scale: int | None = None,
    entries: tuple[Table1Entry, ...] = TABLE1,
) -> list[Table1Row]:
    """Measure every Table-1 proxy and model its full-machine Gflop/s."""
    setup = setup or ExperimentSetup(
        l2_way_options=(0,), l1_way_options=(0,)  # Table 1 runs without sectors
    )
    machine = setup.machine()
    perf = PerformanceModel(machine)
    rows = []
    for entry in entries:
        matrix = entry.proxy(proxy_scale)
        record = measure_matrix(matrix, setup, perf_model=perf)
        rows.append(
            Table1Row(
                name=entry.name,
                rows_published=entry.rows,
                nnz_published=entry.nnz,
                gflops_ours=record.gflops(0, 0),
                gflops_paper=entry.gflops_paper,
                gflops_alappat=entry.gflops_alappat,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    return render_table(
        ["Matrix", "Rows", "Nonzeros", "Gflop/s (model)", "Gflop/s (paper)", "Gflop/s [1]"],
        [
            (
                r.name,
                f"{r.rows_published / 1e6:.3f}M",
                f"{r.nnz_published / 1e6:.1f}M",
                f"{r.gflops_ours:.1f}",
                f"{r.gflops_paper:.1f}",
                f"{r.gflops_alappat:.1f}",
            )
            for r in rows
        ],
        title="Table 1: CSR SpMV, 48 threads, sector cache disabled",
    )
