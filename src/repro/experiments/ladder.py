"""The ``ladder`` experiment: Method C's cost/fidelity trade-off, tabulated.

Runs every matrix of a collection through :class:`repro.ladder.Ladder`
at one accuracy SLO and prints, per matrix, the tier that answered, its
error bound, the measured and predicted cost, and the escalation path —
then a per-tier summary.  This is the operational view of the fidelity
ladder (which tier would your SLO actually buy?); the calibration view
(are the bounds honest?) lives in ``benchmarks/bench_fidelity.py``.
"""

from __future__ import annotations

from collections import Counter

from ..ladder import Ladder, LadderAnswer, MatrixDims
from ..matrices.collection import collection
from ..spmv.sector_policy import SectorPolicy
from .common import ExperimentSetup


def run_ladder(
    collection_name: str,
    setup: ExperimentSetup,
    accuracy: float | None = None,
    max_tier: int = 3,
    limit: int | None = None,
    verbose: bool = False,
) -> list[dict]:
    """One ``predict`` ladder answer per collection matrix.

    Returns rows of ``{name, class, tier, bound, cost_seconds,
    predicted_seconds, tiers_tried, slo_met}``.
    """
    machine = setup.machine()
    ladder = Ladder(setup)
    policies = [
        SectorPolicy.from_dict({"l2_sector1_ways": w}).to_dict()
        for w in setup.l2_way_options
    ]
    specs = collection(collection_name, machine=machine)
    if limit is not None:
        specs = specs[:limit]
    rows = []
    for spec in specs:
        matrix = spec.materialize()
        dims = MatrixDims.of(matrix)
        answer: LadderAnswer = ladder.answer(
            "predict", dims, lambda m=matrix: m, name=matrix.name,
            accuracy=accuracy, max_tier=max_tier, policies=policies,
        )
        from ..core.classification import classify

        cls = classify(dims, machine, max(setup.l2_way_options),
                       -(-setup.num_threads // machine.cores_per_cmg))
        rows.append({
            "name": matrix.name,
            "class": cls.value,
            "tier": answer.tier,
            "bound": answer.error_bound,
            "cost_seconds": answer.cost_seconds,
            "predicted_seconds": answer.predicted_cost_seconds,
            "tiers_tried": list(answer.tiers_tried),
            "slo_met": answer.slo_met,
        })
        if verbose:
            print(f"  {matrix.name}: tier {answer.tier} "
                  f"(bound {answer.error_bound:.3f}, "
                  f"{answer.cost_seconds * 1e3:.1f} ms)")
    return rows


def render_ladder(rows: list[dict], accuracy: float | None,
                  max_tier: int) -> str:
    """The per-matrix table plus the per-tier summary."""
    slo = "none (legacy fidelity)" if accuracy is None else f"{accuracy:g}"
    lines = [
        f"Method C fidelity ladder: predict, accuracy SLO = {slo}, "
        f"max tier = {max_tier}",
        f"{'matrix':<28} {'class':>5} {'tier':>4} {'bound':>7} "
        f"{'cost[ms]':>9} {'pred[ms]':>9} {'met':>4}  tiers tried",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<28} {row['class']:>5} {row['tier']:>4} "
            f"{row['bound']:>7.3f} {row['cost_seconds'] * 1e3:>9.2f} "
            f"{row['predicted_seconds'] * 1e3:>9.2f} "
            f"{'yes' if row['slo_met'] else 'NO':>4}  "
            + "->".join(str(t) for t in row["tiers_tried"])
        )
    tiers = Counter(row["tier"] for row in rows)
    escalated = sum(1 for row in rows if len(row["tiers_tried"]) > 1)
    unmet = sum(1 for row in rows if not row["slo_met"])
    total_ms = sum(row["cost_seconds"] for row in rows) * 1e3
    lines.append(
        "per-tier answers: "
        + ", ".join(f"tier {t}: {tiers[t]}" for t in sorted(tiers))
        + f"; escalated: {escalated}/{len(rows)}"
        + f"; SLO unmet: {unmet}"
        + f"; total cost: {total_ms:.1f} ms"
    )
    return "\n".join(lines)
