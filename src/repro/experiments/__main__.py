"""``python -m repro.experiments`` forwards to the runner CLI."""

import sys

from .runner import main

sys.exit(main())
