"""Experiment drivers: one module per table/figure of the paper."""

from .common import (
    ExperimentSetup,
    MatrixRecord,
    collection_records,
    failure_entry_path,
    measure_matrix,
    record_fingerprint,
    run_collection,
)
from .pool import SweepFailure, SweepResult, fork_executor, run_collection_parallel
from .figure2 import best_l2_ways, figure2_series, render_figure2
from .figure3 import figure3_series, headline_numbers, render_figure3
from .figure4 import class_summary, figure4_points, render_figure4
from .figure5 import correlation, figure5_points, render_figure5
from .table1 import Table1Row, render_table1, run_table1
from .tables23 import (
    AccuracyRow,
    accuracy_rows,
    l1_accuracy,
    method_overhead,
    render_accuracy_table,
)

__all__ = [
    "AccuracyRow",
    "ExperimentSetup",
    "MatrixRecord",
    "Table1Row",
    "accuracy_rows",
    "best_l2_ways",
    "class_summary",
    "collection_records",
    "correlation",
    "failure_entry_path",
    "figure2_series",
    "fork_executor",
    "figure3_series",
    "figure4_points",
    "figure5_points",
    "headline_numbers",
    "l1_accuracy",
    "measure_matrix",
    "method_overhead",
    "record_fingerprint",
    "run_collection_parallel",
    "SweepFailure",
    "SweepResult",
    "render_accuracy_table",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_table1",
    "run_collection",
    "run_table1",
]
