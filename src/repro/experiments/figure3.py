"""Figure 3: distribution of SpMV speedup per sector configuration.

Boxplots over the collection of the (modelled) speedup of each sector
configuration — L2 ways 2-6, L1 sector off / 1 / 2 ways — over the
no-sector baseline, 48 threads.  The paper's headline numbers: 5 L2 ways
is best overall, median speedup ~1.05x, maximum ~1.6x, and enabling the
L1 sector cache degrades performance.
"""

from __future__ import annotations

import numpy as np

from ..analysis.boxstats import BoxStats, box_stats, render_box_table
from .common import MatrixRecord

L2_WAYS = (2, 3, 4, 5, 6)
L1_WAYS = (0, 1, 2)


def figure3_series(
    records: list[MatrixRecord],
    l2_ways: tuple[int, ...] = L2_WAYS,
    l1_ways: tuple[int, ...] = L1_WAYS,
) -> dict[tuple[int, int], BoxStats]:
    """Boxplot stats of speedups, keyed by (L2 ways, L1 ways)."""
    out = {}
    for l1w in l1_ways:
        for l2w in l2_ways:
            speedups = np.array([r.speedup(l2w, l1w) for r in records])
            out[(l2w, l1w)] = box_stats(speedups)
    return out


def render_figure3(series: dict[tuple[int, int], BoxStats]) -> str:
    rows = []
    for (l2w, l1w), stats in sorted(series.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        l1_label = "no" if l1w == 0 else str(l1w)
        rows.append((f"L2 ways {l2w}, {l1_label} L1 ways", stats))
    return "Figure 3: SpMV speedup over no-sector baseline\n" + render_box_table(
        rows, "1.0 = baseline"
    )


def headline_numbers(records: list[MatrixRecord], l2_ways: int = 5) -> dict[str, float]:
    """The paper's summary stats for the best configuration (5 L2 ways)."""
    speedups = np.array([r.speedup(l2_ways, 0) for r in records])
    return {
        "median_speedup": float(np.median(speedups)),
        "max_speedup": float(speedups.max()),
        "fraction_at_or_above_baseline": float((speedups >= 1.0).mean()),
        "fraction_10pct_or_more": float((speedups >= 1.10).mean()),
    }
