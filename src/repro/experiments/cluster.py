"""The ``cluster`` experiment: a sharded-advisor tour on one machine.

Spins up a gateway plus N replica daemons in-process
(:class:`repro.cluster.ClusterHarness`), streams a whole collection
through ``POST /batch``, then demonstrates the cluster's operational
story end to end:

1. **cold pass** — every matrix routed by its request key; the routing
   table shows how the consistent-hash ring spreads the collection;
2. **warm pass** — the same batch again; every answer now comes from
   the owning replica's memory tier;
3. **failover** — one replica is killed and the batch repeated; the
   gateway ejects it on the first dead socket and fails the affected
   keys over (zero lost requests), while unaffected keys stay warm;
4. **recovery** — the replica restarts cache-cold (a replacement node)
   and is re-admitted; keys that remapped back carry peer hints, so the
   rebalanced entries are refilled from the interim owners' caches
   instead of re-evaluated.

Run via ``python -m repro.experiments --exp cluster`` (opt-in, not part
of ``all``); ``--replicas`` and ``--window`` tune the topology.
"""

from __future__ import annotations

import time

from ..cluster import ClusterHarness
from ..matrices.collection import collection
from ..obs.tracer import get_tracer, span
from ..obs.tree import TraceTree
from .common import ExperimentSetup


def _batch_pass(client, names: list[str], collection_name: str,
                setup_fields: dict, window: int) -> dict:
    """One streamed batch; returns counts plus elapsed seconds."""
    items = [{"name": name, "collection": collection_name} for name in names]
    started = time.perf_counter()
    lines = list(client.batch("advise", items, window=window,
                              setup=setup_fields))
    elapsed = time.perf_counter() - started
    summary = lines[-1]["batch"]
    tiers: dict[str, int] = {}
    for line in lines[:-1]:
        tier = line.get("cached") or ("error" if not line.get("ok") else "fresh")
        tiers[tier] = tiers.get(tier, 0) + 1
    return {"ok": summary["ok"], "errors": summary["errors"],
            "elapsed_seconds": elapsed, "tiers": tiers}


def run_cluster(
    collection_name: str,
    setup: ExperimentSetup,
    replicas: int = 3,
    window: int = 8,
    limit: int | None = None,
    verbose: bool = False,
) -> dict:
    """The four-pass cluster tour; returns a summary dict for rendering."""
    specs = collection(collection_name, machine=setup.machine())
    if limit is not None:
        specs = specs[:limit]
    names = [spec.name for spec in specs]
    setup_fields = {"num_threads": setup.num_threads, "scale": setup.scale}

    summary: dict = {"replicas": replicas, "window": window,
                     "matrices": len(names)}
    with ClusterHarness(replicas=replicas, jobs=1,
                        gateway_config={"probe_interval_seconds": 0.3}) as h:
        client = h.client()
        for label in ("cold", "warm"):
            with span("cluster.pass", label=label):
                summary[label] = _batch_pass(client, names, collection_name,
                                             setup_fields, window)
            if verbose:
                print(f"  {label} pass: {summary[label]}")

        victim = 0
        h.kill_replica(victim)
        with span("cluster.pass", label="failover"):
            summary["failover"] = _batch_pass(client, names, collection_name,
                                              setup_fields, window)
        metrics = client.metrics()
        summary["failover"]["gateway"] = {
            "failovers": metrics["failovers"],
            "exhausted": metrics["exhausted"],
            "alive": metrics["membership"]["alive"],
        }
        if verbose:
            print(f"  failover pass: {summary['failover']}")

        # restart with a wiped cache dir (a replacement node): entries that
        # remap back must come from the interim owners' caches via peer
        # fill, not from a conveniently surviving local disk tier
        h.restart_replica(victim, clear_cache=True)
        h.wait_alive(replicas)
        with span("cluster.pass", label="recovery"):
            summary["recovery"] = _batch_pass(client, names, collection_name,
                                              setup_fields, window)
        peer_fill: dict[str, int] = {}
        for index in range(replicas):
            for outcome, count in h.replica_client(index).metrics()[
                    "peer_fill"].items():
                peer_fill[outcome] = peer_fill.get(outcome, 0) + count
        metrics = client.metrics()
        summary["recovery"]["gateway"] = {
            "peer_hints": metrics["peer_hints"],
            "readmissions": metrics["membership"]["readmissions"],
        }
        summary["recovery"]["peer_fill"] = peer_fill
        summary["routing"] = metrics["routed"].get("advise", {})

        # under --trace, fold one distributed trace into the run's tree:
        # a fresh traced request through the gateway comes back with ONE
        # merged tree (gateway.route -> gateway.forward -> the winning
        # replica's service.request -> pool.evaluate -> worker evaluate),
        # adopted here so the written trace spans gateway and replicas
        tracer = get_tracer()
        if tracer is not None:
            with tracer.span("cluster.traced_probe", matrix=names[0]):
                envelope = client.predict(
                    name=names[0], collection=collection_name,
                    policies=[{"l2_sector1_ways": 4}], trace=True,
                    **setup_fields,
                )
                if envelope.get("trace"):
                    tracer.adopt(TraceTree.from_dict(envelope["trace"]))
            summary["traced_probe"] = {
                "matrix": names[0],
                "merged_trace": envelope.get("trace") is not None,
            }
        if verbose:
            print(f"  recovery pass: {summary['recovery']}")
        client.close()
    return summary


def render_cluster(summary: dict) -> str:
    """The tour as a compact operator-readable report."""
    lines = [
        f"Sharded advisor cluster: {summary['replicas']} replicas, "
        f"batch window {summary['window']}, "
        f"{summary['matrices']} matrices",
        f"{'pass':<10} {'ok':>4} {'errors':>7} {'seconds':>9}  served from",
    ]
    for label in ("cold", "warm", "failover", "recovery"):
        entry = summary[label]
        tiers = " ".join(f"{tier}:{count}" for tier, count
                         in sorted(entry["tiers"].items()))
        lines.append(
            f"{label:<10} {entry['ok']:>4} {entry['errors']:>7} "
            f"{entry['elapsed_seconds']:>9.3f}  {tiers}"
        )
    gateway = summary["failover"]["gateway"]
    lines.append(
        f"failover: {gateway['failovers']} forward(s) retried, "
        f"{gateway['exhausted']} lost, {gateway['alive']} replicas left"
    )
    recovery = summary["recovery"]["gateway"]
    peer = summary["recovery"]["peer_fill"]
    lines.append(
        f"recovery: {recovery['readmissions']} readmission(s), "
        f"{recovery['peer_hints']} peer hint(s), peer fill "
        + (" ".join(f"{k}:{v}" for k, v in sorted(peer.items())) or "none")
    )
    lines.append("routing (advise forwards per replica): " + " ".join(
        f"{node}:{count}" for node, count in sorted(summary["routing"].items())
    ))
    return "\n".join(lines)
