"""Process-pool sweep engine for multi-matrix model evaluations.

The paper's headline experiments sweep 490 matrices x ~16 sector
configurations; the serial :func:`repro.experiments.common.run_collection`
walks them on one core.  This module fans the per-matrix work out over a
``ProcessPoolExecutor`` while keeping three guarantees:

* **Determinism** — results, their ordering, and the on-disk cache records
  are identical to the serial path (instrumentation fields excepted; see
  :data:`repro.experiments.common.VOLATILE_FIELDS`).  Workers only compute;
  the parent writes cache entries in spec order with the same serializer
  the serial path uses.
* **Fault isolation** — a worker exception is caught *inside* the worker
  and returned as a structured :class:`SweepFailure`; a per-matrix timeout
  is enforced by the parent.  Either way the sweep continues, and the
  failure is persisted next to the cache records as
  ``<cache_key>.failure.json``.
* **Work stealing** — matrices are submitted as small chunks, so idle
  workers pick up remaining chunks regardless of how unevenly sized the
  matrices are.

``MatrixSpec.build`` closures are not picklable, so the pool uses the
``fork`` start method and publishes the work list through module globals:
workers inherit the specs at fork time and only integer indices cross the
process boundary.  Platforms without ``fork`` fall back to an in-process
sweep with the same fault isolation and result shape.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..matrices.collection import MatrixSpec
from ..obs.tracer import Tracer, get_tracer, installed
from ..obs.tracer import span as obs_span
from ..obs.tree import TraceTree
from ..resilience import faults
from .common import (
    ExperimentSetup,
    MatrixRecord,
    failure_entry_path,
    load_cached_record,
    measure_matrix,
    store_record,
)


# Sockets registered by in-process daemons (advisor service, cluster
# gateway): listeners *and* accepted per-connection sockets.  A forked
# worker inherits every open fd, so a daemon socket stays alive in the
# kernel even after the daemon itself closes it (or dies), unless workers
# close their inherited copies.  The two failure modes are symmetric:
#
# * an inherited *listener* keeps completing TCP handshakes into a backlog
#   nobody accepts from — a black-hole port;
# * an inherited *accepted connection* suppresses the FIN/RST a client is
#   waiting on when the daemon dies mid-request — its ``readline`` then
#   blocks forever instead of failing over.
#
# Daemons register both kinds here; the worker initializer closes whatever
# was inherited.  Guarded only by the GIL: a socket registered concurrently
# with a fork is at worst missed by that one worker, which is the
# pre-registry status quo.
_PARENT_SOCKETS: list = []


def register_parent_socket(sock) -> None:
    """Record a daemon socket (listener or accepted connection) for
    forked workers to close."""
    _PARENT_SOCKETS.append(sock)


def unregister_parent_socket(sock) -> None:
    """Drop a closed daemon socket from the fork registry."""
    try:
        _PARENT_SOCKETS.remove(sock)
    except ValueError:
        pass


def _worker_signal_reset() -> None:
    """Detach a forked worker from the parent's signal plumbing and fds.

    A forked worker inherits the parent's Python-level signal handlers
    *and* its ``signal.set_wakeup_fd`` pipe.  When the advisor daemon's
    asyncio loop owns SIGINT/SIGTERM, a SIGTERM delivered to a worker
    (e.g. executor teardown after a sibling died) would run the inherited
    handler, write to the *shared* wakeup pipe, and trigger the parent's
    own shutdown callback — cleanly stopping the daemon because one of
    its children was told to exit.  Restore default dispositions and drop
    the wakeup fd so signals aimed at a worker stay in that worker.

    It also inherits any daemon sockets open at fork time (see
    :data:`_PARENT_SOCKETS`): listeners, which must be closed so a later
    daemon shutdown actually releases its port instead of leaving a
    kernel-side listener that accepts connections nobody will ever
    answer; and accepted connections, which must be closed so a daemon
    death actually resets its in-flight requests instead of leaving
    clients blocked on a socket the kernel still counts as open.
    """
    signal.set_wakeup_fd(-1)
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, signal.SIG_DFL)
    while _PARENT_SOCKETS:
        sock = _PARENT_SOCKETS.pop()
        # asyncio hands out TransportSocket wrappers without close();
        # closing the inherited fd directly works for those and for
        # plain sockets alike
        try:
            fd = sock.fileno()
            if fd >= 0:
                os.close(fd)
        except OSError:  # pragma: no cover - close of a dead fd
            pass


def fork_executor(jobs: int) -> ProcessPoolExecutor:
    """A process pool using the ``fork`` start method where available.

    Shared by the sweep engine and the advisor service
    (:mod:`repro.service`): ``fork`` keeps worker start-up cheap and lets
    workers inherit module state; platforms without it (Windows, some
    macOS configurations) fall back to the default start method, which
    only supports picklable work.
    """
    if "fork" in mp.get_all_start_methods():
        return ProcessPoolExecutor(max_workers=jobs,
                                   mp_context=mp.get_context("fork"),
                                   initializer=_worker_signal_reset)
    return ProcessPoolExecutor(max_workers=jobs)

# Work published to forked workers (MatrixSpec closures cannot be pickled;
# only chunk index lists are sent over the pipe).
_WORK_SPECS: list[MatrixSpec] = []
_WORK_SETUP: ExperimentSetup | None = None
#: when True, workers record a span tree per matrix and ship it back with
#: the record payload (set iff the parent has an ambient tracer installed)
_WORK_TRACE: bool = False


@dataclass(frozen=True)
class SweepFailure:
    """Structured record of one matrix whose measurement failed.

    Serialized as ``<cache_key>.failure.json`` in the cache directory so a
    resumed sweep can report (and retry) exactly what went wrong.
    """

    name: str
    index: int
    error_type: str
    message: str
    traceback: str = ""
    elapsed_seconds: float = 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


@dataclass
class SweepResult:
    """Outcome of a pooled sweep: ordered records plus isolated failures."""

    records: list[MatrixRecord]
    failures: list[SweepFailure] = field(default_factory=list)
    from_cache: int = 0
    wall_seconds: float = 0.0

    @property
    def failed_names(self) -> list[str]:
        return [f.name for f in self.failures]


def _measure_one(spec: MatrixSpec) -> MatrixRecord:
    with obs_span("materialize", matrix=spec.name):
        matrix = spec.materialize()
    return measure_matrix(matrix, _WORK_SETUP)


def _measure_chunk(indices: list[int]) -> list[dict]:
    """Worker body: measure a chunk of specs with per-matrix isolation.

    With tracing on, each matrix is measured under a fresh worker-local
    tracer and its serialized span tree travels back in the payload; the
    parent adopts the trees in spec order, so the assembled run tree is
    independent of worker scheduling.

    The ``pool.worker`` fault site fires once per matrix against the
    ambient plan inherited across ``fork`` (see
    :mod:`repro.resilience.faults`): a ``crash`` dies like a segfault and
    surfaces as pool breakage, a ``delay`` runs into the parent's
    per-matrix timeout, and an ``error`` lands in the structured
    :class:`SweepFailure` path — all three already-handled failure modes,
    now reachable deterministically.
    """
    payloads: list[dict] = []
    for index in indices:
        spec = _WORK_SPECS[index]
        started = time.perf_counter()
        try:
            faults.perform(faults.fire("pool.worker"))
            if _WORK_TRACE:
                with installed(Tracer(memory="rss")) as tracer:
                    record = _measure_one(spec)
                payloads.append({
                    "index": index,
                    "record": asdict(record),
                    "trace": tracer.tree().to_dict(),
                })
            else:
                record = _measure_one(spec)
                payloads.append({"index": index, "record": asdict(record)})
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            payloads.append(
                {
                    "index": index,
                    "failure": {
                        "name": spec.name,
                        "index": index,
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback.format_exc(),
                        "elapsed_seconds": time.perf_counter() - started,
                    },
                }
            )
    return payloads


def _chunk(pending: list[int], jobs: int, chunksize: int | None) -> list[list[int]]:
    """Contiguous chunks sized for work stealing (several per worker)."""
    if chunksize is None:
        chunksize = max(1, min(8, len(pending) // (jobs * 4) or 1))
    return [pending[i : i + chunksize] for i in range(0, len(pending), chunksize)]


def run_collection_parallel(
    specs: list[MatrixSpec],
    setup: ExperimentSetup,
    cache_dir: str | Path | None = ".repro_cache",
    jobs: int = 2,
    timeout: float | None = None,
    verbose: bool = False,
    chunksize: int | None = None,
    retry_failures: bool = False,
) -> SweepResult:
    """Sweep a collection over a process pool with per-matrix isolation.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` still goes through the pooled result
        assembly (useful for failure isolation without parallelism) but
        runs in-process.
    timeout:
        Per-matrix wall-clock budget in seconds, enforced by the parent
        while collecting a chunk (budget = ``timeout * len(chunk)``).  A
        timed-out chunk is recorded as failures and the sweep continues;
        the stuck worker is abandoned to finish in the background.
    chunksize:
        Matrices per submitted task; defaults to a size giving each worker
        ~4 chunks so stragglers are stolen.
    retry_failures:
        Re-queue matrices whose previous sweep left a
        ``<cache_key>.failure.json`` record (the default is to replay the
        recorded failure without re-paying the measurement or timeout);
        the record is deleted when the retry succeeds.
    """
    if jobs < 1:
        raise ValueError("jobs must be positive")
    started = time.perf_counter()
    cache_path = Path(cache_dir) if cache_dir else None
    if cache_path:
        cache_path.mkdir(parents=True, exist_ok=True)

    slots: list[MatrixRecord | None] = [None] * len(specs)
    failures: list[SweepFailure] = []
    pending: list[int] = []
    from_cache = 0
    for i, spec in enumerate(specs):
        cached = load_cached_record(cache_path, setup, spec.name)
        if cached is not None:
            slots[i] = cached
            from_cache += 1
            continue
        if cache_path is not None and not retry_failures:
            entry = failure_entry_path(cache_path, setup, spec.name)
            if entry.exists():
                payload = json.loads(entry.read_text())
                payload["index"] = i  # position in *this* sweep's spec list
                failures.append(SweepFailure(**payload))
                from_cache += 1
                continue
        pending.append(i)

    trees: dict[int, dict] = {}
    if pending:
        use_pool = jobs > 1 and "fork" in mp.get_all_start_methods()
        global _WORK_SPECS, _WORK_SETUP, _WORK_TRACE
        _WORK_SPECS, _WORK_SETUP = list(specs), setup
        _WORK_TRACE = get_tracer() is not None
        try:
            with obs_span("run_collection", matrices=len(specs), jobs=jobs):
                if use_pool:
                    _run_pooled(
                        pending, jobs, timeout, chunksize, slots, failures, specs,
                        trees,
                    )
                else:
                    for payload in _measure_chunk(pending):
                        _absorb(payload, slots, failures, trees)
                # reassemble one tree per run: worker span trees are adopted
                # in spec order, independent of completion order
                tracer = get_tracer()
                if tracer is not None:
                    for index in sorted(trees):
                        tracer.adopt(TraceTree.from_dict(trees[index]))
        finally:
            _WORK_SPECS, _WORK_SETUP, _WORK_TRACE = [], None, False

    # deterministic persistence: cache entries and failure records are
    # written by the parent, in spec order, with the serial serializer
    pending_set = set(pending)
    for i, spec in enumerate(specs):
        if i in pending_set and slots[i] is not None:
            store_record(cache_path, setup, slots[i])
    failures.sort(key=lambda f: f.index)
    if cache_path:
        for failure in failures:
            failure_entry_path(cache_path, setup, failure.name).write_text(
                failure.to_json()
            )
    if verbose:
        for failure in failures:
            print(
                f"[failed] {failure.name}: {failure.error_type}: {failure.message}"
            )

    records = [record for record in slots if record is not None]
    return SweepResult(
        records=records,
        failures=failures,
        from_cache=from_cache,
        wall_seconds=time.perf_counter() - started,
    )


def _run_pooled(
    pending: list[int],
    jobs: int,
    timeout: float | None,
    chunksize: int | None,
    slots: list[MatrixRecord | None],
    failures: list[SweepFailure],
    specs: list[MatrixSpec],
    trees: dict[int, dict],
) -> None:
    chunks = _chunk(pending, jobs, chunksize)
    pool = fork_executor(jobs)
    try:
        futures = [(chunk, pool.submit(_measure_chunk, chunk)) for chunk in chunks]
        for chunk, future in futures:
            budget = timeout * len(chunk) if timeout is not None else None
            try:
                payloads = future.result(timeout=budget)
            except FutureTimeout:
                future.cancel()
                for index in chunk:
                    failures.append(
                        SweepFailure(
                            name=specs[index].name,
                            index=index,
                            error_type="TimeoutError",
                            message=f"exceeded {timeout:.3g}s per-matrix budget",
                        )
                    )
                continue
            except Exception as exc:  # pool breakage (worker died hard)
                for index in chunk:
                    failures.append(
                        SweepFailure(
                            name=specs[index].name,
                            index=index,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        )
                    )
                continue
            for payload in payloads:
                _absorb(payload, slots, failures, trees)
    finally:
        # don't block the sweep on abandoned (timed-out) workers
        pool.shutdown(wait=timeout is None, cancel_futures=True)


def _absorb(
    payload: dict,
    slots: list[MatrixRecord | None],
    failures: list[SweepFailure],
    trees: dict[int, dict],
) -> None:
    if "record" in payload:
        slots[payload["index"]] = MatrixRecord(**payload["record"])
    else:
        failures.append(SweepFailure(**payload["failure"]))
    if "trace" in payload:
        trees[payload["index"]] = payload["trace"]
