"""Tables 2 and 3: accuracy of the cache-miss model (MAPE of Eq. 3).

Table 2 evaluates sequential SpMV, Table 3 parallel SpMV with 48 threads.
For every L2 sector configuration (none, 2-7 ways for the matrix data),
the mean and standard deviation of the absolute percentage error between
the simulated ("measured") and the predicted L2 misses is reported for
methods (A) and (B).  Following the paper, only matrices whose working
set exceeds the L2 capacity seen by the run (one segment sequentially,
all four in parallel) enter the statistics, and the Section-4.5.2
regularity filter (mu_K >= 8, CV_K <= 1) is available for the method-B
sensitivity numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.mape import ErrorStats, error_stats
from ..analysis.report import render_table
from ..machine.a64fx import A64FX
from .common import MatrixRecord


@dataclass(frozen=True)
class AccuracyRow:
    """One table row: errors of both methods for one configuration."""

    config: str
    method_a: ErrorStats
    method_b: ErrorStats


def _eligible(records: list[MatrixRecord], machine: A64FX, parallel: bool) -> list[MatrixRecord]:
    threshold = machine.l2.capacity_bytes * (machine.num_cmgs if parallel else 1)
    return [r for r in records if r.working_set_bytes > threshold]


def accuracy_rows(
    records: list[MatrixRecord],
    machine: A64FX,
    parallel: bool,
    l2_way_options: tuple[int, ...] = (0, 2, 3, 4, 5, 6, 7),
    regular_only: bool = False,
) -> list[AccuracyRow]:
    """MAPE rows for the given configurations over eligible matrices."""
    eligible = _eligible(records, machine, parallel)
    if regular_only:
        eligible = [
            r for r in eligible if r.mean_nnz_per_row >= 8.0 and r.cv_nnz_per_row <= 1.0
        ]
    rows = []
    for l2w in l2_way_options:
        usable = [r for r in eligible if r.l2_misses(l2w, 0) > 0]
        if not usable:
            continue
        measured = np.array([r.l2_misses(l2w, 0) for r in usable], dtype=np.float64)
        pred_a = np.array([r.model_a[str(l2w)] for r in usable], dtype=np.float64)
        pred_b = np.array([r.model_b[str(l2w)] for r in usable], dtype=np.float64)
        label = "No Sector Cache" if l2w == 0 else f"{l2w} L2 ways"
        rows.append(
            AccuracyRow(
                config=label,
                method_a=error_stats(measured, pred_a),
                method_b=error_stats(measured, pred_b),
            )
        )
    return rows


def l1_accuracy(records: list[MatrixRecord], machine: A64FX, parallel: bool) -> AccuracyRow:
    """Section 4.5.4: L1 miss-prediction error, sector cache off."""
    eligible = [
        r
        for r in _eligible(records, machine, parallel)
        if r.measured["0,0"]["l1_refill"] > 0
    ]
    measured = np.array([r.measured["0,0"]["l1_refill"] for r in eligible], dtype=np.float64)
    pred_a = np.array([r.model_a_l1 for r in eligible], dtype=np.float64)
    pred_b = np.array([r.model_b_l1 for r in eligible], dtype=np.float64)
    return AccuracyRow(
        config="L1, no sector cache",
        method_a=error_stats(measured, pred_a),
        method_b=error_stats(measured, pred_b),
    )


def render_accuracy_table(rows: list[AccuracyRow], title: str) -> str:
    return render_table(
        ["L2 Sector Cache", "A: Mean", "A: Std", "B: Mean", "B: Std", "n"],
        [
            (
                row.config,
                f"{row.method_a.mape:.2f} %",
                f"{row.method_a.std:.2f} %",
                f"{row.method_b.mape:.2f} %",
                f"{row.method_b.std:.2f} %",
                row.method_a.count,
            )
            for row in rows
        ],
        title=title,
    )


def method_overhead(records: list[MatrixRecord]) -> dict[str, float]:
    """Section 4.5.1: average t_A / t_B and the absolute method-B runtime."""
    ratios = [
        r.model_a_seconds / r.model_b_seconds
        for r in records
        if r.model_b_seconds > 0
    ]
    return {
        "mean_ta_over_tb": float(np.mean(ratios)) if ratios else 0.0,
        "mean_tb_seconds": float(np.mean([r.model_b_seconds for r in records])),
        "mean_ta_seconds": float(np.mean([r.model_a_seconds for r in records])),
    }
