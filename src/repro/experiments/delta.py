"""The ``delta`` experiment: incremental reuse patching across the taxonomy.

For one representative matrix per paper class (banded, block-diagonal,
random, power-law) this builds a locality-preserving edit batch, prices
it twice — through :meth:`repro.delta.ReuseState.apply` (the incremental
engine behind ``POST /delta``) and through a fresh
:func:`~repro.delta.full_reuse_state` pass — and tabulates which path
the engine took, the measured work against the patch budget, the
speedup, and whether the patched distances are byte-identical to the
fresh pass.

The expected shape *is* the paper's locality argument: classes 1 and 2
localize an edit inside short reuse windows (incremental, exact, large
speedup); classes 3a/3b couple an edit to trace-spanning windows, the
budget overflows, and the engine falls back to the full pass — reported
honestly rather than hidden.  ``benchmarks/bench_delta.py`` reuses this
harness for its committed regression numbers.
"""

from __future__ import annotations

import time

import numpy as np

from ..delta import BudgetExceeded, DEFAULT_BUDGET, MatrixDelta, full_reuse_state
from ..matrices.generators import (
    banded,
    block_diagonal,
    power_law,
    random_uniform,
)
from ..spmv.csr import CSRMatrix
from .common import ExperimentSetup

#: One representative generator per paper class; sized so a full pass is
#: expensive enough to measure but the experiment stays interactive.
CLASS_CASES = (
    ("1", "banded", lambda n: banded(n, 16, 12, seed=7, name="banded")),
    ("2", "block_diagonal",
     lambda n: block_diagonal(n, 64, fill=0.25, seed=7, name="block")),
    ("3a", "random_uniform",
     lambda n: random_uniform(n, 8, seed=7, name="random")),
    ("3b", "power_law", lambda n: power_law(n, 8, seed=7, name="power")),
)


def pattern_edits(matrix: CSRMatrix, count: int, seed: int = 0) -> MatrixDelta:
    """A locality-preserving edit batch: neighbor inserts plus deletes.

    Inserts go next to existing nonzeros (the column neighbors an edge
    the row already has), the way dynamic graphs densify neighborhoods;
    deletes remove existing edges.  Both kinds of edit perturb the
    x-access trace only where the structure already reuses, which is what
    gives the incremental engine its chance on classes 1 and 2.
    """
    rng = np.random.default_rng(seed)
    nnz_per_row = np.diff(matrix.rowptr)
    occupied = np.flatnonzero(nnz_per_row > 0)
    n_inserts = count - count // 2
    inserts: list[list] = []
    deletes: list[list] = []
    taken: set[tuple[int, int]] = set()
    for r in rng.permutation(occupied):
        if len(inserts) >= n_inserts:
            break
        r = int(r)
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]]
        colset = set(cols.tolist())
        c0 = int(cols[rng.integers(len(cols))])
        for c in (c0 + 1, c0 - 1, c0 + 2, c0 - 2):
            if (0 <= c < matrix.num_cols and c not in colset
                    and (r, c) not in taken):
                inserts.append([r, c, 1.0])
                taken.add((r, c))
                break
    for r in rng.permutation(occupied):
        if len(deletes) >= count // 2:
            break
        r = int(r)
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]]
        c = int(cols[rng.integers(len(cols))])
        if (r, c) not in taken:
            deletes.append([r, c])
            taken.add((r, c))
    return MatrixDelta.from_dict({"inserts": inserts, "deletes": deletes})


def measure_delta(matrix: CSRMatrix, line_size: int, delta: MatrixDelta,
                  budget: int = DEFAULT_BUDGET) -> dict:
    """Patch vs full pass on one matrix; the shared measurement core.

    The prefix state is captured first (that cost is the *base*
    request's, paid once and cached by the service/worker); both timed
    paths then start from the edit batch: CSR apply + incremental patch
    against CSR apply + full periodic pass.
    """
    state = full_reuse_state(matrix, line_size)

    t0 = time.perf_counter()
    application = delta.apply(matrix)
    try:
        patched = state.apply(application, budget)
        path, reason, work = "incremental", None, None
    except BudgetExceeded as exc:
        patched, path, reason, work = None, "fallback", "budget", exc.work
    incremental_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    application = delta.apply(matrix)
    full = full_reuse_state(application.matrix, line_size)
    full_seconds = time.perf_counter() - t0

    return {
        "nnz": int(matrix.nnz),
        "edits": delta.num_edits,
        "path": path,
        "reason": reason,
        "work": work,
        "budget": budget,
        "incremental_seconds": incremental_seconds,
        "full_seconds": full_seconds,
        "speedup": (full_seconds / incremental_seconds
                    if path == "incremental" else None),
        "identical": (patched is not None
                      and np.array_equal(patched.rd, full.rd)),
    }


def run_delta(setup: ExperimentSetup, n: int = 200_000, edits: int = 64,
              budget: int = DEFAULT_BUDGET, seed: int = 0,
              verbose: bool = False) -> list[dict]:
    """One delta-vs-full measurement per paper class."""
    machine = setup.machine()
    rows = []
    for cls, label, make in CLASS_CASES:
        matrix = make(n)
        delta = pattern_edits(matrix, edits, seed=seed)
        row = {"class": cls, "matrix": label}
        row.update(measure_delta(matrix, machine.line_size, delta,
                                 budget=budget))
        rows.append(row)
        if verbose:
            print(f"  {label}: {row['path']}"
                  + (f" ({row['speedup']:.1f}x)" if row["speedup"] else ""))
    return rows


def render_delta(rows: list[dict]) -> str:
    """The per-class table plus the identity/speedup summary."""
    lines = [
        "Incremental reuse engine: patch vs full periodic pass per class",
        f"{'class':>5} {'matrix':<16} {'nnz':>9} {'edits':>5} "
        f"{'path':<12} {'work':>9} {'patch[ms]':>10} {'full[ms]':>9} "
        f"{'speedup':>8} {'exact':>6}",
    ]
    for row in rows:
        work = row["work"] if row["work"] is not None else "-"
        speedup = f"{row['speedup']:.1f}x" if row["speedup"] else "-"
        exact = "byte" if row["identical"] else "n/a"
        path = row["path"] + (f"({row['reason']})" if row["reason"] else "")
        lines.append(
            f"{row['class']:>5} {row['matrix']:<16} {row['nnz']:>9} "
            f"{row['edits']:>5} {path:<12} {work:>9} "
            f"{row['incremental_seconds'] * 1e3:>10.2f} "
            f"{row['full_seconds'] * 1e3:>9.2f} {speedup:>8} {exact:>6}"
        )
    incremental = [r for r in rows if r["path"] == "incremental"]
    mismatches = sum(1 for r in incremental if not r["identical"])
    lines.append(
        f"incremental: {len(incremental)}/{len(rows)} classes"
        f"; byte-identity mismatches: {mismatches}"
        + (f"; min speedup: "
           f"{min(r['speedup'] for r in incremental):.1f}x"
           if incremental else "")
    )
    return "\n".join(lines)
