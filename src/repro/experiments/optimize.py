"""The ``optimize`` experiment: reordering improvements per paper class.

Runs the budgeted reordering search (:mod:`repro.optimize`) over every
matrix of a collection and prints, per matrix, the winning strategy and
the tier-2-confirmed before/after L2 misses — then a per-class summary
(which locality classes reordering actually helps).  Class 1/2 matrices
gate out (the closed forms already price x at zero misses under the best
policy); class-3 matrices with recoverable structure are where the wins
live.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.classification import classify
from ..ladder import MatrixDims
from ..matrices.collection import collection
from ..optimize import SearchConfig, optimize
from .common import ExperimentSetup


def run_optimize(
    collection_name: str,
    setup: ExperimentSetup,
    config: SearchConfig | None = None,
    limit: int | None = None,
    verbose: bool = False,
) -> list[dict]:
    """One reordering search per collection matrix.

    Returns rows of ``{name, class, winner, gated, before, after,
    improvement, answers}``.
    """
    machine = setup.machine()
    config = config or SearchConfig()
    specs = collection(collection_name, machine=machine)
    if limit is not None:
        specs = specs[:limit]
    rows = []
    for spec in specs:
        matrix = spec.materialize()
        dims = MatrixDims.of(matrix)
        cls = classify(dims, machine, max(setup.l2_way_options),
                       -(-setup.num_threads // machine.cores_per_cmg))
        result = optimize(matrix, setup, config).to_dict()
        confirmation = result["confirmation"]
        rows.append({
            "name": matrix.name,
            "class": cls.value,
            "winner": result["winner"]["label"],
            "gated": result["fidelity"]["gated"],
            "before": confirmation["before_misses"],
            "after": confirmation["after_misses"],
            "improvement": confirmation["improvement"],
            "answers": result["fidelity"]["ladder_answers"],
        })
        if verbose:
            print(f"  {matrix.name}: {result['winner']['label']} "
                  f"({confirmation['improvement']:+.1%})")
    return rows


def render_optimize(rows: list[dict], config: SearchConfig) -> str:
    """The per-matrix table plus the per-class improvement summary."""
    lines = [
        f"Reordering search: strategies = {', '.join(config.strategies)}, "
        f"budget = {config.budget_seconds:g}s, seed = {config.seed}",
        f"{'matrix':<28} {'class':>5} {'winner':<16} {'before':>10} "
        f"{'after':>10} {'improve':>8}  answers",
    ]
    for row in rows:
        answers = " ".join(f"t{t}:{n}" for t, n in sorted(row["answers"].items()))
        winner = row["winner"] + (" (gated)" if row["gated"] else "")
        lines.append(
            f"{row['name']:<28} {row['class']:>5} {winner:<16} "
            f"{row['before']:>10} {row['after']:>10} "
            f"{row['improvement']:>7.1%}  {answers}"
        )
    by_class: dict[str, list[dict]] = defaultdict(list)
    for row in rows:
        by_class[row["class"]].append(row)
    lines.append("per-class improvement:")
    for cls in sorted(by_class):
        group = by_class[cls]
        improved = [r for r in group if r["improvement"] > 0]
        best = max(group, key=lambda r: r["improvement"])
        mean = sum(r["improvement"] for r in group) / len(group)
        lines.append(
            f"  class {cls}: {len(improved)}/{len(group)} improved, "
            f"mean {mean:.1%}, best {best['improvement']:.1%} "
            f"({best['name']} via {best['winner']})"
        )
    return "\n".join(lines)
