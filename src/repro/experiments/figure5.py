"""Figure 5: speedup versus change in L2 demand misses.

Scatter (5 L2 ways, matrices whose working set exceeds the L2) of speedup
against the relative change in L2 *demand* misses after enabling the
sector cache.  The paper's reading: speedups come with demand-miss
reductions; the top speedups (1.2x+) show 30-80 % fewer demand misses.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..analysis.report import render_series
from ..machine.a64fx import A64FX
from .common import MatrixRecord


def figure5_points(
    records: list[MatrixRecord],
    machine: A64FX,
    l2_ways: int = 5,
) -> dict[str, list[tuple[float, float]]]:
    """(demand-miss change %, speedup) points by class, classes (2)-(3b).

    Class-(1) matrices are excluded like in the paper (working set below
    the cache, demand misses dominated by noise).
    """
    out: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for r in records:
        cls = r.matrix_class(l2_ways)
        if cls == "1":
            continue
        out[cls].append((r.demand_change_percent(l2_ways, 0), r.speedup(l2_ways, 0)))
    return {k: sorted(v) for k, v in out.items()}


def render_figure5(points: dict[str, list[tuple[float, float]]]) -> str:
    blocks = [
        "Figure 5: speedup vs difference in L2 demand misses [%], 5 L2 ways"
    ]
    for cls in sorted(points):
        blocks.append(
            render_series(
                f"class ({cls})", points[cls], "demand-miss change %", "speedup"
            )
        )
    return "\n".join(blocks)


def correlation(points: dict[str, list[tuple[float, float]]]) -> float:
    """Pearson correlation between demand-miss change and speedup.

    The paper reports a strong negative relationship (fewer demand misses,
    more speedup).
    """
    xs, ys = [], []
    for pts in points.values():
        for x, y in pts:
            xs.append(x)
            ys.append(y)
    if len(xs) < 2:
        return 0.0
    xs_arr, ys_arr = np.array(xs), np.array(ys)
    if xs_arr.std() == 0 or ys_arr.std() == 0:
        return 0.0
    return float(np.corrcoef(xs_arr, ys_arr)[0, 1])
