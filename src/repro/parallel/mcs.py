"""MCS queue lock (Mellor-Crummey & Scott) and FIFO trace collation.

The paper records multi-threaded traces by ordering access submissions
through an MCS lock because it guarantees starvation freedom and FIFO
fairness.  This module provides a discrete-event emulation of the lock and a
collator built on it; the collator's output is the fair round-robin order
that :func:`repro.parallel.interleave.interleave` produces directly, which a
test asserts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class _QNode:
    """One waiter's queue node (the per-thread record of the real lock)."""

    thread: int
    locked: bool = True
    next: "_QNode | None" = None


@dataclass
class MCSLock:
    """Discrete-event MCS lock: explicit queue with FIFO handoff.

    The shared state of the real algorithm is a single tail pointer; each
    waiter spins on its own node.  The emulation keeps the same structure —
    ``acquire`` swings the tail and links the node, ``release`` hands the
    lock to ``next`` — so fairness properties can be asserted in tests.
    """

    _tail: _QNode | None = None
    _holder: _QNode | None = None
    #: acquisition order, for fairness assertions
    history: list[int] = field(default_factory=list)

    def acquire(self, thread: int) -> _QNode:
        """Enqueue a thread; returns its node.  The lock may not be held yet."""
        node = _QNode(thread)
        predecessor, self._tail = self._tail, node
        if predecessor is None:
            node.locked = False
            self._holder = node
            self.history.append(thread)
        else:
            predecessor.next = node
        return node

    def holds(self, node: _QNode) -> bool:
        """True once the node has been granted the lock."""
        return not node.locked

    def release(self, node: _QNode) -> None:
        """Release the lock, handing it FIFO to the successor if any."""
        if self._holder is not node:
            raise RuntimeError("release by a thread that does not hold the lock")
        successor = node.next
        if successor is None:
            if self._tail is node:
                self._tail = None
            self._holder = None
            return
        successor.locked = False
        self._holder = successor
        self.history.append(successor.thread)


def collate_fifo(streams: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Collate per-thread item streams through an emulated MCS lock.

    Every thread repeatedly acquires the lock, appends its next item to the
    shared buffer, and releases.  All threads contend continuously, so the
    FIFO lock serves them round-robin until streams drain.

    Returns the collated items and the thread id of each item.
    """
    lock = MCSLock()
    pending = deque(
        (t, deque(np.asarray(s).tolist())) for t, s in enumerate(streams) if len(s)
    )
    items: list = []
    owners: list[int] = []
    # all live threads enqueue once, then re-enqueue after each grant
    nodes = deque()
    for t, _ in pending:
        nodes.append(lock.acquire(t))
    by_thread = {t: s for t, s in pending}
    while nodes:
        node = nodes.popleft()
        assert lock.holds(node), "FIFO order violated"
        stream = by_thread[node.thread]
        items.append(stream.popleft())
        owners.append(node.thread)
        if stream:
            nodes.append(lock.acquire(node.thread))
        lock.release(node)
    return np.asarray(items), np.asarray(owners, dtype=np.int64)
