"""Interleaving of per-thread memory traces for shared-cache modelling.

The cache behaviour of a shared cache depends on how the threads' reference
streams interleave (concurrent reuse distance, Schuff et al.).  The paper
collates per-thread accesses through a queue-based MCS lock, whose FIFO
fairness yields a near round-robin global order; that is the default policy
here.  Block and random interleavings are provided for sensitivity studies.
"""

from __future__ import annotations

import numpy as np

from ..core.trace import MemoryTrace, concat_traces


def _concat(traces: list[MemoryTrace]) -> tuple[MemoryTrace, np.ndarray]:
    """Concatenate traces; also return each reference's within-thread index."""
    position = np.concatenate(
        [np.arange(len(t), dtype=np.int64) for t in traces]
    )
    return concat_traces(traces), position


def interleave(
    traces: list[MemoryTrace],
    policy: str = "mcs",
    block: int = 1,
    seed: int | None = None,
) -> MemoryTrace:
    """Merge per-thread traces into one shared-cache reference order.

    Policies
    --------
    ``"mcs"``
        FIFO round-robin at single-reference granularity — the fair
        interleaving produced by MCS-lock collation (the paper's choice).
    ``"block"``
        Round-robin in blocks of ``block`` references (coarser batching,
        e.g. one store-buffer flush at a time).
    ``"random"``
        Uniformly random merge preserving per-thread order; requires
        ``seed`` for reproducibility.
    ``"sequential"``
        Thread 0's trace, then thread 1's, ... (no concurrency; useful as a
        degenerate baseline in tests).
    """
    merged, position = _concat(traces)
    if len(merged) == 0:
        return merged
    threads = merged.threads.astype(np.int64)
    if policy == "mcs":
        keys = position
    elif policy == "block":
        if block <= 0:
            raise ValueError("block must be positive")
        keys = position // block
    elif policy == "random":
        rng = np.random.default_rng(seed)
        # uniform arrival time per reference, sorted within each thread so
        # per-thread program order is preserved; a single lexsort assigns
        # each thread its draws in ascending order (no per-thread pass)
        keys_f = rng.random(len(merged))
        slots = np.argsort(threads, kind="stable")
        arrival = np.empty(len(merged))
        arrival[slots] = keys_f[np.lexsort((keys_f, threads))]
        order = np.argsort(arrival, kind="stable")
        return merged.reorder(order)
    elif policy == "sequential":
        keys = threads * (position.max() + 1) + position
    else:
        raise ValueError(f"unknown interleaving policy {policy!r}")
    order = np.lexsort((threads, keys))
    return merged.reorder(order)
