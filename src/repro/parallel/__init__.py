"""Parallelism substrate: trace interleaving and the MCS-lock collator."""

from .interleave import interleave
from .mcs import MCSLock, collate_fifo

__all__ = ["MCSLock", "collate_fifo", "interleave"]
