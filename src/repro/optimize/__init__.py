"""Locality-optimizing reordering search (the ``/optimize`` engine).

A budgeted search over row/column permutation strategies (identity, RCM,
degree sort, row blocking, greedy hypergraph-style column clustering)
that minimizes *predicted* L2 misses: candidates are screened with cheap
tier-0/1 fidelity-ladder answers (:mod:`repro.ladder`) under a
deterministic cost budget, losers are pruned early, and the winner is
confirmed with an exact tier-2 before/after prediction.
"""

from .permutations import (
    compose_permutations,
    identity_permutation,
    inverse_permutation,
    is_identity,
    permutation_fingerprint,
    validate_permutation,
)
from .search import (
    OPTIMIZE_VOLATILE_FIELDS,
    OptimizeResult,
    SearchConfig,
    optimize,
    optimize_fingerprint,
    optimize_task,
)
from .strategies import (
    DEFAULT_STRATEGIES,
    ROW_BLOCK_GRID,
    BuildCostModel,
    Candidate,
    candidates_for,
    first_touch_columns,
)

__all__ = [
    "BuildCostModel",
    "Candidate",
    "DEFAULT_STRATEGIES",
    "OPTIMIZE_VOLATILE_FIELDS",
    "OptimizeResult",
    "ROW_BLOCK_GRID",
    "SearchConfig",
    "candidates_for",
    "compose_permutations",
    "first_touch_columns",
    "identity_permutation",
    "inverse_permutation",
    "is_identity",
    "optimize",
    "optimize_fingerprint",
    "optimize_task",
    "permutation_fingerprint",
    "validate_permutation",
]
