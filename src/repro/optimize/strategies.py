"""Reordering strategies: candidate permutations for the locality search.

Each strategy builds a ``(row_perm, col_perm)`` gather pair (see
:mod:`repro.optimize.permutations`) aimed at shrinking the reuse
distances of the ``x`` vector — the only SpMV array whose misses a
permutation can change (values/colidx/rowptr/y stream regardless of
order, which is why the search objective ranks candidates by *predicted*
misses rather than re-deriving locality proxies):

``identity``
    The baseline; always present so the search can never regress.
``rcm``
    Reverse Cuthill-McKee (:mod:`repro.matrices.rcm`), applied
    symmetrically.  Recovers banded structure hidden by a bad ordering —
    the Alappat et al. preconditioning the paper runs without.
``degree_sort``
    Rows by descending nonzero count, columns by descending reference
    count.  Packs the hot columns into few leading cache lines (the
    OSKI-style cheap tuning step of arXiv 1203.2739).
``row_block``
    Rows grouped by their quantized mean column (one candidate per
    ``block_cols`` grid value): consecutive rows then touch the same
    column window, turning far x reuses into near ones.
``hypergraph``
    Greedy net-cut clustering over the column-net hypergraph
    (Akbudak/Kayaaslan/Aykanat, arXiv 1202.3856): rows are placed in
    max-gain order, where gain counts a row's nonzeros in already-opened
    column nets; columns are then renumbered in first-touch order for
    line-level spatial locality.

Strategies are deterministic given ``(matrix, seed)`` — the seed only
breaks heap ties in the hypergraph ordering — so the search trace is
reproducible across the service's fork pool.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..matrices.rcm import rcm_permutation
from ..spmv.csr import CSRMatrix
from .permutations import identity_permutation

#: Registry order == deterministic candidate evaluation order.
DEFAULT_STRATEGIES = ("identity", "rcm", "degree_sort", "row_block", "hypergraph")

#: ``row_block`` candidate grid: column-window widths (in x elements).
ROW_BLOCK_GRID = (256, 4096)


@dataclass(frozen=True)
class BuildCostModel:
    """Affine predicted cost of constructing one candidate permutation.

    Feeds the search's deterministic budget accounting (same idea as
    :class:`repro.ladder.cost.TierCostModel`): wall seconds are never
    part of admission decisions, so traces replay identically.
    """

    base_seconds: float
    per_nonzero_seconds: float

    def predict_seconds(self, nnz: int) -> float:
        return self.base_seconds + self.per_nonzero_seconds * nnz


@dataclass(frozen=True)
class Candidate:
    """One concrete permutation candidate of the search."""

    label: str
    strategy: str
    params: dict = field(default_factory=dict)
    build: Callable[[CSRMatrix, int], tuple[np.ndarray, np.ndarray]] = None
    cost: BuildCostModel = BuildCostModel(0.0, 0.0)

    def applicable(self, matrix: CSRMatrix) -> bool:
        if self.strategy == "rcm":
            return matrix.num_rows == matrix.num_cols
        return True


def _identity(matrix: CSRMatrix, seed: int) -> tuple[np.ndarray, np.ndarray]:
    return (identity_permutation(matrix.num_rows),
            identity_permutation(matrix.num_cols))


def _rcm(matrix: CSRMatrix, seed: int) -> tuple[np.ndarray, np.ndarray]:
    perm = rcm_permutation(matrix)  # symmetrizes the pattern internally
    return perm, perm.copy()


def _degree_sort(matrix: CSRMatrix, seed: int) -> tuple[np.ndarray, np.ndarray]:
    row_perm = np.argsort(-matrix.row_lengths, kind="stable").astype(np.int64)
    col_degree = np.bincount(matrix.colidx, minlength=matrix.num_cols)
    col_perm = np.argsort(-col_degree, kind="stable").astype(np.int64)
    return row_perm, col_perm


def _row_block(block_cols: int):
    def build(matrix: CSRMatrix, seed: int) -> tuple[np.ndarray, np.ndarray]:
        lengths = matrix.row_lengths
        sums = np.add.reduceat(
            matrix.colidx.astype(np.int64), matrix.rowptr[:-1],
        ) if matrix.nnz else np.zeros(matrix.num_rows, dtype=np.int64)
        sums[lengths == 0] = 0
        mean_col = np.where(lengths > 0, sums // np.maximum(lengths, 1), 0)
        key = mean_col // block_cols
        row_perm = np.argsort(key, kind="stable").astype(np.int64)
        return row_perm, identity_permutation(matrix.num_cols)

    return build


def _permuted_colidx_stream(matrix: CSRMatrix, row_order: np.ndarray) -> np.ndarray:
    """Column indices in nonzero-visit order under a new row order."""
    lengths = matrix.row_lengths[row_order]
    new_ptr = np.zeros(matrix.num_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_ptr[1:])
    starts = matrix.rowptr[row_order]
    idx = np.repeat(starts - new_ptr[:-1], lengths) + np.arange(matrix.nnz)
    return matrix.colidx[idx].astype(np.int64)


def first_touch_columns(matrix: CSRMatrix, row_order: np.ndarray) -> np.ndarray:
    """Columns in first-touch order under ``row_order`` (untouched last).

    Renumbering x by first touch packs columns referenced together into
    the same cache lines — the spatial-locality half of the clustering.
    """
    stream = _permuted_colidx_stream(matrix, row_order)
    uniq, first = np.unique(stream, return_index=True)
    touched = uniq[np.argsort(first, kind="stable")]
    untouched = np.setdiff1d(
        np.arange(matrix.num_cols, dtype=np.int64), uniq, assume_unique=True
    )
    return np.concatenate([touched, untouched]) if untouched.size else touched


def _hypergraph(matrix: CSRMatrix, seed: int) -> tuple[np.ndarray, np.ndarray]:
    n, nnz = matrix.num_rows, matrix.nnz
    if n == 0 or nnz == 0:
        return (identity_permutation(n), identity_permutation(matrix.num_cols))
    rowptr, colidx = matrix.rowptr, matrix.colidx
    # column nets: rows referencing each column (the CSC row lists)
    rows_of = np.repeat(np.arange(n, dtype=np.int64), matrix.row_lengths)
    by_col = np.argsort(colidx, kind="stable")
    net_rows = rows_of[by_col]
    net_ptr = np.zeros(matrix.num_cols + 1, dtype=np.int64)
    np.add.at(net_ptr, colidx.astype(np.int64) + 1, 1)
    np.cumsum(net_ptr, out=net_ptr)

    degree = matrix.row_lengths
    tie = np.random.default_rng(seed).permutation(n)  # deterministic tie-break
    gain = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    opened = np.zeros(matrix.num_cols, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    heap: list[tuple[int, int, int]] = []
    restarts = np.argsort(-degree, kind="stable")
    restart_pos = 0
    for filled in range(n):
        row = -1
        while heap:
            neg_gain, _, r = heapq.heappop(heap)
            if not placed[r] and -neg_gain == gain[r]:
                row = r
                break
        if row < 0:  # new cluster: densest unplaced row
            while placed[restarts[restart_pos]]:
                restart_pos += 1
            row = int(restarts[restart_pos])
        placed[row] = True
        order[filled] = row
        for c in colidx[rowptr[row]:rowptr[row + 1]]:
            if opened[c]:
                continue  # the net contributes to each member's gain once
            opened[c] = True
            for r2 in net_rows[net_ptr[c]:net_ptr[c + 1]]:
                if not placed[r2]:
                    r2 = int(r2)
                    gain[r2] += 1
                    heapq.heappush(heap, (-gain[r2], int(tie[r2]), r2))
    return order, first_touch_columns(matrix, order)


def candidates_for(strategies: tuple[str, ...] | list[str]) -> list[Candidate]:
    """The candidate list of a strategy selection, in evaluation order.

    ``identity`` is always first (it anchors the baseline screen) even
    when the caller forgot to request it.  Unknown names raise
    ``ValueError`` — the service normalizer turns that into a 400.
    """
    unknown = [s for s in strategies if s not in DEFAULT_STRATEGIES]
    if unknown:
        raise ValueError(
            f"unknown strategies {unknown} (expected a subset of "
            f"{list(DEFAULT_STRATEGIES)})"
        )
    wanted = ["identity"] + [s for s in DEFAULT_STRATEGIES
                             if s != "identity" and s in strategies]
    out: list[Candidate] = []
    for name in wanted:
        if name == "identity":
            out.append(Candidate("identity", "identity", {}, _identity,
                                 BuildCostModel(1e-5, 0.0)))
        elif name == "rcm":
            out.append(Candidate("rcm", "rcm", {}, _rcm,
                                 BuildCostModel(1e-3, 2e-6)))
        elif name == "degree_sort":
            out.append(Candidate("degree_sort", "degree_sort", {}, _degree_sort,
                                 BuildCostModel(1e-4, 3e-8)))
        elif name == "row_block":
            for block_cols in ROW_BLOCK_GRID:
                out.append(Candidate(
                    f"row_block/b{block_cols}", "row_block",
                    {"block_cols": block_cols}, _row_block(block_cols),
                    BuildCostModel(1e-4, 3e-8),
                ))
        elif name == "hypergraph":
            out.append(Candidate("hypergraph", "hypergraph", {}, _hypergraph,
                                 BuildCostModel(2e-3, 4e-6)))
    return out
