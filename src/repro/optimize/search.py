"""The budgeted reordering search: fidelity-ladder screening + confirmation.

:func:`optimize` searches the strategy candidates of
:mod:`repro.optimize.strategies` for the permutation minimizing
*predicted* L2 misses, using :class:`repro.ladder.Ladder` answers as the
objective (min over the setup's L2 way splits of ``l2_misses``):

1. **Gate (tier 0, closed forms).**  Tier-0 predictions depend only on
   the matrix dimensions — which every permutation preserves — so tier 0
   cannot *rank* candidates; what it can do is prove the search moot.
   When the closed forms price x's misses at zero under the best policy
   (class 1/2: x fits its partition), the search short-circuits to the
   identity and only pays one confirmation.
2. **Screen (tier 1, SHARDS rate ``screen_rate``).**  Every candidate is
   screened by a cheap sampled stack pass, under a deterministic cost
   budget: a candidate is admitted only while the *predicted* build +
   screen seconds (the ladder/strategy cost models, never wall clock —
   so the trace replays identically across the fork pool) fit
   ``budget_seconds``.  Candidates worse than ``prune_factor`` times the
   best screen are pruned.
3. **Refine (tier 1, rate ``refine_rate``).**  The surviving top
   ``refine_top_k`` non-identity candidates are re-screened at a higher
   sampling rate, budget permitting, to stabilise the ranking.
4. **Confirm (tier 2, exact).**  The winner is confirmed by exact
   before/after predictions — the only exact stack passes of the whole
   search.  A winner that fails to beat the baseline exactly is
   discarded: the returned permutation is then the identity and the
   improvement is zero, never negative.

The result is JSON-ready (:meth:`OptimizeResult.to_dict`) and
deterministic for a fixed ``(matrix, setup, config)`` up to the volatile
``timings`` block — :func:`optimize_fingerprint` hashes everything else.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..analysis.report import canonical_json
from ..ladder import Ladder, MatrixDims
from ..obs.tracer import span as obs_span
from ..spmv.csr import CSRMatrix
from ..spmv.sector_policy import SectorPolicy
from .permutations import is_identity
from .strategies import DEFAULT_STRATEGIES, Candidate, candidates_for

#: Keys of the wire result that legitimately differ between identical
#: searches (wall-clock timings); everything else is fingerprinted.
OPTIMIZE_VOLATILE_FIELDS = ("timings",)


@dataclass(frozen=True)
class SearchConfig:
    """Tunables of one reordering search (all part of the cache key)."""

    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    budget_seconds: float = 30.0
    seed: int = 0
    screen_rate: float = 0.1
    refine_rate: float = 0.25
    refine_top_k: int = 2
    prune_factor: float = 1.25
    #: confirmation accuracy SLO: ``None`` pins the exact tier-2 pass;
    #: a bound lets the ladder pick the cheapest satisfying tier (and
    #: escalate to the tier-3 simulation for very tight bounds)
    accuracy: float | None = None

    def __post_init__(self) -> None:
        if self.budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if not 0 < self.screen_rate <= 1 or not 0 < self.refine_rate <= 1:
            raise ValueError("sampling rates must be in (0, 1]")
        if self.refine_top_k < 0:
            raise ValueError("refine_top_k must be non-negative")
        if self.prune_factor < 1.0:
            raise ValueError("prune_factor must be >= 1")
        if self.accuracy is not None and self.accuracy <= 0:
            raise ValueError("accuracy must be positive")

    @classmethod
    def from_task(cls, task: dict) -> "SearchConfig":
        """Build from a canonical ``optimize`` service task."""
        return cls(
            strategies=tuple(task.get("strategies", DEFAULT_STRATEGIES)),
            budget_seconds=float(task.get("budget_seconds", 30.0)),
            seed=int(task.get("seed", 0)),
            accuracy=task.get("accuracy"),
        )


@dataclass
class _Entry:
    """Per-candidate bookkeeping that becomes the wire ``strategies`` row."""

    candidate: Candidate
    status: str = "pending"
    screened_misses: int | None = None
    refined_misses: int | None = None
    predicted_cost_seconds: float = 0.0
    perms: tuple | None = None

    @property
    def objective(self) -> int | None:
        return (self.refined_misses if self.refined_misses is not None
                else self.screened_misses)

    def to_dict(self) -> dict:
        return {
            "label": self.candidate.label,
            "strategy": self.candidate.strategy,
            "params": dict(self.candidate.params),
            "status": self.status,
            "screened_misses": self.screened_misses,
            "refined_misses": self.refined_misses,
            "predicted_cost_seconds": self.predicted_cost_seconds,
        }


@dataclass
class OptimizeResult:
    """One finished search: winner, per-strategy screens, confirmation."""

    name: str
    config: SearchConfig
    policies: list[dict]
    strategies: list[dict]
    winner: dict
    confirmation: dict
    fidelity: dict
    trace: list[dict]
    timings: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "search": {
                "strategies": list(self.config.strategies),
                "budget_seconds": self.config.budget_seconds,
                "seed": self.config.seed,
                "screen_rate": self.config.screen_rate,
                "refine_rate": self.config.refine_rate,
                "refine_top_k": self.config.refine_top_k,
                "prune_factor": self.config.prune_factor,
                "accuracy": self.config.accuracy,
            },
            "objective": {
                "metric": "min l2_misses over the policy grid",
                "policies": self.policies,
            },
            "strategies": self.strategies,
            "winner": self.winner,
            "confirmation": self.confirmation,
            "fidelity": self.fidelity,
            "trace": self.trace,
            "timings": self.timings,
        }


def optimize_fingerprint(result: dict) -> str:
    """Digest of a wire result minus its volatile (timing) fields."""
    stable = {k: v for k, v in result.items()
              if k not in OPTIMIZE_VOLATILE_FIELDS}
    return hashlib.sha256(canonical_json(stable).encode()).hexdigest()[:32]


def _objective(answer_result: dict) -> tuple[int, dict]:
    """(min misses, argmin policy) of one predict answer."""
    best = min(answer_result["predictions"],
               key=lambda p: (p["l2_misses"], canonical_json(p["policy"])))
    return int(best["l2_misses"]), best["policy"]


def optimize(matrix: CSRMatrix, setup, config: SearchConfig | None = None,
             ) -> OptimizeResult:
    """Search row/column permutations minimizing predicted L2 misses."""
    config = config or SearchConfig()
    started = time.perf_counter()
    name = matrix.name or "matrix"
    dims = MatrixDims.of(matrix)
    policies = [
        SectorPolicy.from_dict({"l2_sector1_ways": w}).to_dict()
        for w in setup.l2_way_options
    ]
    screen_ladder = Ladder(setup, sampling_rate=config.screen_rate)
    refine_ladder = Ladder(setup, sampling_rate=config.refine_rate)
    exact_ladder = Ladder(setup)
    answers = {0: 0, 1: 0, 2: 0, 3: 0}
    trace: list[dict] = []
    timings: dict = {}
    total_predicted = 0.0
    spent = 0.0  # budgeted (predicted) seconds: screens + refines only

    entries = [_Entry(c) for c in candidates_for(config.strategies)]

    # -- gate: tier 0 (dims-only, permutation-invariant) ----------------
    with obs_span("optimize.gate"):
        gate = exact_ladder.answer(
            "predict", dims, lambda: matrix, name=name,
            max_tier=0, policies=policies,
        )
    answers[0] += 1
    total_predicted += gate.predicted_cost_seconds
    gate_best = min(
        p["per_array"].get("x", 0) for p in gate.result["predictions"]
    )
    gated = gate_best == 0
    trace.append({
        "event": "gate", "tier": 0, "min_x_misses": int(gate_best),
        "short_circuit": gated,
        "predicted_cost_seconds": gate.predicted_cost_seconds,
    })

    if gated:
        # x already fully retained under the best policy: no permutation
        # can lower the closed-form objective, so only identity survives
        for entry in entries:
            entry.status = "gated" if entry.candidate.label != "identity" else "screened"
    else:
        spent = _screen_candidates(
            matrix, dims, name, config, policies, screen_ladder,
            entries, trace, answers, spent,
        )
        _prune(entries, config, trace)
        spent = _refine_candidates(
            matrix, dims, name, config, policies, refine_ladder,
            entries, trace, answers, spent,
        )
    total_predicted += spent

    # -- winner selection (identity always eligible) ---------------------
    eligible = [e for e in entries
                if e.status in ("screened", "refined")
                and (e.objective is not None
                     or e.candidate.label == "identity")]
    winner_entry = min(
        (e for e in eligible if e.objective is not None),
        key=lambda e: (e.objective, entries.index(e)),
        default=entries[0],
    )

    # -- confirmation: exact before/after -------------------------------
    confirm_kwargs = (
        {"max_tier": 2} if config.accuracy is None
        else {"max_tier": 3, "accuracy": config.accuracy}
    )
    with obs_span("optimize.confirm"):
        before_started = time.perf_counter()
        before = exact_ladder.answer(
            "predict", dims, lambda: matrix, name=name,
            policies=policies, **confirm_kwargs,
        )
        answers[before.tier] += 1
        total_predicted += before.predicted_cost_seconds
        before_misses, before_policy = _objective(before.result)
        after_answer = None
        if winner_entry.candidate.label != "identity":
            permuted = _materialize(matrix, winner_entry, config.seed)
            after_answer = exact_ladder.answer(
                "predict", dims, lambda: permuted, name=name,
                policies=policies, **confirm_kwargs,
            )
            answers[after_answer.tier] += 1
            total_predicted += after_answer.predicted_cost_seconds
        timings["confirm_seconds"] = time.perf_counter() - before_started

    if after_answer is None:
        after_misses, after_policy = before_misses, before_policy
        improved = False
    else:
        after_misses, after_policy = _objective(after_answer.result)
        improved = after_misses < before_misses
        if not improved:
            # the exact pass vetoed the sampled ranking: fall back to
            # identity rather than ship a regression
            winner_entry.status = "rejected"
            trace.append({
                "event": "reject", "label": winner_entry.candidate.label,
                "exact_misses": int(after_misses),
                "baseline_misses": int(before_misses),
            })
            winner_entry = entries[0]
            after_misses, after_policy = before_misses, before_policy
    if winner_entry.status in ("screened", "refined"):
        winner_entry.status = "winner"
    trace.append({
        "event": "confirm",
        "tier": before.tier,
        "label": winner_entry.candidate.label,
        "before_misses": int(before_misses),
        "after_misses": int(after_misses),
    })

    row_perm, col_perm = _winner_perms(matrix, winner_entry, config.seed)
    improvement = (
        (before_misses - after_misses) / before_misses if before_misses else 0.0
    )
    confirmation = {
        "tier": before.tier,
        "error_bound": before.error_bound,
        "before_misses": int(before_misses),
        "after_misses": int(after_misses),
        "best_policy_before": before_policy,
        "best_policy_after": after_policy,
        "improvement": improvement,
        "improved": improved,
    }
    fidelity = {
        "ladder_answers": {str(t): n for t, n in answers.items() if n},
        "screen_rate": config.screen_rate,
        "refine_rate": config.refine_rate,
        "budget_seconds": config.budget_seconds,
        "budget_spent_seconds": spent,
        "predicted_cost_seconds": total_predicted,
        "gated": gated,
    }
    timings["total_seconds"] = time.perf_counter() - started
    return OptimizeResult(
        name=name,
        config=config,
        policies=policies,
        strategies=[e.to_dict() for e in entries],
        winner={
            "label": winner_entry.candidate.label,
            "strategy": winner_entry.candidate.strategy,
            "params": dict(winner_entry.candidate.params),
            "identity": bool(is_identity(row_perm) and is_identity(col_perm)),
            "row_perm": row_perm.tolist(),
            "col_perm": col_perm.tolist(),
        },
        confirmation=confirmation,
        fidelity=fidelity,
        trace=trace,
        timings=timings,
    )


def _screen_candidates(matrix, dims, name, config, policies, ladder,
                       entries, trace, answers, spent: float) -> float:
    """Tier-1 screen of every admitted candidate (identity always admitted)."""
    screen_cost = ladder.predicted_cost(1, dims.nnz, len(policies))
    for entry in entries:
        candidate = entry.candidate
        if not candidate.applicable(matrix):
            entry.status = "inapplicable"
            trace.append({"event": "skip", "label": candidate.label,
                          "reason": "inapplicable"})
            continue
        cost = candidate.cost.predict_seconds(dims.nnz) + screen_cost
        mandatory = candidate.label == "identity"
        if not mandatory and spent + cost > config.budget_seconds:
            entry.status = "skipped_budget"
            trace.append({"event": "skip", "label": candidate.label,
                          "reason": "budget",
                          "predicted_cost_seconds": cost,
                          "budget_spent_seconds": spent})
            continue
        with obs_span(f"optimize.screen.{candidate.label}"):
            permuted = _materialize(matrix, entry, config.seed)
            answer = ladder.answer(
                "predict", dims, lambda m=permuted: m,
                name=f"{name}|{candidate.label}",
                max_tier=1, policies=policies,
            )
        answers[1] += 1
        entry.screened_misses, _ = _objective(answer.result)
        entry.predicted_cost_seconds = cost
        entry.status = "screened"
        spent += cost
        trace.append({"event": "screen", "tier": 1,
                      "label": candidate.label,
                      "misses": entry.screened_misses,
                      "predicted_cost_seconds": cost})
    return spent


def _prune(entries, config, trace) -> None:
    screened = [e.screened_misses for e in entries
                if e.status == "screened" and e.screened_misses is not None]
    if not screened:
        return
    cutoff = min(screened) * config.prune_factor
    for entry in entries:
        if (entry.status == "screened"
                and entry.candidate.label != "identity"
                and entry.screened_misses is not None
                and entry.screened_misses > cutoff):
            entry.status = "pruned"
            trace.append({"event": "prune", "label": entry.candidate.label,
                          "misses": entry.screened_misses,
                          "cutoff": cutoff})


def _refine_candidates(matrix, dims, name, config, policies, ladder,
                       entries, trace, answers, spent: float) -> float:
    refine_cost = ladder.predicted_cost(1, dims.nnz, len(policies))
    survivors = sorted(
        (e for e in entries
         if e.status == "screened" and e.candidate.label != "identity"),
        key=lambda e: (e.screened_misses, entries.index(e)),
    )[:config.refine_top_k]
    for entry in survivors:
        if spent + refine_cost > config.budget_seconds:
            trace.append({"event": "skip_refine",
                          "label": entry.candidate.label,
                          "reason": "budget"})
            continue
        with obs_span(f"optimize.refine.{entry.candidate.label}"):
            permuted = _materialize(matrix, entry, config.seed)
            answer = ladder.answer(
                "predict", dims, lambda m=permuted: m,
                name=f"{name}|{entry.candidate.label}",
                max_tier=1, policies=policies,
            )
        answers[1] += 1
        entry.refined_misses, _ = _objective(answer.result)
        entry.predicted_cost_seconds += refine_cost
        entry.status = "refined"
        spent += refine_cost
        trace.append({"event": "refine", "tier": 1,
                      "label": entry.candidate.label,
                      "misses": entry.refined_misses,
                      "predicted_cost_seconds": refine_cost})
    return spent


def _materialize(matrix: CSRMatrix, entry: _Entry, seed: int) -> CSRMatrix:
    """Build (memoized) and apply a candidate's permutation pair."""
    row_perm, col_perm = _winner_perms(matrix, entry, seed)
    if entry.candidate.label == "identity":
        return matrix
    return matrix.permute(row_perm, col_perm)


def _winner_perms(matrix: CSRMatrix, entry: _Entry, seed: int):
    if entry.perms is None:
        entry.perms = entry.candidate.build(matrix, seed)
    return entry.perms


def optimize_task(task: dict) -> dict:
    """Worker adapter: canonical ``optimize`` service task -> wire result.

    Imported by :mod:`repro.service.worker` so the search runs on the
    fork pool like every other evaluation.
    """
    from ..service.protocol import matrix_from_task, setup_from_task

    setup = setup_from_task(task)
    matrix = matrix_from_task(task)
    config = SearchConfig.from_task(task)
    return optimize(matrix, setup, config).to_dict()
