"""Permutation utilities shared by the reordering strategies.

Everything here speaks the *gather* convention used by
:meth:`repro.spmv.csr.CSRMatrix.permute`: ``perm[i]`` is the **original**
index placed at new position ``i``.  Under that convention, permuting by
``p`` and then by ``q`` is one gather by ``compose(p, q) = p[q]``, and
``inverse(p)`` is the scatter that undoes it —
``permute(inverse(p))`` after ``permute(p)`` is the identity (the
round-trip property the optimizer's tests pin down).
"""

from __future__ import annotations

import hashlib

import numpy as np


def identity_permutation(n: int) -> np.ndarray:
    """The identity gather of length ``n``."""
    if n < 0:
        raise ValueError("permutation length must be non-negative")
    return np.arange(n, dtype=np.int64)


def validate_permutation(perm: np.ndarray, n: int | None = None) -> np.ndarray:
    """Check that ``perm`` is a permutation (optionally of length ``n``).

    Returns the validated ``int64`` array; raises ``ValueError`` on
    anything that is not a bijection over ``range(len(perm))``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.ndim != 1:
        raise ValueError("a permutation must be one-dimensional")
    if n is not None and perm.shape[0] != n:
        raise ValueError(f"permutation has length {perm.shape[0]}, expected {n}")
    size = perm.shape[0]
    seen = np.zeros(size, dtype=bool)
    if size:
        if perm.min() < 0 or perm.max() >= size:
            raise ValueError("permutation entries out of range")
        seen[perm] = True
        if not seen.all():
            raise ValueError("permutation entries are not distinct")
    return perm


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """The inverse gather: ``inverse(p)[p[i]] == i``."""
    perm = validate_permutation(perm)
    inv = np.empty(perm.shape[0], dtype=np.int64)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def compose_permutations(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """The single gather equivalent to gathering by ``first`` then ``second``.

    ``A[first][second] == A[compose(first, second)]`` element-wise, i.e.
    ``compose(first, second)[i] = first[second[i]]``.
    """
    first = validate_permutation(first)
    second = validate_permutation(second, first.shape[0])
    return first[second]


def is_identity(perm: np.ndarray) -> bool:
    perm = np.asarray(perm, dtype=np.int64)
    return bool(np.array_equal(perm, np.arange(perm.shape[0], dtype=np.int64)))


def permutation_fingerprint(perm: np.ndarray) -> str:
    """A short stable digest of a permutation (search-trace labelling)."""
    perm = np.ascontiguousarray(perm, dtype=np.int64)
    return hashlib.sha256(perm.tobytes()).hexdigest()[:12]
