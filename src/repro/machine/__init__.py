"""Machine models: A64FX geometry and the ECM-style performance model."""

from .a64fx import A64FX, CacheGeometry, full_machine, scaled_machine

__all__ = ["A64FX", "CacheGeometry", "full_machine", "scaled_machine"]
